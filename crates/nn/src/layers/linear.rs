//! Fully connected (dense) layer — the classifier "exit" of each MEANet
//! block.

use crate::init;
use crate::layer::{Layer, Mode, Param};
use mea_tensor::{matmul, ops, Rng, Tensor};

/// `y = x·Wᵀ + b` over `[N, in_features]` inputs.
#[derive(Debug)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Param,
    bias: Param,
    cache: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with PyTorch-default uniform initialisation.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        Linear {
            in_features,
            out_features,
            weight: Param::new(init::linear_weight(out_features, in_features, rng)),
            bias: Param::new(init::linear_bias(out_features, in_features, rng)),
            cache: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The `[out_features, in_features]` weight matrix.
    pub fn weight_value(&self) -> &Tensor {
        &self.weight.value
    }

    /// The bias vector.
    pub fn bias_value(&self) -> &Tensor {
        &self.bias.value
    }
}

impl Layer for Linear {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(x.shape().rank(), 2, "Linear expects [N, features], got {}", x.shape());
        assert_eq!(
            x.dims()[1],
            self.in_features,
            "Linear expects {} features, got {}",
            self.in_features,
            x.dims()[1]
        );
        let mut y = matmul::matmul_a_bt(x, &self.weight.value);
        ops::add_bias_rows(&mut y, &self.bias.value);
        self.cache = mode.is_train().then(|| x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache.as_ref().expect("Linear::backward without training forward");
        // dW [out, in] = dYᵀ · X ; db = Σ rows(dY) ; dX = dY · W.
        self.weight.grad.add_assign(&matmul::matmul_at_b(grad_out, x));
        self.bias.grad.add_assign(&ops::bias_grad_rows(grad_out));
        matmul::matmul(grad_out, &self.weight.value)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn param_count(&self) -> usize {
        self.weight.numel() + self.bias.numel()
    }

    fn macs(&self, in_shape: &[usize]) -> (u64, Vec<usize>) {
        assert_eq!(in_shape, [self.in_features], "Linear::macs expects [{}], got {in_shape:?}", self.in_features);
        ((self.in_features * self.out_features) as u64, vec![self.out_features])
    }

    fn name(&self) -> &'static str {
        "Linear"
    }

    fn clear_cache(&mut self) {
        self.cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::zero_grads;

    #[test]
    fn forward_matches_manual() {
        let mut rng = Rng::new(0);
        let mut lin = Linear::new(3, 2, &mut rng);
        lin.weight.value = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0], &[2, 3]).unwrap();
        lin.bias.value = Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let y = lin.forward(&x, Mode::Eval);
        assert_eq!(y.as_slice(), &[1.5, 4.5]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = Rng::new(1);
        let mut lin = Linear::new(4, 3, &mut rng);
        let x = Tensor::randn([5, 4], 1.0, &mut rng);
        let wsum = Tensor::randn([5, 3], 1.0, &mut rng);
        let loss = |l: &mut Linear, x: &Tensor| -> f64 {
            let y = l.forward(x, Mode::Train);
            y.as_slice().iter().zip(wsum.as_slice()).map(|(&a, &b)| (a * b) as f64).sum()
        };
        let _ = loss(&mut lin, &x);
        zero_grads(&mut lin);
        let _ = lin.forward(&x, Mode::Train);
        let gx = lin.backward(&wsum);
        let eps = 1e-2f32;
        for idx in [0usize, 7, 19] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (loss(&mut lin, &xp) - loss(&mut lin, &xm)) / (2.0 * eps as f64);
            let ana = gx.as_slice()[idx] as f64;
            assert!((num - ana).abs() < 1e-2 * (1.0 + ana.abs()), "{num} vs {ana}");
        }
        zero_grads(&mut lin);
        let _ = lin.forward(&x, Mode::Train);
        let _ = lin.backward(&wsum);
        for idx in [0usize, 5, 11] {
            let orig = lin.weight.value.as_slice()[idx];
            lin.weight.value.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&mut lin, &x);
            lin.weight.value.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&mut lin, &x);
            lin.weight.value.as_mut_slice()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps as f64);
            let ana = lin.weight.grad.as_slice()[idx] as f64;
            assert!((num - ana).abs() < 1e-2 * (1.0 + ana.abs()), "{num} vs {ana}");
        }
    }

    #[test]
    fn counts() {
        let mut rng = Rng::new(0);
        let lin = Linear::new(64, 100, &mut rng);
        assert_eq!(lin.param_count(), 64 * 100 + 100);
        assert_eq!(lin.macs(&[64]), (6400, vec![100]));
    }
}
