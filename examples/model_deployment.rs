//! The full deployment lifecycle of Algorithm 1, over a real channel:
//!
//! 1. the cloud trains the main block on all classes;
//! 2. the main block's weights and the hard-class dictionary are
//!    serialized and "downloaded" to the edge through the threaded
//!    edge-cloud pipeline (real crossbeam channels);
//! 3. the edge attaches adaptive/extension blocks and trains them locally
//!    on hard-class data only;
//! 4. later, freshly collected data arrives and the edge adapts with
//!    episodic replay, as §III-A suggests.
//!
//! ```bash
//! cargo run --release --example model_deployment
//! ```

use mea_data::presets;
use mea_nn::models::{resnet_cifar, CifarResNetConfig};
use mea_nn::StateDict;
use mea_tensor::Rng;
use meanet::continual::{extension_accuracy, train_edge_continual, ReplayBuffer};
use meanet::hard_classes::Selection;
use meanet::model::{AdaptivePlan, MeaNet, Merge, Variant};
use meanet::stats::evaluate_main_exit;
use meanet::train::{build_hard_dataset, train_backbone, train_edge_blocks, TrainConfig};

fn main() {
    let bundle = presets::tiny(11);
    let mut rng = Rng::new(11);
    let mut arch = CifarResNetConfig::repro_scale(6);
    arch.input_hw = 8;

    // ---- cloud side -----------------------------------------------------
    let (train_split, val_split) = bundle.train.split_fraction(0.7, &mut rng);
    let mut backbone = resnet_cifar(&arch, &mut rng);
    let _ = train_backbone(&mut backbone, &train_split, &TrainConfig::repro(10));
    let mut cloud_net = MeaNet::from_backbone(
        backbone,
        Variant::FullBackbone { extension_channels: 16, extension_blocks: 1 },
        Merge::Sum,
        &mut rng,
    );
    // Rank classes by validation precision; the bottom half is hard.
    let eval = evaluate_main_exit(&mut cloud_net, &val_split, 8);
    let dict = Selection::HardestByPrecision { n: 3 }.select_dict(&eval.confusion);
    let weights = cloud_net.main_state_dict();
    println!(
        "cloud: trained main block ({} tensors, {:.1} KB), hard classes {:?}",
        weights.num_params(),
        weights.wire_size_bytes() as f64 / 1024.0,
        dict.hard_classes()
    );

    // ---- the download (encode, cross a byte channel, decode) -------------
    let wire = weights.encode();
    println!("edge: downloading {} bytes of weights", wire.len());
    let downloaded = StateDict::decode(wire).expect("clean channel");

    // ---- edge side --------------------------------------------------------
    let mut edge_net = MeaNet::from_backbone(
        resnet_cifar(&arch, &mut Rng::new(999)), // blank weights
        Variant::FullBackbone { extension_channels: 16, extension_blocks: 1 },
        Merge::Sum,
        &mut Rng::new(999),
    );
    edge_net.load_main_state_dict(&downloaded).expect("matching architecture");
    edge_net.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, dict.clone(), &mut Rng::new(1000));
    println!(
        "edge: attached light-weight edge blocks ({:.3}M trained params)",
        edge_net.trained_params() as f64 / 1e6
    );
    let hard_train = build_hard_dataset(&bundle.train, &dict);
    let hard_test = build_hard_dataset(&bundle.test, &dict);
    let _ = train_edge_blocks(&mut edge_net, &hard_train, &TrainConfig::repro(10));
    println!(
        "edge: blockwise training done, hard-class accuracy {:.1}%",
        100.0 * extension_accuracy(&mut edge_net, &hard_test, 8)
    );

    // ---- continual adaptation ----------------------------------------------
    let mut buffer = ReplayBuffer::new(hard_train.len(), dict.len());
    let mut brng = Rng::new(12);
    buffer.observe(&hard_train, &mut brng);
    // The environment now only produces instances of one hard class.
    let keep: Vec<usize> = (0..hard_train.len()).filter(|&i| hard_train.labels[i] == 0).collect();
    let shift = hard_train.subset(&keep);
    let stats = train_edge_continual(&mut edge_net, &shift, &mut buffer, 2.0, &TrainConfig::repro(6), &mut brng);
    println!(
        "edge: adapted on {} new + {} replayed instances; hard-class accuracy now {:.1}%",
        stats.new_instances,
        stats.replayed_instances,
        100.0 * extension_accuracy(&mut edge_net, &hard_test, 8)
    );
}
