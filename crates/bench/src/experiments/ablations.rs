//! Beyond-paper ablations for the design choices DESIGN.md calls out:
//! sum-vs-concat feature merge, blockwise-vs-joint optimisation, and
//! raw-vs-feature offload payloads.

use super::helpers::{self, pct};
use crate::scale::Scale;
use mea_data::synth::generate;
use mea_edgecloud::network::NetworkLink;
use mea_edgecloud::payload::{paper_feature_bytes, paper_raw_image_bytes};
use mea_metrics::memory::{blockwise_bytes, joint_bytes, mib};
use mea_metrics::Table;
use meanet::model::Merge;
use meanet::pipeline::{Pipeline, PipelineConfig};
use meanet::train::{build_hard_dataset, train_edge_joint, TrainConfig};

/// Sum vs Concat feature merge at the extension input (model B).
pub fn ablation_merge(scale: Scale) -> (Table, Vec<(String, f64)>) {
    let bundle = generate(&scale.cifar100_like(5001));
    let classes = bundle.train.num_classes;
    let mut results = Vec::new();
    for (label, merge) in [("Sum", Merge::Sum), ("Concat", Merge::Concat)] {
        let mut cfg = PipelineConfig::repro_resnet_b(classes, scale.epochs(), 5001);
        cfg.merge = merge;
        cfg.cloud = None;
        cfg.val_fraction = 0.3;
        let mut pipe = Pipeline::run(&cfg, &bundle.train);
        let dict = pipe.net.hard_dict().expect("trained pipeline").clone();
        let hard_test = bundle.test.filter_classes(dict.hard_classes());
        let acc = helpers::meanet_accuracy_on_hard(&mut pipe.net, &hard_test, 32);
        results.push((label.to_string(), acc));
    }
    let mut table = Table::new(&["merge", "hard-class test accuracy (%)"]);
    for (label, acc) in &results {
        table.row(&[label.clone(), pct(*acc)]);
    }
    (table, results)
}

/// Blockwise (frozen main) vs joint (unfrozen) edge training: hard-class
/// accuracy, collateral damage to easy classes, and training memory.
pub fn ablation_blockwise(scale: Scale) -> (Table, Vec<(String, f64, f64, f64)>) {
    let bundle = generate(&scale.cifar100_like(5101));
    let classes = bundle.train.num_classes;
    let mut results = Vec::new();
    for (label, joint) in [("blockwise (ours)", false), ("joint (unfrozen)", true)] {
        let mut cfg = PipelineConfig::repro_resnet_b(classes, scale.epochs(), 5101);
        cfg.cloud = None;
        cfg.val_fraction = 0.3;
        let mut pipe = Pipeline::run(&cfg, &bundle.train);
        let dict = pipe.net.hard_dict().expect("trained pipeline").clone();
        if joint {
            // Continue training *jointly* (main unfrozen) on the hard subset
            // — the catastrophic-forgetting risk the paper avoids.
            let hard = build_hard_dataset(&pipe.train_split, &dict);
            let _ = train_edge_joint(&mut pipe.net, &hard, &TrainConfig::repro(scale.epochs() / 2));
        }
        let hard_test = bundle.test.filter_classes(dict.hard_classes());
        let easy_classes: Vec<usize> = (0..classes).filter(|c| !dict.contains(*c)).collect();
        let easy_test = bundle.test.filter_classes(&easy_classes);
        let hard_acc = helpers::meanet_accuracy_on_hard(&mut pipe.net, &hard_test, 32);
        let easy_acc = helpers::main_accuracy(&mut pipe.net, &easy_test, 32);

        let (frozen, trained) = pipe.net.memory_parts();
        let mem = if joint {
            let all: Vec<_> = frozen.iter().chain(trained.iter()).copied().collect();
            mib(joint_bytes(&all, 128))
        } else {
            mib(blockwise_bytes(&frozen, &trained, 128))
        };
        results.push((label.to_string(), hard_acc, easy_acc, mem));
    }
    let mut table = Table::new(&["training", "hard acc (%)", "easy acc (%)", "memory @128 (MiB)"]);
    for (label, hard, easy, mem) in &results {
        table.row(&[label.clone(), pct(*hard), pct(*easy), format!("{mem:.1}")]);
    }
    (table, results)
}

/// Raw-image vs feature offload payloads: wire size and upload energy for
/// the paper's two image geometries.
pub fn ablation_payload() -> (Table, Vec<(String, u64, u64)>) {
    let link = NetworkLink::wifi_18_88();
    // CIFAR: raw 32·32·3 bytes vs the model-A main-block features
    // (16 ch × 32×32 f32); ImageNet: raw 224·224·3 vs ResNet18 stage-4
    // features (512 × 7×7 f32).
    let cases = vec![
        ("CIFAR raw".to_string(), paper_raw_image_bytes(3, 32, 32)),
        ("CIFAR features (16x32x32 f32)".to_string(), paper_feature_bytes(16 * 32 * 32)),
        ("ImageNet raw".to_string(), paper_raw_image_bytes(3, 224, 224)),
        ("ImageNet features (512x7x7 f32)".to_string(), paper_feature_bytes(512 * 7 * 7)),
    ];
    let mut table = Table::new(&["payload", "bytes", "upload time (ms)", "upload energy (mJ)"]);
    let mut rows = Vec::new();
    for (label, bytes) in cases {
        table.row(&[
            label.clone(),
            bytes.to_string(),
            format!("{:.2}", link.upload_time_s(bytes) * 1e3),
            format!("{:.2}", link.upload_energy_j(bytes) * 1e3),
        ]);
        rows.push((label, bytes, bytes));
    }
    (table, rows)
}
