//! Property-based tests on the partitioner, the fleet simulator and the
//! arrival-trace generators.

use mea_edgecloud::{
    simulate_fleet, sweep_cuts, ArrivalModel, DeviceProfile, FleetConfig, LayerProfile, NetworkLink, PartitionEnv,
};
use mea_tensor::Rng;
use meanet::ExitPoint;
use proptest::prelude::*;

fn arb_profiles() -> impl Strategy<Value = Vec<LayerProfile>> {
    proptest::collection::vec((1_000u64..10_000_000, 16u64..100_000), 1..12).prop_map(|layers| {
        layers
            .into_iter()
            .enumerate()
            .map(|(i, (macs, out_elems))| LayerProfile { name: format!("l{i}"), macs, out_elems })
            .collect()
    })
}

fn env(throughput_mbps: f64) -> PartitionEnv {
    PartitionEnv {
        edge: DeviceProfile::new("edge", 10.0, 1e9),
        cloud: DeviceProfile::new("cloud", 200.0, 1e11),
        link: NetworkLink::wifi(throughput_mbps).with_rtt(0.005),
        bytes_per_elem: 4,
        raw_input_bytes: 3072,
        response_bytes: 8,
    }
}

proptest! {
    /// q rises monotonically from 0 to 1 across the sweep, and every cost
    /// is finite and non-negative.
    #[test]
    fn partition_sweep_invariants(profiles in arb_profiles(), mbps in 0.1f64..1000.0) {
        let costs = sweep_cuts(&profiles, &env(mbps));
        prop_assert_eq!(costs.len(), profiles.len() + 1);
        prop_assert_eq!(costs[0].q, 0.0);
        prop_assert_eq!(costs.last().unwrap().q, 1.0);
        for pair in costs.windows(2) {
            prop_assert!(pair[1].q >= pair[0].q);
        }
        for c in &costs {
            prop_assert!(c.latency_s.is_finite() && c.latency_s >= 0.0);
            prop_assert!(c.edge_energy_j.is_finite() && c.edge_energy_j >= 0.0);
        }
        // Edge-only pays no upload; cloud-only uploads the raw image.
        prop_assert_eq!(costs.last().unwrap().upload_bytes, 0);
        prop_assert_eq!(costs[0].upload_bytes, 3072);
    }

    /// The edge-only cut's latency equals the device's closed-form
    /// latency over all MACs, independent of the link.
    #[test]
    fn edge_only_cut_ignores_the_network(profiles in arb_profiles(), mbps in 0.1f64..1000.0) {
        let e = env(mbps);
        let costs = sweep_cuts(&profiles, &e);
        let total: u64 = profiles.iter().map(|p| p.macs).sum();
        let last = costs.last().unwrap();
        prop_assert!((last.latency_s - e.edge.latency_s(total)).abs() < 1e-12);
        prop_assert_eq!(last.edge_energy_j, e.edge.compute_energy_j(total));
    }
}

fn arb_routes() -> impl Strategy<Value = Vec<Vec<ExitPoint>>> {
    proptest::collection::vec(proptest::collection::vec(0u8..3, 1..20), 1..6).prop_map(|devs| {
        devs.into_iter()
            .map(|routes| {
                routes
                    .into_iter()
                    .map(|r| match r {
                        0 => ExitPoint::Main,
                        1 => ExitPoint::Extension,
                        _ => ExitPoint::Cloud,
                    })
                    .collect()
            })
            .collect()
    })
}

fn fleet_cfg(servers: usize) -> FleetConfig {
    FleetConfig {
        edge: DeviceProfile::new("edge", 10.0, 1e9),
        cloud: DeviceProfile::new("cloud", 100.0, 1e10),
        link: NetworkLink::wifi(8.0).with_rtt(0.01),
        cloud_servers: servers,
        macs_main: 1_000_000,
        macs_extension_extra: 500_000,
        macs_cloud: 10_000_000,
        payload_bytes: 1000,
        arrival_interval_s: 0.002,
    }
}

proptest! {
    /// Every latency is at least the main-block service time; counts and
    /// percentiles are internally consistent; re-running is bit-identical.
    #[test]
    fn fleet_simulation_invariants(routes in arb_routes(), servers in 1usize..4) {
        let cfg = fleet_cfg(servers);
        let a = simulate_fleet(&cfg, &routes);
        let b = simulate_fleet(&cfg, &routes);
        prop_assert_eq!(&a, &b);
        let expected: usize = routes.iter().map(Vec::len).sum();
        prop_assert_eq!(a.instances, expected);
        let t_main = cfg.edge.latency_s(cfg.macs_main);
        prop_assert!(a.p50_latency_s >= t_main - 1e-12);
        prop_assert!(a.p50_latency_s <= a.p95_latency_s + 1e-12);
        prop_assert!(a.p95_latency_s <= a.p99_latency_s + 1e-12);
        prop_assert!(a.mean_latency_s <= a.makespan_s + 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&a.cloud_utilization));
        let n_cloud: usize =
            routes.iter().flatten().filter(|r| **r == ExitPoint::Cloud).count();
        if n_cloud == 0 {
            prop_assert_eq!(a.energy.communication_j, 0.0);
            prop_assert_eq!(a.cloud_utilization, 0.0);
        } else {
            prop_assert!(a.energy.communication_j > 0.0);
        }
    }

    /// Adding cloud servers never makes any latency statistic worse.
    #[test]
    fn more_servers_never_hurt(routes in arb_routes()) {
        let one = simulate_fleet(&fleet_cfg(1), &routes);
        let four = simulate_fleet(&fleet_cfg(4), &routes);
        prop_assert!(four.mean_latency_s <= one.mean_latency_s + 1e-12);
        prop_assert!(four.cloud_wait_mean_s <= one.cloud_wait_mean_s + 1e-12);
        prop_assert!(four.makespan_s <= one.makespan_s + 1e-12);
    }

    /// Arrival traces are non-decreasing and reproducible for any model.
    #[test]
    fn traces_are_sorted_and_seeded(
        n in 1usize..200,
        rate in 1.0f64..10_000.0,
        burst in 1usize..10,
        seed in 0u64..1000,
    ) {
        for model in [
            ArrivalModel::Uniform { interval_s: 1.0 / rate },
            ArrivalModel::Poisson { rate_hz: rate },
            ArrivalModel::Bursty { burst_len: burst, intra_s: 0.1 / rate, gap_s: 1.0 / rate },
        ] {
            let a = model.generate(n, &mut Rng::new(seed));
            let b = model.generate(n, &mut Rng::new(seed));
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.len(), n);
            prop_assert_eq!(a[0], 0.0);
            for w in a.windows(2) {
                prop_assert!(w[1] >= w[0]);
            }
        }
    }
}
