//! Multi-worker online serving runtime with dynamic cloud batching.
//!
//! The paper motivates early exits with the cloud pressure of "a large
//! amount of IoT devices" — this module is the substrate that actually
//! serves that traffic through a trained MEANet instead of modelling it in
//! closed form (see [`crate::fleet`] for the analytic counterpart):
//!
//! * **N edge workers**, each owning a bitwise-identical replica of the
//!   trained [`MeaNet`] (see `MeaNet::replicate_into`), consume requests
//!   from bounded per-worker queues. Requests are routed to workers
//!   device-stickily (`device % N`), so one device's stream is processed
//!   in order.
//! * Every routing decision goes through the same
//!   [`meanet::routing::RoutingEngine`] the offline sweep
//!   (`meanet::infer::run_inference`) uses, so the served system and the
//!   evaluation sweep provably produce identical [`InstanceRecord`]s.
//! * **M cloud workers** each drain a bounded ingress queue with
//!   **dynamic batching**: whatever is queued is coalesced up to
//!   [`ServeConfig::max_batch`] (waiting at most
//!   [`ServeConfig::max_wait`] for stragglers) and classified in *one*
//!   batched forward. Because eval-mode forwards are bitwise per-sample
//!   independent, batch composition cannot change predictions.
//! * Offloaded instances cross a real wire format ([`Payload`]) inside
//!   length-prefixed request/response frames, carried by a pluggable
//!   [`Transport`] ([`ServeConfig::transport`]). The default modelled
//!   conduit pays an optional [`NetworkLink`] as upload + RTT + response
//!   download wall-clock sleeps (deterministic, the CI path), so
//!   cloud-worker scaling overlaps network latency exactly like
//!   concurrent in-flight RPCs; [`TransportKind::Pipe`] instead ships the
//!   same frames over a real in-process byte pipe with bounded-buffer
//!   backpressure, where transfer time is whatever the wire genuinely
//!   took ([`crate::transport`]).
//! * [`PayloadPlan::Features`] turns on **feature-payload serving**: the
//!   edge runs the *cloud network's* prefix up to a cut layer (each
//!   [`EdgeReplica`] carries a cloud-prefix replica) and ships the
//!   activation — optionally int8-quantised through the `mea-quant` wire
//!   codec — and the cloud resumes at the cut instead of recomputing from
//!   pixels. The cut is fixed or planned online by a
//!   [`CutPlanner`] per edge device class, replanned whenever the
//!   [`ThresholdController`] moves the offload fraction. Because suffix
//!   execution is bitwise identical to the full forward (asserted in
//!   `mea-nn`), the cut — like batch composition — is a pure cost knob:
//!   it can never change a prediction under the lossless wire.
//! * [`LinkFeedback`] closes the planner loop: cloud workers record the
//!   upload/RTT/download time every batch actually paid into a per-class
//!   [`LinkEstimator`] EWMA, and the [`CutPlanner`] periodically replans
//!   from the *measured* effective rates (blended with its static
//!   `rate / max(1, β·streams)` contention prior by sample count) — so
//!   real congestion, including a mid-run [`LinkChange`] the static model
//!   never hears about, reaches the cut decision. On the modelled
//!   transport those observations are the model's own times; on the pipe
//!   they are `Instant::now()` deltas around the actual send/recv, so the
//!   loop learns from time genuinely paid.
//! * A [`ThresholdController`] can steer the entropy threshold inside the
//!   serving path (SPINN-style runtime adaptation): every
//!   [`ControllerConfig::window`] routed instances, the achieved offload
//!   fraction is fed back and the threshold retuned.
//! * A [`FleetSpec`] ([`ServeConfig::fleet`]) makes the device population
//!   **heterogeneous**: named [`DeviceClass`]es with a [`ComputeTier`]
//!   (high/medium/low kernel-latency scaling), an optional per-class
//!   radio prior, and explicit device→class assignments. The cut planner
//!   then plans one cut per class from each class's *effective* profile
//!   and link prior, the link estimator indexes its telemetry by the
//!   spec's class map, and [`ServeStats`] breaks served/offloaded counts
//!   and latency out per class. Without a spec, serving falls back to the
//!   legacy homogeneous convention (planner class = `device % classes`).
//! * A [`DifficultyPredictor`] ([`ServeConfig::difficulty`]) turns on
//!   **difficulty-aware routing** from input statistics alone:
//!   predicted-easy requests settle locally without consulting the
//!   offload policy, predicted-hard requests pre-commit to the cloud
//!   *without evaluating the main exit at all*
//!   ([`ServeStats::skipped_main_exits`] counts the saved forwards), and
//!   ambiguous requests take the full Algorithm-2 path unchanged.
//!
//! The preferred entry point is [`Fleet`]: it owns the replicas, checks
//! every configuration invariant up front (builder-validated via
//! [`ServeConfig::builder`], or [`Fleet::new`] returning [`ServeError`])
//! and serves traces through [`Fleet::serve`]. The free [`serve`]
//! function is a deprecated panic-on-misuse shim over [`try_serve`].
//!
//! Backpressure is end-to-end: bounded edge queues block the dispatcher,
//! bounded cloud queues block edge workers, so a slow cloud tier slows
//! admission instead of ballooning memory.

mod cloud;
mod collect;
mod config;
mod edge;
mod stats;
#[cfg(test)]
// The deprecated free `serve` stays under test deliberately: it is the
// compatibility shim whose behaviour (including every panic message)
// must keep matching `try_serve`.
#[allow(deprecated)]
mod tests;

pub(crate) use cloud::*;
pub use collect::*;
pub use config::*;
pub(crate) use edge::*;
pub use stats::*;

pub(crate) use crate::device::DeviceProfile;
pub(crate) use crate::fleet::{ComputeTier, DeviceClass, FleetSpec};
pub(crate) use crate::governor::{ControlPoint, Governor, GovernorConfig, SlaTarget};
pub(crate) use crate::network::{LinkEstimate, LinkEstimator, NetworkLink};
pub(crate) use crate::partition::{
    profile_network, CutPlanner, Objective, PartitionEnv, PeerPool, PlacementPlan, SlaObjective, StageExecutor,
    MEASURED_PRIOR_SAMPLES,
};
pub(crate) use crate::payload::{channel_absmax, ActivationGrids, Payload};
pub(crate) use crate::sim::ThreadedStats;
pub(crate) use crate::traces::ArrivalModel;
#[cfg(unix)]
pub(crate) use crate::transport::UdsTransport;
pub(crate) use crate::transport::{
    DownlinkReceiver, InboundRequest, ModelledTransport, PipeTransport, RecvOutcome, RequestFrame, ResponseFrame,
    Transport, TransportKind, UplinkReceiver,
};
pub(crate) use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
pub(crate) use mea_data::Dataset;
pub(crate) use mea_metrics::{Histogram, StreamingHistogram, WindowedQuantiles};
pub(crate) use mea_nn::layer::Mode;
pub(crate) use mea_nn::models::SegmentedCnn;
pub(crate) use mea_tensor::{Rng, Tensor};
pub(crate) use meanet::routing::{PendingCloud, RoutingEngine};
pub(crate) use meanet::{
    Difficulty, DifficultyPredictor, ExitPoint, InstanceRecord, MeaNet, OffloadPolicy, ThresholdController,
};
pub(crate) use parking_lot::Mutex;
pub(crate) use serde::{Deserialize, Serialize};
pub(crate) use std::collections::{BTreeMap, HashMap, VecDeque};
pub(crate) use std::fmt;
pub(crate) use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
pub(crate) use std::sync::{Condvar, Mutex as StdMutex};
pub(crate) use std::time::{Duration, Instant};
