//! MobileNetV2 builder (Sandler et al., 2018): inverted residuals with
//! linear bottlenecks, at paper scale and repro scale.

use super::{make_head, SegmentSpec, SegmentedCnn};
use crate::blocks::InvertedResidual;
use crate::layer::Layer;
use crate::layers::{Activation, BatchNorm2d, Conv2d};
use crate::sequential::Sequential;
use mea_tensor::Rng;

/// One `(expand, channels, repeats, stride)` row of the MobileNetV2
/// bottleneck table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BottleneckRow {
    /// Expansion factor `t`.
    pub expand: usize,
    /// Output channels `c`.
    pub channels: usize,
    /// Number of blocks `n` (the first takes the stride).
    pub repeats: usize,
    /// Stride `s` of the first block.
    pub stride: usize,
}

/// Full MobileNetV2 configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MobileNetConfig {
    /// Stem output channels (32 at paper scale).
    pub stem_channels: usize,
    /// Stem stride (2 at paper scale, 1 for small repro inputs).
    pub stem_stride: usize,
    /// Bottleneck table.
    pub rows: Vec<BottleneckRow>,
    /// Channels of the final 1×1 convolution (1280 at paper scale).
    pub last_channels: usize,
    /// Number of classes of the head exit.
    pub num_classes: usize,
    /// Input spatial size.
    pub input_hw: usize,
}

impl MobileNetConfig {
    /// The standard ImageNet MobileNetV2 (≈ 3.5M parameters).
    pub fn imagenet() -> Self {
        MobileNetConfig {
            stem_channels: 32,
            stem_stride: 2,
            rows: vec![
                BottleneckRow { expand: 1, channels: 16, repeats: 1, stride: 1 },
                BottleneckRow { expand: 6, channels: 24, repeats: 2, stride: 2 },
                BottleneckRow { expand: 6, channels: 32, repeats: 3, stride: 2 },
                BottleneckRow { expand: 6, channels: 64, repeats: 4, stride: 2 },
                BottleneckRow { expand: 6, channels: 96, repeats: 3, stride: 1 },
                BottleneckRow { expand: 6, channels: 160, repeats: 3, stride: 2 },
                BottleneckRow { expand: 6, channels: 320, repeats: 1, stride: 1 },
            ],
            last_channels: 1280,
            num_classes: 1000,
            input_hw: 224,
        }
    }

    /// A narrow variant that trains on the 2-CPU repro box.
    pub fn repro_scale(num_classes: usize) -> Self {
        MobileNetConfig {
            stem_channels: 8,
            stem_stride: 1,
            rows: vec![
                BottleneckRow { expand: 1, channels: 8, repeats: 1, stride: 1 },
                BottleneckRow { expand: 4, channels: 12, repeats: 2, stride: 2 },
                BottleneckRow { expand: 4, channels: 16, repeats: 2, stride: 2 },
                BottleneckRow { expand: 4, channels: 24, repeats: 1, stride: 1 },
            ],
            last_channels: 64,
            num_classes,
            input_hw: 24,
        }
    }
}

/// Builds a MobileNetV2 as segments: `stem`, one segment per bottleneck
/// row, and a final 1×1 expansion conv. Alias of [`mobilenet_v2`] kept for
/// discoverability at repro scale.
pub fn mobilenet_v2_lite(num_classes: usize, rng: &mut Rng) -> SegmentedCnn {
    mobilenet_v2(&MobileNetConfig::repro_scale(num_classes), rng)
}

/// Builds a MobileNetV2 from an explicit configuration.
pub fn mobilenet_v2(config: &MobileNetConfig, rng: &mut Rng) -> SegmentedCnn {
    let mut segments = Vec::new();
    let mut specs = Vec::new();

    segments.push(Sequential::new(vec![
        Box::new(Conv2d::new(3, config.stem_channels, 3, config.stem_stride, 1, false, rng)) as Box<dyn Layer>,
        Box::new(BatchNorm2d::new(config.stem_channels)),
        Box::new(Activation::relu6()),
    ]));
    specs.push(SegmentSpec { out_channels: config.stem_channels, downsample: config.stem_stride });

    let mut in_c = config.stem_channels;
    for row in &config.rows {
        let mut seg = Sequential::empty();
        for i in 0..row.repeats {
            let stride = if i == 0 { row.stride } else { 1 };
            seg.push(Box::new(InvertedResidual::new(in_c, row.channels, stride, row.expand, rng)));
            in_c = row.channels;
        }
        segments.push(seg);
        specs.push(SegmentSpec { out_channels: row.channels, downsample: row.stride });
    }

    segments.push(Sequential::new(vec![
        Box::new(Conv2d::new(in_c, config.last_channels, 1, 1, 0, false, rng)) as Box<dyn Layer>,
        Box::new(BatchNorm2d::new(config.last_channels)),
        Box::new(Activation::relu6()),
    ]));
    specs.push(SegmentSpec { out_channels: config.last_channels, downsample: 1 });

    let head = make_head(config.last_channels, config.num_classes, rng);
    SegmentedCnn {
        segments,
        specs,
        head,
        num_classes: config.num_classes,
        in_shape: [3, config.input_hw, config.input_hw],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use mea_tensor::Tensor;

    #[test]
    fn imagenet_mobilenet_matches_paper_scale_counts() {
        // Reference MobileNetV2: ~3.5M params, ~300M MACs at 224².
        let mut rng = Rng::new(0);
        let net = mobilenet_v2(&MobileNetConfig::imagenet(), &mut rng);
        let params = net.param_count();
        assert!((3_200_000..3_800_000).contains(&params), "MobileNetV2 params {params}");
        let macs = net.total_macs();
        assert!((250_000_000..400_000_000).contains(&macs), "MobileNetV2 MACs {macs}");
    }

    #[test]
    fn lite_variant_forward_pass() {
        let mut rng = Rng::new(1);
        let mut net = mobilenet_v2_lite(10, &mut rng);
        let x = Tensor::randn([2, 3, 24, 24], 1.0, &mut rng);
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn segments_line_up_with_rows() {
        let mut rng = Rng::new(2);
        let cfg = MobileNetConfig::repro_scale(10);
        let net = mobilenet_v2(&cfg, &mut rng);
        // stem + rows + last conv
        assert_eq!(net.segments.len(), cfg.rows.len() + 2);
        assert_eq!(net.out_channels(net.segments.len() - 1), cfg.last_channels);
    }
}
