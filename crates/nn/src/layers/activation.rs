//! Pointwise activations: ReLU and ReLU6 (MobileNetV2).

use crate::layer::{Layer, Mode, Param};
use mea_tensor::Tensor;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Relu,
    Relu6,
}

/// A pointwise activation layer.
#[derive(Debug)]
pub struct Activation {
    kind: Kind,
    cache: Option<Tensor>,
}

impl Activation {
    /// Standard rectified linear unit.
    pub fn relu() -> Self {
        Activation { kind: Kind::Relu, cache: None }
    }

    /// ReLU clamped at 6, as used throughout MobileNetV2.
    pub fn relu6() -> Self {
        Activation { kind: Kind::Relu6, cache: None }
    }

    /// The upper clamp of this activation: `None` for plain ReLU,
    /// `Some(6.0)` for ReLU6. (Both clamp below at zero.)
    pub fn clamp_max(&self) -> Option<f32> {
        match self.kind {
            Kind::Relu => None,
            Kind::Relu6 => Some(6.0),
        }
    }
}

impl Layer for Activation {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let y = match self.kind {
            Kind::Relu => x.map(|v| v.max(0.0)),
            Kind::Relu6 => x.map(|v| v.clamp(0.0, 6.0)),
        };
        self.cache = mode.is_train().then(|| x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache.as_ref().expect("Activation::backward without training forward");
        match self.kind {
            Kind::Relu => grad_out.zip_with(x, |g, v| if v > 0.0 { g } else { 0.0 }),
            Kind::Relu6 => grad_out.zip_with(x, |g, v| if v > 0.0 && v < 6.0 { g } else { 0.0 }),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn param_count(&self) -> usize {
        0
    }

    fn macs(&self, in_shape: &[usize]) -> (u64, Vec<usize>) {
        (0, in_shape.to_vec())
    }

    fn name(&self) -> &'static str {
        match self.kind {
            Kind::Relu => "ReLU",
            Kind::Relu6 => "ReLU6",
        }
    }

    fn clear_cache(&mut self) {
        self.cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut act = Activation::relu();
        let x = Tensor::from_vec(vec![-1.0, 2.0, 0.0, 3.0], &[2, 2]).unwrap();
        let y = act.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 3.0]);
        let g = act.backward(&Tensor::ones([2, 2]));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn relu6_clamps_and_gates_gradient() {
        let mut act = Activation::relu6();
        let x = Tensor::from_vec(vec![-1.0, 3.0, 7.0, 6.0], &[2, 2]).unwrap();
        let y = act.forward(&x, Mode::Train);
        assert_eq!(y.as_slice(), &[0.0, 3.0, 6.0, 6.0]);
        let g = act.backward(&Tensor::ones([2, 2]));
        // Gradient flows only strictly inside (0, 6).
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 0.0]);
    }
}
