//! Fleet simulation: many edge devices sharing a small cloud — the
//! congestion the paper's introduction argues early exits relieve.
//!
//! Compares an all-offload fleet against a MEANet-style fleet (most
//! inference exits at the edge) as the number of devices grows.
//!
//! ```bash
//! cargo run --release --example fleet_simulation
//! ```

use mea_edgecloud::sim::{simulate, CoopStage, SimConfig};
use mea_edgecloud::{
    simulate_fleet, simulate_fleet_spec, ComputeTier, DeviceClass, DeviceProfile, FleetConfig, FleetSpec,
    NetworkLink,
};
use meanet::ExitPoint;

fn routes(n: usize, meanet: bool) -> Vec<ExitPoint> {
    (0..n)
        .map(|i| {
            if meanet {
                // MEANet routing shape: ~60% main exits, ~25% extension,
                // ~15% offloaded (the paper's CIFAR operating point).
                match i % 20 {
                    0..=11 => ExitPoint::Main,
                    12..=16 => ExitPoint::Extension,
                    _ => ExitPoint::Cloud,
                }
            } else {
                ExitPoint::Cloud
            }
        })
        .collect()
}

fn main() {
    let cfg = FleetConfig {
        edge: DeviceProfile::edge_jetson_like(),
        cloud: DeviceProfile::cloud_accelerator(),
        link: NetworkLink::wifi_18_88(),
        cloud_servers: 2,
        macs_main: 70_000_000,
        macs_extension_extra: 30_000_000,
        macs_cloud: 2_000_000_000,
        payload_bytes: 3 * 32 * 32,
        arrival_interval_s: 0.005,
    };
    println!(
        "{:<9} {:>14} {:>14} {:>16} {:>14}",
        "devices", "policy", "mean lat (ms)", "p95 lat (ms)", "cloud wait (ms)"
    );
    for devices in [1usize, 4, 16, 64] {
        for (label, meanet) in [("all-cloud", false), ("MEANet", true)] {
            let fleet: Vec<Vec<ExitPoint>> = (0..devices).map(|d| routes(40 + d % 3, meanet)).collect();
            let r = simulate_fleet(&cfg, &fleet);
            println!(
                "{:<9} {:>14} {:>14.2} {:>16.2} {:>14.3}",
                devices,
                label,
                r.mean_latency_s * 1e3,
                r.p95_latency_s * 1e3,
                r.cloud_wait_mean_s * 1e3
            );
        }
    }
    println!("\nEarly exits keep fleet latency flat while the all-cloud fleet queues up.");

    // The same fleet, heterogeneous: the devices split round-robin across
    // three compute tiers of the Jetson-class profile, and the Low tier
    // additionally sits behind a 4x slower uplink. The virtual clock
    // prices exactly what the serving runtime's FleetSpec schedules.
    let spec = FleetSpec::round_robin(vec![
        DeviceClass::new("high", DeviceProfile::edge_jetson_like(), ComputeTier::High),
        DeviceClass::new("medium", DeviceProfile::edge_jetson_like(), ComputeTier::Medium),
        DeviceClass::new("low", DeviceProfile::edge_jetson_like(), ComputeTier::Low)
            .with_link_prior(NetworkLink::wifi(4.7)),
    ]);
    println!("\nheterogeneous tiers (High / Medium / Low, Low on a 4x slower uplink):");
    for devices in [4usize, 16, 64] {
        for (label, meanet) in [("all-cloud", false), ("MEANet", true)] {
            let fleet: Vec<Vec<ExitPoint>> = (0..devices).map(|d| routes(40 + d % 3, meanet)).collect();
            let r = simulate_fleet_spec(&spec, &cfg, &fleet);
            println!(
                "{:<9} {:>14} {:>14.2} {:>16.2} {:>14.3}",
                devices,
                label,
                r.mean_latency_s * 1e3,
                r.p95_latency_s * 1e3,
                r.cloud_wait_mean_s * 1e3
            );
        }
    }
    println!("\nSlower tiers stretch the tail: the Low class pays both the 0.4x compute scale and its link.");

    // Cooperative edge splitting on the same virtual clock: one Low-tier
    // device behind a congested 2 Mbps uplink, offloading everything.
    // Solo, it ships the full activation and the cloud runs the whole
    // network. With a `CoopStage` — the simulator's multi-stage
    // `PlacementPlan` shape — three pooled same-class peers behind a
    // fast local wire absorb half the cloud MACs first, so the WAN
    // upload shrinks to the deeper cut's activation.
    let low = DeviceProfile::edge_jetson_like().scaled_throughput(ComputeTier::Low.throughput_factor());
    let solo = SimConfig {
        edge: low.clone(),
        cloud: DeviceProfile::cloud_accelerator(),
        link: NetworkLink::wifi(2.0),
        macs_main: cfg.macs_main,
        macs_extension_extra: cfg.macs_extension_extra,
        macs_cloud: cfg.macs_cloud,
        payload_bytes: 3072, // full activation over the WAN
        arrival_interval_s: 0.005,
        coop: None,
    };
    let coop = SimConfig {
        macs_cloud: cfg.macs_cloud / 2,
        payload_bytes: 512, // the deeper cut's activation over the WAN
        coop: Some(CoopStage {
            link: NetworkLink::wifi(400.0),
            pooled: low.scaled_throughput(3.0), // 3 pooled peers
            macs_peer: cfg.macs_cloud / 2,
            peer_payload_bytes: 4096, // lossless f32 over the local wire
        }),
        ..solo.clone()
    };
    let routes = vec![ExitPoint::Cloud; 40];
    let (r_solo, r_coop) = (simulate(&solo, &routes), simulate(&coop, &routes));
    println!(
        "\ncooperative splitting on a 2 Mbps uplink (all-offload, one Low-tier device):\n\
         {:<9} mean {:>7.2} ms   p95 {:>7.2} ms\n\
         {:<9} mean {:>7.2} ms   p95 {:>7.2} ms",
        "solo",
        r_solo.mean_latency_s * 1e3,
        r_solo.p95_latency_s * 1e3,
        "coop x3",
        r_coop.mean_latency_s * 1e3,
        r_coop.p95_latency_s * 1e3,
    );
    println!("The cheap local hop buys a 6x smaller WAN upload: the peer stage pays for itself.");
}
