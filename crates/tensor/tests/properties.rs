//! Property-based tests for the tensor substrate invariants that the whole
//! training stack leans on: matmul algebra, softmax normalisation, and the
//! im2col/col2im adjoint pair.

use mea_tensor::conv::{col2im, im2col, ConvGeom};
use mea_tensor::ops;
use mea_tensor::{matmul, Rng, Tensor};
use proptest::prelude::*;

fn tensor_strategy(max_dim: usize) -> impl Strategy<Value = (usize, usize, u64)> {
    (1..=max_dim, 1..=max_dim, any::<u64>())
}

fn rand_tensor(m: usize, n: usize, seed: u64) -> Tensor {
    let mut rng = Rng::new(seed);
    Tensor::randn([m, n], 1.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A·B)·e_j column selection matches manual dot products.
    #[test]
    fn matmul_matches_naive((m, k, seed) in tensor_strategy(12), n in 1usize..12) {
        let a = rand_tensor(m, k, seed);
        let b = rand_tensor(k, n, seed.wrapping_add(1));
        let c = matmul::matmul(&a, &b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                let got = c.at(&[i, j]);
                prop_assert!((got - acc).abs() <= 1e-4 * (1.0 + acc.abs()), "{got} vs {acc}");
            }
        }
    }

    /// A·(B + C) == A·B + A·C (distributivity / linearity).
    #[test]
    fn matmul_is_linear((m, k, seed) in tensor_strategy(10), n in 1usize..10) {
        let a = rand_tensor(m, k, seed);
        let b = rand_tensor(k, n, seed.wrapping_add(1));
        let c = rand_tensor(k, n, seed.wrapping_add(2));
        let lhs = matmul::matmul(&a, &b.add(&c));
        let rhs = matmul::matmul(&a, &b).add(&matmul::matmul(&a, &c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()));
        }
    }

    /// The fused transpose kernels agree with explicit transposes.
    #[test]
    fn fused_transpose_kernels_agree((m, k, seed) in tensor_strategy(10), n in 1usize..10) {
        let a = rand_tensor(m, k, seed);
        let bt = rand_tensor(n, k, seed.wrapping_add(3));
        let lhs = matmul::matmul_a_bt(&a, &bt);
        let rhs = matmul::matmul(&a, &bt.transpose2d());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-4 * (1.0 + x.abs()));
        }
        let at = rand_tensor(k, m, seed.wrapping_add(4));
        let b = rand_tensor(k, n, seed.wrapping_add(5));
        let lhs = matmul::matmul_at_b(&at, &b);
        let rhs = matmul::matmul(&at.transpose2d(), &b);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-4 * (1.0 + x.abs()));
        }
    }

    /// Softmax rows are probability distributions and preserve argmax.
    #[test]
    fn softmax_is_a_distribution((m, k, seed) in tensor_strategy(16)) {
        let logits = rand_tensor(m, k, seed);
        let p = ops::softmax_rows(&logits);
        for i in 0..m {
            let row: f32 = p.row(i).iter().sum();
            prop_assert!((row - 1.0).abs() < 1e-5);
            prop_assert!(p.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        prop_assert_eq!(p.argmax_rows(), logits.argmax_rows());
    }

    /// Entropy is bounded by ln(K) and zero only for one-hot rows.
    #[test]
    fn entropy_bounds((m, k, seed) in tensor_strategy(16)) {
        let p = ops::softmax_rows(&rand_tensor(m, k, seed));
        for h in ops::entropy_rows(&p) {
            prop_assert!(h >= -1e-6);
            prop_assert!(h <= (k as f32).ln() + 1e-5);
        }
    }

    /// <im2col(x), y> == <x, col2im(y)> for arbitrary geometry: the adjoint
    /// identity backprop requires.
    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..4,
        hw in 3usize..9,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in any::<u64>(),
    ) {
        prop_assume!(hw + 2 * pad >= kernel);
        let geom = ConvGeom::square(c, kernel, stride, pad);
        let mut rng = Rng::new(seed);
        let x = Tensor::randn([c * hw * hw], 1.0, &mut rng);
        let cols = im2col(x.as_slice(), hw, hw, &geom);
        let y = Tensor::randn([cols.dims()[0], cols.dims()[1]], 1.0, &mut rng);
        let lhs: f64 = cols.as_slice().iter().zip(y.as_slice()).map(|(&a, &b)| (a as f64) * (b as f64)).sum();
        let mut xg = vec![0.0f32; x.numel()];
        col2im(&y, hw, hw, &geom, &mut xg);
        let rhs: f64 = x.as_slice().iter().zip(xg.iter()).map(|(&a, &b)| (a as f64) * (b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    /// gather then concat round-trips slicing.
    #[test]
    fn gather_slice_consistency(n in 2usize..16, m in 1usize..8, seed in any::<u64>()) {
        let t = rand_tensor(n, m, seed);
        let idx: Vec<usize> = (0..n).collect();
        let g = t.gather_axis0(&idx);
        prop_assert_eq!(g.as_slice(), t.as_slice());
        let a = t.slice_axis0(0, 1);
        let b = t.slice_axis0(1, n);
        let joined = Tensor::concat_axis0(&[&a, &b]);
        prop_assert_eq!(joined.as_slice(), t.as_slice());
    }
}
