//! The online serving runtime: train a small distributed system, then
//! serve bursty multi-device traffic through it — N edge workers, a
//! dynamically batching cloud tier behind a modelled WiFi uplink, and a
//! runtime threshold controller steering the offload fraction — and
//! print the end-to-end latency histogram.
//!
//! ```bash
//! cargo run --release --example serving
//! ```

use mea_edgecloud::network::NetworkLink;
use mea_edgecloud::serve::{serve, trace_requests, ControllerConfig, ServeConfig, ServeRequest};
use mea_edgecloud::traces::ArrivalModel;
use mea_nn::models::SegmentedCnn;
use mea_nn::StateDict;
use mea_tensor::Rng;
use meanet::pipeline::{BackboneChoice, Pipeline, PipelineConfig};
use meanet::{MeaNet, OffloadPolicy, ThresholdController};

fn main() {
    // Train a small distributed system (same recipe as edge_cloud_sim).
    let bundle = mea_data::presets::tiny(3);
    let mut cfg = PipelineConfig::repro_resnet_b(6, 8, 3);
    if let BackboneChoice::CifarResNet(ref mut c) = cfg.backbone {
        c.input_hw = 8;
    }
    if let Some(BackboneChoice::CifarResNet(ref mut c)) = cfg.cloud {
        c.input_hw = 8;
    }
    let mut pipe = Pipeline::run(&cfg, &bundle.train);

    // Replicate the trained models onto the workers: 2 edge, 2 cloud.
    let edge_workers = 2;
    let cloud_workers = 2;
    let dict = pipe.net.hard_dict().expect("trained pipeline").clone();
    let mut edges: Vec<MeaNet> = (0..edge_workers)
        .map(|i| {
            let mut rng = Rng::new(100 + i as u64);
            let backbone = cfg.backbone.build(&mut rng);
            let mut replica = MeaNet::from_backbone(backbone, cfg.variant, cfg.merge, &mut rng);
            replica.attach_edge_blocks(cfg.adaptive, dict.clone(), &mut rng);
            pipe.net.replicate_into(&mut replica);
            replica
        })
        .collect();
    let cloud_state = StateDict::from_cnn(pipe.cloud.as_mut().expect("pipeline has a cloud"));
    let cloud_choice = cfg.cloud.as_ref().expect("cloud configured");
    let mut clouds: Vec<SegmentedCnn> = (0..cloud_workers)
        .map(|i| {
            let mut rng = Rng::new(200 + i as u64);
            let mut replica = cloud_choice.build(&mut rng);
            cloud_state.apply_to_cnn(&mut replica).expect("identical cloud architecture");
            replica
        })
        .collect();

    // Bursty traffic from 6 devices: 5-frame bursts with a 60 ms gap —
    // exactly the pattern that stresses the shared cloud queue. Repeat
    // the test set a few times for a longer trace.
    let mut rng = Rng::new(9);
    let burst = ArrivalModel::Bursty { burst_len: 5, intra_s: 0.001, gap_s: 0.060 };
    let mut requests: Vec<ServeRequest> = Vec::new();
    for rep in 0..4 {
        let offset = requests.last().map(|r| r.arrival_s + 0.05).unwrap_or(0.0);
        for mut r in trace_requests(&bundle.test, 6, &burst, &mut rng) {
            r.arrival_s += offset;
            r.seq += rep * bundle.test.len();
            requests.push(r);
        }
    }

    // Serve with dynamic batching (up to 8 per cloud forward), a WiFi
    // uplink model, and a controller steering beta toward 0.3.
    let mut serve_cfg = ServeConfig::new(OffloadPolicy::Never, edge_workers, cloud_workers, 8);
    serve_cfg.queue_depth = 8;
    serve_cfg.link = Some(NetworkLink::wifi(50.0).with_rtt(0.008));
    serve_cfg.controller =
        Some(ControllerConfig { controller: ThresholdController::new(0.5, 0.3, 1.0, (0.0, 2.0)), window: 24 });
    let report = serve(&serve_cfg, &mut edges, &mut clouds, &requests);

    let accuracy = report.records.iter().filter(|r| r.correct).count() as f64 / report.records.len() as f64;
    println!(
        "served {} requests at {:.0} req/s — accuracy {:.1}%, offloaded {:.1}% (target 30%), \
         {} cloud batches (max batch {}), final threshold {:.3}",
        report.stats.total,
        report.stats.throughput_hz,
        100.0 * accuracy,
        100.0 * report.achieved_beta(),
        report.stats.cloud_batches,
        report.stats.max_batch_seen,
        report.stats.final_threshold.unwrap_or(f32::NAN),
    );

    let h = report.latency_histogram(24);
    println!("latency: p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms", 1e3 * h.p50(), 1e3 * h.p95(), 1e3 * h.p99());
    println!("end-to-end latency histogram (s):\n{h}");
}
