//! Heterogeneous device fleets: class registry and multi-device simulation.
//!
//! The paper's introduction motivates early exits with exactly this
//! pressure: *"the large amount of IoT devices would put significant
//! pressure on the cloud server to respond"*. This module quantifies that
//! claim — and models the fleet as it really is: **unequal**. A
//! [`FleetSpec`] names the device classes (per-class compute profile with
//! a high/medium/low [`ComputeTier`], optional per-class link prior) and
//! maps device ids onto them, either round-robin (the legacy
//! `device % classes` convention, preserved bit-for-bit by
//! [`FleetSpec::round_robin`]) or by explicit assignment, so sparse and
//! skewed device populations are first-class.
//!
//! Two consumers share the spec: the serving runtime
//! ([`crate::serve::Fleet`]) plans per-class cuts and reports per-class
//! stats from it, and the virtual-clock simulator here
//! ([`simulate_fleet_spec`]) prices the same fleet analytically. Skew is
//! also why the runtime's cloud tier defaults to the sharded
//! work-stealing ingress ([`crate::serve::CloudIngress`]): a population
//! whose sticky lanes collapse onto few shards would otherwise idle every
//! other cloud worker, exactly the regime a lopsided [`FleetSpec`]
//! produces. Each
//! device runs the [`crate::sim`] pipeline (its own edge compute and
//! radio), while the cloud is a shared pool of `cloud_servers` FIFO
//! execution slots. Offloaded jobs queue when all slots are busy, so cloud
//! latency degrades as the fleet grows or the offload fraction β rises —
//! and recovers when MEANet keeps more inference at the edge.
//!
//! The simulation is a deterministic virtual-clock model: identical inputs
//! produce identical reports.

use crate::device::DeviceProfile;
use crate::energy::EnergyReport;
use crate::network::NetworkLink;
use crate::partition::PeerPool;
use meanet::ExitPoint;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::collections::BinaryHeap;

/// Relative compute capability of a device class.
///
/// Modelled on the high/medium/low node profiles of the adaptive-edge
/// exemplar (CPU shares 1.0 / 0.6 / 0.4): the tier scales the class's
/// base profile *throughput* by [`ComputeTier::throughput_factor`], so
/// every kernel latency scales by the inverse factor. `High` is the
/// identity tier — a `High`-tier class runs its base profile unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComputeTier {
    /// Full-speed device (factor 1.0) — the base profile as written.
    High,
    /// Mid-range device at 0.6× the base throughput.
    Medium,
    /// Constrained device at 0.4× the base throughput.
    Low,
}

impl ComputeTier {
    /// Fraction of the base profile's `macs_per_sec` this tier sustains.
    pub fn throughput_factor(self) -> f64 {
        match self {
            ComputeTier::High => 1.0,
            ComputeTier::Medium => 0.6,
            ComputeTier::Low => 0.4,
        }
    }

    /// Kernel-latency multiplier relative to the base profile (the
    /// reciprocal of [`Self::throughput_factor`]).
    pub fn latency_factor(self) -> f64 {
        1.0 / self.throughput_factor()
    }
}

/// One named class of devices in a heterogeneous fleet.
///
/// The class pairs a base [`DeviceProfile`] with a [`ComputeTier`] that
/// scales its throughput, and optionally a per-class [`NetworkLink`]
/// prior for fleets where classes sit on different radios (e.g. Wi-Fi
/// gateways next to LTE sensors). [`DeviceClass::effective_profile`] is
/// the profile consumers should plan and simulate with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceClass {
    /// Human-readable class name (reported in per-class stats).
    pub name: String,
    /// Base compute profile at the `High` tier.
    pub profile: DeviceProfile,
    /// Compute tier scaling the base profile's throughput.
    pub tier: ComputeTier,
    /// Link prior for this class, overriding the fleet-shared link in
    /// planning and simulation when set. `None` means the class uses the
    /// shared link model.
    pub link_prior: Option<NetworkLink>,
    /// Cooperative-group membership: `Some` when idle same-class
    /// neighbours pool compute behind a dedicated local wire, making a
    /// `Peer` placement stage available to this class (DistrEdge-style
    /// cooperative edge splitting). `None` means the class serves solo.
    pub coop: Option<CoopGroup>,
}

/// A cooperative group of same-class edge devices: `members` devices
/// pooling their tier-scaled throughput, reachable over a dedicated local
/// `link` (never the shared WAN uplink). A single-member group is legal
/// and structurally equivalent to serving solo — the placement planner
/// never scores a peer hop across one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoopGroup {
    /// Devices in the group (>= 1).
    pub members: usize,
    /// The dedicated local wire to the group.
    pub link: NetworkLink,
}

impl DeviceClass {
    /// A class running `profile` at `tier`, on the fleet-shared link.
    pub fn new(name: impl Into<String>, profile: DeviceProfile, tier: ComputeTier) -> Self {
        DeviceClass { name: name.into(), profile, tier, link_prior: None, coop: None }
    }

    /// Sets a per-class link prior (builder style).
    pub fn with_link_prior(mut self, link: NetworkLink) -> Self {
        self.link_prior = Some(link);
        self
    }

    /// Joins this class's devices into a cooperative group of `members`
    /// peers behind the dedicated local `link` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `members == 0`.
    pub fn coop_group(mut self, members: usize, link: NetworkLink) -> Self {
        assert!(members > 0, "a cooperative group needs at least one member");
        self.coop = Some(CoopGroup { members, link });
        self
    }

    /// The tier-scaled compute profile: base profile throughput times
    /// [`ComputeTier::throughput_factor`]. A `High`-tier class returns
    /// the base profile bit-for-bit.
    pub fn effective_profile(&self) -> DeviceProfile {
        self.profile.scaled_throughput(self.tier.throughput_factor())
    }

    /// The pooled peer resource of this class's cooperative group for the
    /// placement planner, stamped with this class's index: the group's
    /// tier-scaled throughput times its member count behind its local
    /// wire. `None` when the class serves solo.
    pub fn peer_pool(&self, class: usize) -> Option<PeerPool> {
        self.coop.map(|g| PeerPool {
            class,
            members: g.members,
            pooled: self.effective_profile().scaled_throughput(g.members as f64),
            link: g.link,
        })
    }
}

/// The device-class registry of a heterogeneous fleet: which classes
/// exist and which class each device id belongs to.
///
/// Devices not explicitly assigned fall back to round-robin over the
/// class list (`device % class_count`), so [`FleetSpec::round_robin`]
/// reproduces the legacy implicit convention exactly; explicit
/// [`FleetSpec::assign`] entries take precedence, which makes sparse or
/// skewed populations (ten `low` sensors per `high` gateway, device ids
/// with gaps) expressible without renumbering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    classes: Vec<DeviceClass>,
    assignment: BTreeMap<usize, usize>,
}

impl FleetSpec {
    /// A fleet assigning device `d` to class `d % classes.len()` — the
    /// exact legacy convention, kept as the compatibility anchor.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty.
    pub fn round_robin(classes: Vec<DeviceClass>) -> Self {
        assert!(!classes.is_empty(), "a fleet needs at least one device class");
        FleetSpec { classes, assignment: BTreeMap::new() }
    }

    /// A homogeneous fleet: every device belongs to the one class.
    pub fn uniform(class: DeviceClass) -> Self {
        FleetSpec::round_robin(vec![class])
    }

    /// Pins device `device` to `class` (builder style), overriding the
    /// round-robin fallback for that id only.
    ///
    /// # Panics
    ///
    /// Panics if `class` is not an index into the class list.
    pub fn assign(mut self, device: usize, class: usize) -> Self {
        assert!(class < self.classes.len(), "class {class} out of range ({} classes)", self.classes.len());
        self.assignment.insert(device, class);
        self
    }

    /// The registered device classes, in index order.
    pub fn classes(&self) -> &[DeviceClass] {
        &self.classes
    }

    /// Number of registered classes (always ≥ 1).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// The class index device `device` belongs to: its explicit
    /// assignment if pinned, else `device % class_count`.
    pub fn class_of(&self, device: usize) -> usize {
        self.assignment.get(&device).copied().unwrap_or(device % self.classes.len())
    }

    /// The class record device `device` belongs to.
    pub fn device_class(&self, device: usize) -> &DeviceClass {
        &self.classes[self.class_of(device)]
    }

    /// Tier-scaled compute profiles, one per class in index order — what
    /// the cut planner and the fleet simulator consume.
    pub fn effective_profiles(&self) -> Vec<DeviceProfile> {
        self.classes.iter().map(DeviceClass::effective_profile).collect()
    }

    /// Per-class link priors in index order (`None` = shared link).
    pub fn link_priors(&self) -> Vec<Option<NetworkLink>> {
        self.classes.iter().map(|c| c.link_prior).collect()
    }

    /// Per-class cooperative peer pools in index order (`None` = the
    /// class serves solo) — what
    /// [`crate::partition::CutPlanner::plan_placements_measured_with_links`]
    /// consumes.
    pub fn peer_pools(&self) -> Vec<Option<PeerPool>> {
        self.classes.iter().enumerate().map(|(c, dc)| dc.peer_pool(c)).collect()
    }

    /// Device-sticky slot selection: maps a device id onto one of `n`
    /// serving resources (transport lanes, edge-worker queues) such that
    /// one device always lands on the same slot. This is the single
    /// definition of the serving runtime's `device → slot` mapping.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sticky_index(&self, device: usize, n: usize) -> usize {
        assert!(n > 0, "cannot pick among zero slots");
        device % n
    }
}

/// Static parameters of a fleet simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Edge device profile shared by every device in the homogeneous
    /// entry points ([`simulate_fleet`], [`simulate_fleet_with_arrivals`]).
    /// The [`FleetSpec`]-aware entry points ignore it and give each
    /// device its class's tier-scaled profile instead.
    pub edge: DeviceProfile,
    /// Cloud device profile (per server slot).
    pub cloud: DeviceProfile,
    /// Radio link per device (independent radios). Classes with a
    /// [`DeviceClass::link_prior`] override it under a [`FleetSpec`].
    pub link: NetworkLink,
    /// Parallel execution slots at the cloud.
    pub cloud_servers: usize,
    /// MACs of the main block (every instance pays this at its device).
    pub macs_main: u64,
    /// Extra MACs of the adaptive + extension path.
    pub macs_extension_extra: u64,
    /// MACs of the cloud network per offloaded instance.
    pub macs_cloud: u64,
    /// Upload payload bytes per offloaded instance.
    pub payload_bytes: u64,
    /// Per-device inter-arrival time of frames (s).
    pub arrival_interval_s: f64,
}

/// Aggregate results of a fleet simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Number of devices simulated.
    pub devices: usize,
    /// Total instances across the fleet.
    pub instances: usize,
    /// Mean end-to-end latency across all instances (s).
    pub mean_latency_s: f64,
    /// Median latency (s).
    pub p50_latency_s: f64,
    /// 95th-percentile latency (s).
    pub p95_latency_s: f64,
    /// 99th-percentile latency (s).
    pub p99_latency_s: f64,
    /// Completion time of the last instance (s).
    pub makespan_s: f64,
    /// Mean time offloaded jobs spent waiting for a free cloud slot (s).
    pub cloud_wait_mean_s: f64,
    /// Worst-case cloud queueing delay (s).
    pub cloud_wait_max_s: f64,
    /// Busy time across slots divided by `servers × makespan`.
    pub cloud_utilization: f64,
    /// Fleet-wide edge energy (compute + communication).
    pub energy: EnergyReport,
}

/// A job that reached the cloud ingress queue.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CloudJob {
    device: usize,
    index: usize,
    ready_s: f64,
}

/// Runs the homogeneous fleet simulation with the fixed per-device frame
/// interval of `cfg.arrival_interval_s`. `routes[d]` is the per-instance
/// exit sequence of device `d` (e.g. from Algorithm-2 records); devices
/// may have different instance counts.
///
/// # Panics
///
/// Panics if `routes` is empty, any device has no instances, or
/// `cfg.cloud_servers == 0`.
pub fn simulate_fleet(cfg: &FleetConfig, routes: &[Vec<ExitPoint>]) -> FleetReport {
    let arrivals = interval_arrivals(cfg, routes);
    simulate_fleet_with_arrivals(cfg, routes, &arrivals)
}

/// [`simulate_fleet`] with explicit per-device arrival times (e.g. from
/// [`crate::traces::ArrivalModel`]): `arrivals[d][i]` is when instance `i`
/// reaches device `d`. `cfg.arrival_interval_s` is ignored.
///
/// # Panics
///
/// Panics if `routes` is empty, any device has no instances,
/// `cfg.cloud_servers == 0`, or any arrival sequence has the wrong length
/// or decreases.
pub fn simulate_fleet_with_arrivals(
    cfg: &FleetConfig,
    routes: &[Vec<ExitPoint>],
    arrivals: &[Vec<f64>],
) -> FleetReport {
    let per_device: Vec<(DeviceProfile, NetworkLink)> =
        routes.iter().map(|_| (cfg.edge.clone(), cfg.link)).collect();
    simulate_core(cfg, &per_device, routes, arrivals)
}

/// Runs the heterogeneous fleet simulation: device `d` computes with its
/// class's tier-scaled profile and uploads over its class's link prior
/// (falling back to `cfg.link` for classes without one), so the virtual
/// clock prices the same fleet the serving runtime schedules.
/// `cfg.edge` is ignored. A spec whose every class carries `cfg.edge` at
/// [`ComputeTier::High`] with no link prior reproduces [`simulate_fleet`]
/// exactly.
///
/// # Panics
///
/// Panics as [`simulate_fleet`] does.
pub fn simulate_fleet_spec(spec: &FleetSpec, cfg: &FleetConfig, routes: &[Vec<ExitPoint>]) -> FleetReport {
    let arrivals = interval_arrivals(cfg, routes);
    simulate_fleet_spec_with_arrivals(spec, cfg, routes, &arrivals)
}

/// [`simulate_fleet_spec`] with explicit per-device arrival times.
///
/// # Panics
///
/// Panics as [`simulate_fleet_with_arrivals`] does.
pub fn simulate_fleet_spec_with_arrivals(
    spec: &FleetSpec,
    cfg: &FleetConfig,
    routes: &[Vec<ExitPoint>],
    arrivals: &[Vec<f64>],
) -> FleetReport {
    let per_device: Vec<(DeviceProfile, NetworkLink)> = (0..routes.len())
        .map(|d| {
            let class = spec.device_class(d);
            (class.effective_profile(), class.link_prior.unwrap_or(cfg.link))
        })
        .collect();
    simulate_core(cfg, &per_device, routes, arrivals)
}

fn interval_arrivals(cfg: &FleetConfig, routes: &[Vec<ExitPoint>]) -> Vec<Vec<f64>> {
    routes.iter().map(|r| (0..r.len()).map(|i| i as f64 * cfg.arrival_interval_s).collect()).collect()
}

/// The shared virtual-clock core: per-device edge/radio FIFOs feeding a
/// shared FIFO cloud-server pool, with device `d`'s compute and link
/// taken from `per_device[d]`.
fn simulate_core(
    cfg: &FleetConfig,
    per_device: &[(DeviceProfile, NetworkLink)],
    routes: &[Vec<ExitPoint>],
    arrivals: &[Vec<f64>],
) -> FleetReport {
    assert!(!routes.is_empty(), "no devices to simulate");
    assert!(routes.iter().all(|r| !r.is_empty()), "every device needs at least one instance");
    assert!(cfg.cloud_servers > 0, "need at least one cloud server");
    assert_eq!(routes.len(), arrivals.len(), "one arrival trace per device");
    for (d, (r, a)) in routes.iter().zip(arrivals).enumerate() {
        assert_eq!(r.len(), a.len(), "device {d}: {} routes but {} arrivals", r.len(), a.len());
        assert!(a.windows(2).all(|w| w[1] >= w[0]), "device {d}: arrival times must be non-decreasing");
    }

    let t_cloud = cfg.cloud.latency_s(cfg.macs_cloud);

    let mut energy = EnergyReport::default();
    // completion[d][i]: set for edge exits now, cloud exits after queueing.
    let mut completion: Vec<Vec<f64>> = routes.iter().map(|r| vec![0.0; r.len()]).collect();
    let mut cloud_jobs: Vec<CloudJob> = Vec::new();

    for (d, dev_routes) in routes.iter().enumerate() {
        let (edge, link) = &per_device[d];
        let t_main = edge.latency_s(cfg.macs_main);
        let t_ext = edge.latency_s(cfg.macs_extension_extra);
        let t_up = link.upload_time_s(cfg.payload_bytes);
        let half_rtt = link.rtt_s / 2.0;
        let mut edge_free = 0.0f64;
        let mut radio_free = 0.0f64;
        for (i, route) in dev_routes.iter().enumerate() {
            let arrival = arrivals[d][i];
            let start_edge = edge_free.max(arrival);
            let done_main = start_edge + t_main;
            energy.compute_j += edge.compute_energy_j(cfg.macs_main);
            match route {
                ExitPoint::Main => {
                    edge_free = done_main;
                    completion[d][i] = done_main;
                }
                ExitPoint::Extension => {
                    let done = done_main + t_ext;
                    energy.compute_j += edge.compute_energy_j(cfg.macs_extension_extra);
                    edge_free = done;
                    completion[d][i] = done;
                }
                ExitPoint::Cloud => {
                    edge_free = done_main;
                    let start_up = radio_free.max(done_main);
                    let uploaded = start_up + t_up;
                    radio_free = uploaded;
                    energy.communication_j += link.upload_energy_j(cfg.payload_bytes);
                    cloud_jobs.push(CloudJob { device: d, index: i, ready_s: uploaded + half_rtt });
                }
            }
        }
    }

    // Shared cloud: jobs are served FIFO in ready order across the fleet.
    cloud_jobs.sort_by(|a, b| {
        a.ready_s
            .partial_cmp(&b.ready_s)
            .expect("finite times")
            .then(a.device.cmp(&b.device))
            .then(a.index.cmp(&b.index))
    });
    let mut servers: BinaryHeap<Reverse<OrderedF64>> =
        (0..cfg.cloud_servers).map(|_| Reverse(OrderedF64(0.0))).collect();
    let mut wait_sum = 0.0f64;
    let mut wait_max = 0.0f64;
    let mut busy = 0.0f64;
    let n_cloud = cloud_jobs.len();
    for job in &cloud_jobs {
        let Reverse(OrderedF64(free)) = servers.pop().expect("non-empty server pool");
        let start = free.max(job.ready_s);
        let wait = start - job.ready_s;
        wait_sum += wait;
        wait_max = wait_max.max(wait);
        let finish = start + t_cloud;
        busy += t_cloud;
        servers.push(Reverse(OrderedF64(finish)));
        let half_rtt = per_device[job.device].1.rtt_s / 2.0;
        completion[job.device][job.index] = finish + half_rtt;
    }

    let mut latencies: Vec<f64> = Vec::new();
    let mut makespan = 0.0f64;
    for d in 0..routes.len() {
        for i in 0..routes[d].len() {
            latencies.push(completion[d][i] - arrivals[d][i]);
            makespan = makespan.max(completion[d][i]);
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let pct = |p: f64| latencies[((latencies.len() as f64 * p) as usize).min(latencies.len() - 1)];
    let instances = latencies.len();

    FleetReport {
        devices: routes.len(),
        instances,
        mean_latency_s: latencies.iter().sum::<f64>() / instances as f64,
        p50_latency_s: pct(0.50),
        p95_latency_s: pct(0.95),
        p99_latency_s: pct(0.99),
        makespan_s: makespan,
        cloud_wait_mean_s: if n_cloud == 0 { 0.0 } else { wait_sum / n_cloud as f64 },
        cloud_wait_max_s: wait_max,
        cloud_utilization: if makespan > 0.0 { busy / (cfg.cloud_servers as f64 * makespan) } else { 0.0 },
        energy,
    }
}

/// Total-order wrapper for finite f64 times in the server heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite simulation times")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, SimConfig};

    fn cfg(servers: usize) -> FleetConfig {
        FleetConfig {
            edge: DeviceProfile::new("edge", 10.0, 1e9),
            cloud: DeviceProfile::new("cloud", 100.0, 1e10),
            link: NetworkLink::wifi(8.0).with_rtt(0.01),
            cloud_servers: servers,
            macs_main: 1_000_000,
            macs_extension_extra: 500_000,
            macs_cloud: 10_000_000,
            payload_bytes: 1000,
            arrival_interval_s: 0.002,
        }
    }

    fn mixed_routes(n: usize) -> Vec<ExitPoint> {
        (0..n)
            .map(|i| match i % 3 {
                0 => ExitPoint::Main,
                1 => ExitPoint::Extension,
                _ => ExitPoint::Cloud,
            })
            .collect()
    }

    fn tiered_spec(base: &FleetConfig) -> FleetSpec {
        FleetSpec::round_robin(vec![
            DeviceClass::new("high", base.edge.clone(), ComputeTier::High),
            DeviceClass::new("medium", base.edge.clone(), ComputeTier::Medium),
            DeviceClass::new("low", base.edge.clone(), ComputeTier::Low),
        ])
    }

    #[test]
    fn single_device_matches_pipeline_simulator() {
        // With one device and one cloud server, the fleet model must agree
        // with the single-pipeline simulator (same FIFO disciplines).
        let f = cfg(1);
        let routes = mixed_routes(12);
        let fleet = simulate_fleet(&f, std::slice::from_ref(&routes));
        let single = simulate(
            &SimConfig {
                edge: f.edge.clone(),
                cloud: f.cloud.clone(),
                link: f.link,
                macs_main: f.macs_main,
                macs_extension_extra: f.macs_extension_extra,
                macs_cloud: f.macs_cloud,
                payload_bytes: f.payload_bytes,
                arrival_interval_s: f.arrival_interval_s,
                coop: None,
            },
            &routes,
        );
        assert!((fleet.mean_latency_s - single.mean_latency_s).abs() < 1e-12);
        assert!((fleet.makespan_s - single.makespan_s).abs() < 1e-12);
        assert!((fleet.energy.total_j() - single.energy.total_j()).abs() < 1e-12);
    }

    #[test]
    fn growing_the_fleet_congests_the_cloud() {
        let f = cfg(1);
        let routes_small: Vec<Vec<ExitPoint>> = (0..2).map(|_| vec![ExitPoint::Cloud; 10]).collect();
        let routes_big: Vec<Vec<ExitPoint>> = (0..16).map(|_| vec![ExitPoint::Cloud; 10]).collect();
        let small = simulate_fleet(&f, &routes_small);
        let big = simulate_fleet(&f, &routes_big);
        assert!(
            big.cloud_wait_mean_s > small.cloud_wait_mean_s,
            "16 devices must queue more than 2: {} vs {}",
            big.cloud_wait_mean_s,
            small.cloud_wait_mean_s
        );
        assert!(big.p95_latency_s > small.p95_latency_s);
    }

    #[test]
    fn more_servers_relieve_contention() {
        let routes: Vec<Vec<ExitPoint>> = (0..12).map(|_| vec![ExitPoint::Cloud; 8]).collect();
        let one = simulate_fleet(&cfg(1), &routes);
        let eight = simulate_fleet(&cfg(8), &routes);
        assert!(eight.cloud_wait_mean_s < one.cloud_wait_mean_s);
        assert!(eight.mean_latency_s < one.mean_latency_s);
    }

    #[test]
    fn edge_exits_are_immune_to_fleet_size() {
        let routes_a: Vec<Vec<ExitPoint>> = (0..1).map(|_| vec![ExitPoint::Main; 10]).collect();
        let routes_b: Vec<Vec<ExitPoint>> = (0..32).map(|_| vec![ExitPoint::Main; 10]).collect();
        let a = simulate_fleet(&cfg(1), &routes_a);
        let b = simulate_fleet(&cfg(1), &routes_b);
        assert!(
            (a.mean_latency_s - b.mean_latency_s).abs() < 1e-12,
            "edge-only latency must not depend on fleet size"
        );
        assert_eq!(b.cloud_utilization, 0.0);
        assert_eq!(b.cloud_wait_max_s, 0.0);
    }

    #[test]
    fn early_exits_relieve_the_cloud() {
        // Same fleet, two policies: offload everything vs offload a third.
        let all_cloud: Vec<Vec<ExitPoint>> = (0..8).map(|_| vec![ExitPoint::Cloud; 9]).collect();
        let meanet: Vec<Vec<ExitPoint>> = (0..8).map(|_| mixed_routes(9)).collect();
        let heavy = simulate_fleet(&cfg(1), &all_cloud);
        let light = simulate_fleet(&cfg(1), &meanet);
        assert!(light.cloud_wait_mean_s < heavy.cloud_wait_mean_s);
        assert!(light.mean_latency_s < heavy.mean_latency_s);
        assert!(light.energy.communication_j < heavy.energy.communication_j);
    }

    #[test]
    fn deterministic_across_runs() {
        let routes: Vec<Vec<ExitPoint>> = (0..5).map(|d| mixed_routes(7 + d)).collect();
        let a = simulate_fleet(&cfg(2), &routes);
        let b = simulate_fleet(&cfg(2), &routes);
        assert_eq!(a, b);
    }

    #[test]
    fn percentiles_are_ordered() {
        let routes: Vec<Vec<ExitPoint>> = (0..6).map(|_| mixed_routes(20)).collect();
        let r = simulate_fleet(&cfg(2), &routes);
        assert!(r.p50_latency_s <= r.p95_latency_s);
        assert!(r.p95_latency_s <= r.p99_latency_s);
        assert!(r.p99_latency_s <= r.makespan_s + 1e-12);
        assert!(r.cloud_utilization > 0.0 && r.cloud_utilization <= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one cloud server")]
    fn zero_servers_rejected() {
        let mut f = cfg(1);
        f.cloud_servers = 0;
        let _ = simulate_fleet(&f, &[vec![ExitPoint::Main]]);
    }

    #[test]
    fn explicit_uniform_arrivals_match_the_interval_path() {
        let f = cfg(2);
        let routes: Vec<Vec<ExitPoint>> = (0..3).map(|_| mixed_routes(9)).collect();
        let arrivals: Vec<Vec<f64>> =
            routes.iter().map(|r| (0..r.len()).map(|i| i as f64 * f.arrival_interval_s).collect()).collect();
        let a = simulate_fleet(&f, &routes);
        let b = simulate_fleet_with_arrivals(&f, &routes, &arrivals);
        assert_eq!(a, b);
    }

    #[test]
    fn bursty_arrivals_inflate_tail_latency_at_equal_mean_rate() {
        use crate::traces::ArrivalModel;
        use mea_tensor::Rng;
        let f = cfg(1);
        let n = 60;
        let routes: Vec<Vec<ExitPoint>> = (0..4).map(|_| vec![ExitPoint::Cloud; n]).collect();
        let uniform = ArrivalModel::Uniform { interval_s: 0.004 };
        // Same mean interval (3·0 + 0.016)/4 = 0.004 s, but 4-deep bursts.
        let bursty = ArrivalModel::Bursty { burst_len: 4, intra_s: 0.0, gap_s: 0.016 };
        assert!((uniform.mean_interval_s() - bursty.mean_interval_s()).abs() < 1e-12);
        let mut rng = Rng::new(0);
        let ua: Vec<Vec<f64>> = (0..4).map(|_| uniform.generate(n, &mut rng)).collect();
        let ba: Vec<Vec<f64>> = (0..4).map(|_| bursty.generate(n, &mut rng)).collect();
        let u = simulate_fleet_with_arrivals(&f, &routes, &ua);
        let b = simulate_fleet_with_arrivals(&f, &routes, &ba);
        assert!(
            b.p95_latency_s > u.p95_latency_s,
            "bursts must hurt the tail: {} vs {}",
            b.p95_latency_s,
            u.p95_latency_s
        );
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_arrivals_rejected() {
        let f = cfg(1);
        let _ = simulate_fleet_with_arrivals(&f, &[vec![ExitPoint::Main; 2]], &[vec![1.0, 0.5]]);
    }

    #[test]
    fn tier_factors_are_reciprocal() {
        for tier in [ComputeTier::High, ComputeTier::Medium, ComputeTier::Low] {
            assert!((tier.throughput_factor() * tier.latency_factor() - 1.0).abs() < 1e-12);
        }
        assert_eq!(ComputeTier::High.throughput_factor(), 1.0);
        assert!(ComputeTier::Medium.throughput_factor() > ComputeTier::Low.throughput_factor());
    }

    #[test]
    fn effective_profile_scales_latency_by_the_tier() {
        let base = DeviceProfile::new("edge", 10.0, 1e9);
        let low = DeviceClass::new("low", base.clone(), ComputeTier::Low).effective_profile();
        let high = DeviceClass::new("high", base.clone(), ComputeTier::High).effective_profile();
        assert_eq!(high, base, "High tier is the identity");
        let macs = 1_000_000u64;
        let ratio = low.latency_s(macs) / base.latency_s(macs);
        assert!((ratio - ComputeTier::Low.latency_factor()).abs() < 1e-9, "Low runs 2.5x slower: {ratio}");
    }

    #[test]
    fn round_robin_matches_the_legacy_modulo_convention() {
        let spec = tiered_spec(&cfg(1));
        for d in 0..30 {
            assert_eq!(spec.class_of(d), d % 3);
        }
    }

    #[test]
    fn explicit_assignment_overrides_round_robin() {
        // A skewed population: one gateway, everything else pinned low —
        // including a sparse id far past the class count.
        let spec = tiered_spec(&cfg(1)).assign(0, 0).assign(1, 2).assign(2, 2).assign(1000, 2);
        assert_eq!(spec.class_of(0), 0);
        assert_eq!(spec.class_of(1), 2);
        assert_eq!(spec.class_of(2), 2);
        assert_eq!(spec.class_of(1000), 2);
        // Unpinned ids still fall back to round-robin.
        assert_eq!(spec.class_of(4), 1);
        assert_eq!(spec.device_class(1000).name, "low");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn assignment_to_unknown_class_rejected() {
        let _ = tiered_spec(&cfg(1)).assign(0, 3);
    }

    #[test]
    #[should_panic(expected = "at least one device class")]
    fn empty_class_list_rejected() {
        let _ = FleetSpec::round_robin(Vec::new());
    }

    #[test]
    fn identity_spec_reproduces_the_homogeneous_fleet_exactly() {
        // The regression anchor for the simulator port: a spec whose every
        // class is the shared profile at High tier with no link prior must
        // be bit-identical to the homogeneous entry point.
        let f = cfg(2);
        let spec = FleetSpec::round_robin(vec![
            DeviceClass::new("a", f.edge.clone(), ComputeTier::High),
            DeviceClass::new("b", f.edge.clone(), ComputeTier::High),
        ]);
        let routes: Vec<Vec<ExitPoint>> = (0..5).map(|d| mixed_routes(7 + d)).collect();
        let homogeneous = simulate_fleet(&f, &routes);
        let spec_report = simulate_fleet_spec(&spec, &f, &routes);
        assert_eq!(spec_report, homogeneous);
    }

    #[test]
    fn slower_tiers_raise_fleet_latency() {
        let f = cfg(2);
        let routes: Vec<Vec<ExitPoint>> = (0..6).map(|_| mixed_routes(12)).collect();
        let high = simulate_fleet_spec(
            &FleetSpec::uniform(DeviceClass::new("high", f.edge.clone(), ComputeTier::High)),
            &f,
            &routes,
        );
        let low = simulate_fleet_spec(
            &FleetSpec::uniform(DeviceClass::new("low", f.edge.clone(), ComputeTier::Low)),
            &f,
            &routes,
        );
        assert!(
            low.mean_latency_s > high.mean_latency_s,
            "a 0.4x fleet must be slower: {} vs {}",
            low.mean_latency_s,
            high.mean_latency_s
        );
        // Compute energy rises too: the same MACs on a slower device draw
        // power for longer.
        assert!(low.energy.compute_j > high.energy.compute_j);
    }

    #[test]
    fn per_class_link_prior_overrides_the_shared_link() {
        let f = cfg(2);
        let slow_radio = NetworkLink::wifi(0.5).with_rtt(0.05);
        let routes: Vec<Vec<ExitPoint>> = (0..4).map(|_| vec![ExitPoint::Cloud; 8]).collect();
        let shared = simulate_fleet_spec(
            &FleetSpec::uniform(DeviceClass::new("edge", f.edge.clone(), ComputeTier::High)),
            &f,
            &routes,
        );
        let throttled = simulate_fleet_spec(
            &FleetSpec::uniform(
                DeviceClass::new("edge", f.edge.clone(), ComputeTier::High).with_link_prior(slow_radio),
            ),
            &f,
            &routes,
        );
        assert!(
            throttled.mean_latency_s > shared.mean_latency_s,
            "a 0.5 Mbps class radio must hurt: {} vs {}",
            throttled.mean_latency_s,
            shared.mean_latency_s
        );
    }

    #[test]
    fn coop_group_pools_tier_scaled_throughput() {
        let base = DeviceProfile::new("low", 10.0, 1e9);
        let wire = NetworkLink::wifi(400.0);
        let class = DeviceClass::new("low", base.clone(), ComputeTier::Low).coop_group(3, wire);
        let pool = class.peer_pool(2).expect("grouped class exposes a pool");
        assert_eq!(pool.class, 2);
        assert_eq!(pool.members, 3);
        assert_eq!(pool.link, wire);
        // Pooled throughput = tier-scaled base times the member count.
        let expect = base.macs_per_sec * ComputeTier::Low.throughput_factor() * 3.0;
        assert!((pool.pooled.macs_per_sec - expect).abs() < 1e-6, "pooled rate {}", pool.pooled.macs_per_sec);
        // An ungrouped class has no pool.
        assert!(DeviceClass::new("solo", base, ComputeTier::Low).peer_pool(0).is_none());
    }

    #[test]
    fn fleet_spec_peer_pools_index_by_class() {
        let p = DeviceProfile::new("e", 10.0, 1e9);
        let spec = FleetSpec::round_robin(vec![
            DeviceClass::new("solo", p.clone(), ComputeTier::High),
            DeviceClass::new("grouped", p, ComputeTier::Medium).coop_group(2, NetworkLink::wifi(100.0)),
        ]);
        let pools = spec.peer_pools();
        assert_eq!(pools.len(), 2);
        assert!(pools[0].is_none());
        let pool = pools[1].as_ref().expect("class 1 is grouped");
        assert_eq!(pool.class, 1);
        assert_eq!(pool.members, 2);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_coop_group_rejected() {
        let _ = DeviceClass::new("e", DeviceProfile::new("e", 10.0, 1e9), ComputeTier::High)
            .coop_group(0, NetworkLink::wifi(100.0));
    }
}
