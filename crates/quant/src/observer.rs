//! Range observers that watch float activations during calibration and
//! emit quantization parameters.

use crate::qparams::QuantParams;
use mea_tensor::Tensor;

/// Tracks the global minimum and maximum of everything it observes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMaxObserver {
    min: f32,
    max: f32,
    observed: bool,
}

impl MinMaxObserver {
    /// A fresh observer that has seen nothing.
    pub fn new() -> Self {
        MinMaxObserver { min: f32::MAX, max: f32::MIN, observed: false }
    }

    /// Folds a tensor's values into the running range.
    pub fn observe(&mut self, t: &Tensor) {
        for &v in t.as_slice() {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.observed = self.observed || t.numel() > 0;
    }

    /// Whether any data has been observed.
    pub fn has_observed(&self) -> bool {
        self.observed
    }

    /// The observed `(min, max)` range.
    ///
    /// # Panics
    ///
    /// Panics if nothing was observed.
    pub fn range(&self) -> (f32, f32) {
        assert!(self.observed, "observer saw no data");
        (self.min, self.max)
    }

    /// Affine per-tensor parameters covering the observed range.
    ///
    /// # Panics
    ///
    /// Panics if nothing was observed.
    pub fn to_affine_params(&self) -> QuantParams {
        let (lo, hi) = self.range();
        QuantParams::affine_from_range(lo, hi)
    }
}

impl Default for MinMaxObserver {
    fn default() -> Self {
        MinMaxObserver::new()
    }
}

/// Exponential-moving-average range observer: each batch's min/max is
/// blended into the running estimate. More robust against a single
/// outlier batch than [`MinMaxObserver`] when calibration data is noisy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingAverageObserver {
    min: f32,
    max: f32,
    momentum: f32,
    observed: bool,
}

impl MovingAverageObserver {
    /// Creates an EMA observer. `momentum` is the weight of the *old*
    /// estimate, typically 0.9–0.99.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= momentum < 1`.
    pub fn new(momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1), got {momentum}");
        MovingAverageObserver { min: 0.0, max: 0.0, momentum, observed: false }
    }

    /// Blends a batch's min/max into the running estimate.
    pub fn observe(&mut self, t: &Tensor) {
        if t.numel() == 0 {
            return;
        }
        let (mut lo, mut hi) = (f32::MAX, f32::MIN);
        for &v in t.as_slice() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if self.observed {
            self.min = self.momentum * self.min + (1.0 - self.momentum) * lo;
            self.max = self.momentum * self.max + (1.0 - self.momentum) * hi;
        } else {
            self.min = lo;
            self.max = hi;
            self.observed = true;
        }
    }

    /// The smoothed `(min, max)` range.
    ///
    /// # Panics
    ///
    /// Panics if nothing was observed.
    pub fn range(&self) -> (f32, f32) {
        assert!(self.observed, "observer saw no data");
        (self.min, self.max)
    }

    /// Affine per-tensor parameters covering the smoothed range.
    ///
    /// # Panics
    ///
    /// Panics if nothing was observed.
    pub fn to_affine_params(&self) -> QuantParams {
        let (lo, hi) = self.range();
        QuantParams::affine_from_range(lo.min(hi), hi.max(lo))
    }
}

/// Per-output-channel absolute maxima of a weight tensor `[out_c, ...]` —
/// the input to symmetric per-channel weight parameters.
pub fn channel_absmax(weights: &Tensor) -> Vec<f32> {
    let out_c = weights.dims()[0];
    let row = weights.numel() / out_c;
    weights.as_slice().chunks(row).map(|chunk| chunk.iter().fold(0.0f32, |m, &v| m.max(v.abs()))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qparams::QMAX;

    #[test]
    fn minmax_tracks_extremes_across_batches() {
        let mut obs = MinMaxObserver::new();
        obs.observe(&Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap());
        obs.observe(&Tensor::from_vec(vec![5.0, 0.0], &[2]).unwrap());
        assert_eq!(obs.range(), (-2.0, 5.0));
    }

    #[test]
    fn minmax_params_cover_range() {
        let mut obs = MinMaxObserver::new();
        obs.observe(&Tensor::from_vec(vec![-1.0, 3.0], &[2]).unwrap());
        let p = obs.to_affine_params();
        assert_eq!(p.quantize_value(3.0, 0) as i32, QMAX);
        assert!(p.dequantize_value(p.quantize_value(-1.0, 0), 0) <= -0.95);
    }

    #[test]
    fn ema_converges_toward_stationary_range() {
        let mut obs = MovingAverageObserver::new(0.5);
        for _ in 0..20 {
            obs.observe(&Tensor::from_vec(vec![-1.0, 1.0], &[2]).unwrap());
        }
        let (lo, hi) = obs.range();
        assert!((lo + 1.0).abs() < 1e-3 && (hi - 1.0).abs() < 1e-3);
    }

    #[test]
    fn ema_discounts_outlier_batch() {
        let mut strict = MinMaxObserver::new();
        let mut ema = MovingAverageObserver::new(0.9);
        for i in 0..50 {
            let v = if i == 25 { 100.0 } else { 1.0 };
            let t = Tensor::from_vec(vec![-v, v], &[2]).unwrap();
            strict.observe(&t);
            ema.observe(&t);
        }
        assert_eq!(strict.range().1, 100.0);
        assert!(ema.range().1 < 20.0, "EMA range should forget the outlier, got {:?}", ema.range());
    }

    #[test]
    fn channel_absmax_per_row() {
        let w = Tensor::from_vec(vec![0.5, -1.5, 2.0, -0.1], &[2, 2]).unwrap();
        assert_eq!(channel_absmax(&w), vec![1.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "observer saw no data")]
    fn unobserved_range_panics() {
        let _ = MinMaxObserver::new().range();
    }
}
