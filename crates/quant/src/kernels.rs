//! Integer compute kernels: quantized im2col, int8 GEMM with i32
//! accumulation, and requantization.
//!
//! The kernels follow the standard int8 inference recipe: weights are
//! symmetric per-channel (zero-point 0), activations affine per-tensor.
//! For an output channel `m`,
//!
//! ```text
//! acc[m][j] = Σ_k w[m][k] · x[k][j]                        (i32)
//! real[m][j] = s_w[m] · s_x · (acc[m][j] − zp_x · Σ_k w[m][k]) + bias[m]
//! ```
//!
//! so the input zero-point correction is `zp_x ·` (precomputed weight row
//! sums), and the whole affair collapses back to int8 through a per-channel
//! multiplier `s_w[m]·s_x / s_y`. Production kernels use fixed-point
//! multipliers; this reproduction uses f32, which is bit-compatible for the
//! value ranges of the paper's models and considerably clearer.

use crate::qparams::{QMAX, QMIN};
use mea_tensor::conv::ConvGeom;

/// Unfolds one int8 `[C, H, W]` image into a patch matrix of shape
/// `[C·kh·kw, oh·ow]`, filling padding taps with the activation
/// zero-point (the quantized representation of real 0).
///
/// # Panics
///
/// Panics if `image.len() != C·H·W`.
pub fn qim2col(image: &[i8], h: usize, w: usize, geom: &ConvGeom, zero_point: i8) -> Vec<i8> {
    assert_eq!(image.len(), geom.in_channels * h * w, "image length mismatch");
    let (oh, ow) = geom.out_hw(h, w);
    let patch = geom.patch_len();
    let mut cols = vec![zero_point; patch * oh * ow];
    let mut r = 0usize;
    for c in 0..geom.in_channels {
        let chan = &image[c * h * w..(c + 1) * h * w];
        for ky in 0..geom.kh {
            for kx in 0..geom.kw {
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            cols[r * oh * ow + oy * ow + ox] = chan[iy as usize * w + ix as usize];
                        }
                    }
                }
                r += 1;
            }
        }
    }
    cols
}

/// `C[m][j] = Σ_k A[m][k] · B[k][j]` over int8 inputs with i32 accumulation.
/// `A` is `[m, k]` (weights), `B` is `[k, n]` (patches).
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
pub fn qgemm_i32(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "A length mismatch");
    assert_eq!(b.len(), k * n, "B length mismatch");
    let mut out = vec![0i32; m * n];
    for mi in 0..m {
        let arow = &a[mi * k..(mi + 1) * k];
        let orow = &mut out[mi * n..(mi + 1) * n];
        for (ki, &av) in arow.iter().enumerate() {
            if av == 0 {
                continue;
            }
            let av = av as i32;
            let brow = &b[ki * n..(ki + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv as i32;
            }
        }
    }
    out
}

/// Per-row sums of an int8 matrix `[m, k]` — the input-zero-point
/// correction term, precomputed once per layer.
pub fn row_sums_i32(a: &[i8], m: usize, k: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "matrix length mismatch");
    a.chunks(k).map(|row| row.iter().map(|&v| v as i32).sum()).collect()
}

/// Collapses an i32 accumulator back to int8:
/// `q = clamp(round(acc · multiplier) + zp_out)`, with the clamp range
/// optionally narrowed by a fused activation.
///
/// `clamp_lo`/`clamp_hi` are quantized bounds (e.g. `zp_out` for a fused
/// ReLU, `quantize(6.0)` for ReLU6).
pub fn requantize(acc: i32, multiplier: f32, zp_out: i32, clamp_lo: i32, clamp_hi: i32) -> i8 {
    let q = (acc as f32 * multiplier).round() as i32 + zp_out;
    q.clamp(clamp_lo.max(QMIN), clamp_hi.min(QMAX)) as i8
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_tensor::conv::im2col;
    use mea_tensor::{Rng, Tensor};

    #[test]
    fn qim2col_matches_float_im2col_at_zero_zp() {
        // With zero_point 0 and integer-valued floats, the two unfolds must
        // produce identical patch matrices.
        let mut rng = Rng::new(0);
        let (c, h, w) = (2, 5, 5);
        let img_f: Vec<f32> = (0..c * h * w).map(|_| (rng.uniform_range(-3.0, 3.0)).round()).collect();
        let img_q: Vec<i8> = img_f.iter().map(|&v| v as i8).collect();
        let geom = ConvGeom::square(c, 3, 2, 1);
        let cols_f = im2col(&img_f, h, w, &geom);
        let cols_q = qim2col(&img_q, h, w, &geom, 0);
        assert_eq!(cols_f.numel(), cols_q.len());
        for (a, &b) in cols_f.as_slice().iter().zip(&cols_q) {
            assert_eq!(*a as i32, b as i32);
        }
    }

    #[test]
    fn qim2col_pads_with_zero_point() {
        let geom = ConvGeom::square(1, 3, 1, 1);
        let img = vec![1i8; 4]; // 2x2 image, all ones
        let cols = qim2col(&img, 2, 2, &geom, -7);
        // Corner patch must contain the padding value.
        assert!(cols.contains(&-7));
        // And the real pixels survive.
        assert!(cols.contains(&1));
    }

    #[test]
    fn qgemm_matches_naive_reference() {
        let mut rng = Rng::new(1);
        let (m, k, n) = (3, 4, 5);
        let a: Vec<i8> = (0..m * k).map(|_| rng.uniform_range(-128.0, 127.0) as i8).collect();
        let b: Vec<i8> = (0..k * n).map(|_| rng.uniform_range(-128.0, 127.0) as i8).collect();
        let got = qgemm_i32(&a, &b, m, k, n);
        for mi in 0..m {
            for ni in 0..n {
                let mut want = 0i32;
                for ki in 0..k {
                    want += a[mi * k + ki] as i32 * b[ki * n + ni] as i32;
                }
                assert_eq!(got[mi * n + ni], want);
            }
        }
    }

    #[test]
    fn row_sums_reference() {
        let a: Vec<i8> = vec![1, -2, 3, 100, 100, 100];
        assert_eq!(row_sums_i32(&a, 2, 3), vec![2, 300]);
    }

    #[test]
    fn requantize_rounds_and_clamps() {
        // 10 * 0.1 = 1.0 -> 1 + zp
        assert_eq!(requantize(10, 0.1, 5, QMIN, QMAX), 6);
        // saturate high
        assert_eq!(requantize(1_000_000, 1.0, 0, QMIN, QMAX) as i32, QMAX);
        // fused relu: clamp_lo = zp
        assert_eq!(requantize(-100, 1.0, 3, 3, QMAX), 3);
    }

    #[test]
    fn fused_relu6_clamps_high() {
        // multiplier 1, zp 0, relu6 bound at q=60.
        assert_eq!(requantize(100, 1.0, 0, 0, 60), 60);
        assert_eq!(requantize(30, 1.0, 0, 0, 60), 30);
    }

    #[test]
    fn qgemm_against_float_path_with_scales() {
        // End-to-end miniature check: quantized conv output dequantizes to
        // within tolerance of the float conv for a 1x1 kernel (pure GEMM).
        let mut rng = Rng::new(2);
        // Values drawn inside the representable range so saturation cannot
        // inflate the comparison error.
        let x = Tensor::rand_uniform([4, 6], -1.0, 1.0, &mut rng); // [k=4, n=6] patches
        let w = Tensor::rand_uniform([2, 4], -1.0, 1.0, &mut rng); // [m=2, k=4]
        let s_x = 2.0 / 255.0;
        let s_w = 1.0 / 127.0;
        let xq: Vec<i8> =
            x.as_slice().iter().map(|&v| ((v / s_x).round() as i32).clamp(-128, 127) as i8).collect();
        let wq: Vec<i8> =
            w.as_slice().iter().map(|&v| ((v / s_w).round() as i32).clamp(-128, 127) as i8).collect();
        let acc = qgemm_i32(&wq, &xq, 2, 4, 6);
        for mi in 0..2 {
            for ni in 0..6 {
                let mut want = 0.0f32;
                for ki in 0..4 {
                    want += w.as_slice()[mi * 4 + ki] * x.as_slice()[ki * 6 + ni];
                }
                let got = acc[mi * 6 + ni] as f32 * s_x * s_w;
                assert!((got - want).abs() < 0.05, "{got} vs {want}");
            }
        }
    }
}
