//! Ablation: continual edge adaptation under a distribution shift, with
//! and without the episodic replay the paper suggests (§III-A).

use mea_bench::experiments::extensions;
use mea_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let (table, rows) = extensions::ablation_continual(scale);
    println!("== Ablation: replay vs catastrophic forgetting ==\n{table}");
    let naive = rows.iter().find(|r| r.replay_ratio == 0.0).expect("ratio 0 present");
    let replayed = rows.iter().filter(|r| r.replay_ratio > 0.0).collect::<Vec<_>>();
    assert!(!replayed.is_empty());
    let best_replay = replayed.iter().map(|r| r.retained_accuracy).fold(0.0f64, f64::max);
    assert!(
        best_replay > naive.retained_accuracy,
        "replay ({best_replay:.3}) must retain more hard-class accuracy than naive fine-tuning ({:.3})",
        naive.retained_accuracy
    );
}
