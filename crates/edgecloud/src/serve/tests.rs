use super::*;
use crate::transport::{PaceChange, PipeConfig};
use mea_data::{presets, ClassDict};
use mea_nn::models::{resnet_cifar, CifarResNetConfig};
use meanet::infer::run_inference;
use meanet::infer::{run_inference_with_policy, InferenceConfig};
use meanet::model::{AdaptivePlan, Merge, Variant};

fn tiny_net(seed: u64) -> MeaNet {
    let mut rng = Rng::new(seed);
    let mut cfg = CifarResNetConfig::repro_scale(6);
    cfg.input_hw = 8;
    let backbone = resnet_cifar(&cfg, &mut rng);
    let mut net = MeaNet::from_backbone(
        backbone,
        Variant::FullBackbone { extension_channels: 8, extension_blocks: 1 },
        Merge::Sum,
        &mut rng,
    );
    net.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, ClassDict::new(&[0, 2, 4]), &mut rng);
    net
}

fn tiny_cloud(seed: u64) -> SegmentedCnn {
    let mut rng = Rng::new(seed);
    let mut cfg = CifarResNetConfig::repro_scale(6);
    cfg.input_hw = 8;
    cfg.channels = [16, 24, 32];
    resnet_cifar(&cfg, &mut rng)
}

fn replicas<T>(count: usize, mut build: impl FnMut() -> T) -> Vec<T> {
    (0..count).map(|_| build()).collect()
}

/// Image-payload edge replicas (no cloud prefix).
fn edge_replicas(count: usize, seed: u64) -> Vec<EdgeReplica> {
    replicas(count, || EdgeReplica::new(tiny_net(seed)))
}

/// Feature-payload edge replicas: each carries a bitwise replica of
/// the cloud network (same constructor seed = same weights).
fn split_replicas(count: usize, net_seed: u64, cloud_seed: u64) -> Vec<EdgeReplica> {
    replicas(count, || EdgeReplica::with_cloud_prefix(tiny_net(net_seed), tiny_cloud(cloud_seed)))
}

fn instant_requests(data: &Dataset, devices: usize) -> Vec<ServeRequest> {
    let mut rng = Rng::new(0);
    trace_requests(data, devices, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng)
}

#[test]
fn serve_matches_offline_sweep_bitwise() {
    let bundle = presets::tiny(60);
    let policy = OffloadPolicy::EntropyThreshold(0.8);
    let mut offline_net = tiny_net(1);
    let mut offline_cloud = tiny_cloud(2);
    let expected = run_inference_with_policy(&mut offline_net, Some(&mut offline_cloud), &bundle.test, policy, 8);

    for (e, c, b) in [(1usize, 1usize, 1usize), (2, 1, 4), (3, 2, 4)] {
        let mut edges = edge_replicas(e, 1);
        let mut clouds = replicas(c, || tiny_cloud(2));
        let cfg = ServeConfig::new(policy, e, c, b);
        let report = serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 3));
        assert_eq!(report.records, expected, "serve({e} edge, {c} cloud, batch {b}) diverged");
        assert_eq!(report.stats.total, bundle.test.len());
    }
}

#[test]
fn sharded_ingress_serves_record_identically_to_single_queue() {
    // The ingress is a pure scheduling knob: same trace, same
    // replicas, same records — whatever the worker/batch topology.
    let bundle = presets::tiny(170);
    let policy = OffloadPolicy::EntropyThreshold(0.8);
    let requests = instant_requests(&bundle.test, 4);
    for (e, c, b) in [(1usize, 2usize, 1usize), (2, 3, 4), (3, 1, 2)] {
        let run = |ingress: CloudIngress| {
            let mut edges = edge_replicas(e, 21);
            let mut clouds = replicas(c, || tiny_cloud(22));
            let cfg = ServeConfig::builder(policy)
                .edge_workers(e)
                .cloud_workers(c)
                .max_batch(b)
                .ingress(ingress)
                .build()
                .expect("valid config");
            try_serve(&cfg, &mut edges, &mut clouds, &requests).expect("serves")
        };
        let sharded = run(CloudIngress::Sharded);
        let single = run(CloudIngress::SingleQueue);
        assert_eq!(sharded.records, single.records, "ingress changed records at ({e},{c},{b})");
        assert_eq!(sharded.stats.offloaded, single.stats.offloaded);
        assert_eq!(single.stats.steals, 0, "the single-queue path never steals");
        assert_eq!(single.stats.max_queue_depth, 0, "single-queue frames wait in transport lanes");
        for stats in [&sharded.stats, &single.stats] {
            assert_eq!(stats.per_shard_batches.len(), c);
            assert_eq!(stats.per_shard_batches.iter().sum::<u64>(), stats.cloud_batches);
        }
    }
}

#[test]
fn work_stealing_soaks_a_skewed_population_and_keeps_device_fifo() {
    // Every request comes from device 0, so every frame lands on
    // shard 0 of a 3-worker cloud tier: under SingleQueue two workers
    // would idle, under the sharded ingress they steal the backlog.
    // The modelled link sleep keeps whichever worker holds a batch
    // busy long enough for the shard to refill, forcing steals even
    // on a single-core host.
    let bundle = presets::tiny(171);
    let mut edges = edge_replicas(1, 23);
    let mut clouds = replicas(3, || tiny_cloud(24));
    let cfg = ServeConfig::builder(OffloadPolicy::Always)
        .edge_workers(1)
        .cloud_workers(3)
        .max_batch(1)
        .queue_depth(8)
        .link(NetworkLink::wifi(50.0).with_rtt(0.002))
        .build()
        .expect("valid config");
    let report = try_serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 1)).expect("serves");
    assert_eq!(report.stats.offloaded, report.stats.total);
    assert!(
        report.stats.steals > 0,
        "skewed population must force steals: per-shard {:?}",
        report.stats.per_shard_batches
    );
    assert!(report.stats.max_queue_depth > 0, "the backlog must have queued");
    // Cloud completions of the single device leave in offload order
    // even though three workers classified them concurrently.
    let seqs: Vec<usize> =
        report.completions.iter().filter(|c| c.record.exit == ExitPoint::Cloud).map(|c| c.seq).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    assert_eq!(seqs, sorted, "per-device cloud FIFO violated under stealing");
    // And the records still match the offline sweep bit for bit.
    let mut net = tiny_net(23);
    let mut cloud = tiny_cloud(24);
    let expected = run_inference_with_policy(&mut net, Some(&mut cloud), &bundle.test, OffloadPolicy::Always, 8);
    assert_eq!(report.records, expected);
}

#[test]
fn pipeline_config_is_the_degenerate_case() {
    let cfg = ServeConfig::pipeline(OffloadPolicy::Always);
    assert_eq!((cfg.edge_workers, cfg.cloud_workers, cfg.max_batch), (1, 1, 1));
}

#[test]
fn edge_only_serving_needs_no_cloud_replicas() {
    let bundle = presets::tiny(61);
    let mut edges = edge_replicas(2, 3);
    let cfg = ServeConfig::new(OffloadPolicy::Never, 2, 0, 1);
    let report = serve(&cfg, &mut edges, &mut [], &instant_requests(&bundle.test, 2));
    assert_eq!(report.stats.offloaded, 0);
    assert!(report.records.iter().all(|r| r.exit != ExitPoint::Cloud));
    let mut net = tiny_net(3);
    let expected = run_inference(&mut net, None, &bundle.test, &InferenceConfig::edge_only(8));
    assert_eq!(report.records, expected);
}

#[test]
fn dynamic_batching_actually_batches_under_saturation() {
    let bundle = presets::tiny(62);
    let mut edges = edge_replicas(1, 4);
    let mut clouds = replicas(1, || tiny_cloud(5));
    let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 8);
    // A generous wait so queued items coalesce even on a slow host.
    cfg.max_wait = Duration::from_millis(2);
    cfg.queue_depth = 16;
    let report = serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 1));
    assert_eq!(report.stats.offloaded, report.stats.total);
    assert!(
        report.stats.cloud_batches < report.stats.offloaded as u64 || report.stats.total <= 1,
        "no coalescing happened: {} batches for {} offloads",
        report.stats.cloud_batches,
        report.stats.offloaded
    );
    assert!(report.stats.max_batch_seen >= 2);
}

#[test]
fn controller_steers_beta_in_the_serving_path() {
    let bundle = presets::tiny(63);
    let mut edges = edge_replicas(1, 6);
    let mut clouds = replicas(1, || tiny_cloud(7));
    let target = 0.5;
    let mut cfg = ServeConfig::new(OffloadPolicy::Never, 1, 1, 4);
    cfg.controller =
        Some(ControllerConfig { controller: ThresholdController::new(1.0, target, 2.0, (0.0, 3.0)), window: 8 });
    // Repeat the tiny set to give the controller windows to converge.
    let mut requests = Vec::new();
    for rep in 0..6 {
        for mut r in instant_requests(&bundle.test, 2) {
            r.seq += rep * bundle.test.len();
            requests.push(r);
        }
    }
    let report = serve(&cfg, &mut edges, &mut clouds, &requests);
    assert!(report.stats.final_threshold.is_some());
    let beta = report.achieved_beta();
    assert!((beta - target).abs() < 0.25, "controller failed to steer beta toward {target}: achieved {beta}");
}

#[test]
fn latency_histogram_quantiles_are_ordered() {
    let bundle = presets::tiny(64);
    let mut edges = edge_replicas(1, 8);
    let mut clouds = replicas(1, || tiny_cloud(9));
    let cfg = ServeConfig::new(OffloadPolicy::EntropyThreshold(0.5), 1, 1, 2);
    let report = serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 2));
    let h = report.latency_histogram(128);
    assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
    assert!(report.stats.throughput_hz > 0.0);
}

#[test]
fn simulated_link_delay_shows_up_in_latency() {
    let bundle = presets::tiny(65);
    let n = bundle.test.len();
    let run = |link: Option<NetworkLink>| {
        let mut edges = edge_replicas(1, 10);
        let mut clouds = replicas(1, || tiny_cloud(11));
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 4);
        cfg.link = link;
        serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 1))
    };
    let fast = run(None);
    let slow = run(Some(NetworkLink::wifi(8.0).with_rtt(0.004)));
    assert_eq!(fast.records, slow.records, "link delay must not change predictions");
    let mean = |r: &ServeReport| r.completions.iter().map(|c| c.latency_s).sum::<f64>() / n as f64;
    assert!(mean(&slow) > mean(&fast), "simulated RTT should add latency: {} vs {}", mean(&slow), mean(&fast));
}

#[test]
fn quantised_wire_serves_everything_and_mostly_agrees_with_lossless() {
    let bundle = presets::tiny(69);
    let run = |wire: WireFormat| {
        let mut edges = edge_replicas(2, 14);
        let mut clouds = replicas(1, || tiny_cloud(15));
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 2, 1, 4);
        cfg.payload = PayloadPlan::Image(wire);
        serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 2))
    };
    let lossless = run(WireFormat::Float32);
    let quantised = run(WireFormat::Quantised8Bit);
    assert_eq!(quantised.records.len(), lossless.records.len());
    assert!(quantised.records.iter().all(|r| r.exit == ExitPoint::Cloud));
    // The 1-byte codec shrinks the upload roughly 4x (f32 -> u8).
    assert!(quantised.stats.bytes_to_cloud * 3 < lossless.stats.bytes_to_cloud);
    // Edge-side fields are computed before quantisation: identical.
    for (q, l) in quantised.records.iter().zip(&lossless.records) {
        assert_eq!(q.truth, l.truth);
        assert_eq!(q.entropy, l.entropy);
        assert_eq!(q.main_prediction, l.main_prediction);
    }
    // Cloud predictions may flip on borderline images, but rarely.
    let n = lossless.records.len();
    let agree =
        quantised.records.iter().zip(&lossless.records).filter(|(q, l)| q.prediction == l.prediction).count();
    assert!(agree * 4 >= n * 3, "8-bit wire flipped too many predictions: {agree}/{n}");
}

#[test]
fn trace_requests_cover_the_dataset_in_order() {
    let bundle = presets::tiny(66);
    let mut rng = Rng::new(1);
    let reqs = trace_requests(&bundle.test, 4, &ArrivalModel::Poisson { rate_hz: 100.0 }, &mut rng);
    assert_eq!(reqs.len(), bundle.test.len());
    assert!(reqs.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
    // Per-device seq numbers are contiguous from 0.
    for d in 0..4 {
        let mut seqs: Vec<usize> = reqs.iter().filter(|r| r.device == d).map(|r| r.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..seqs.len()).collect::<Vec<_>>());
    }
}

#[test]
#[should_panic(expected = "sorted by arrival")]
fn unsorted_requests_rejected() {
    let bundle = presets::tiny(67);
    let mut reqs = instant_requests(&bundle.test, 1);
    reqs[0].arrival_s = 1.0;
    let mut edges = edge_replicas(1, 12);
    let _ = serve(&ServeConfig::new(OffloadPolicy::Never, 1, 0, 1), &mut edges, &mut [], &reqs);
}

#[test]
#[should_panic(expected = "requires a cloud model")]
fn offload_policy_without_cloud_workers_rejected() {
    let bundle = presets::tiny(68);
    let mut edges = edge_replicas(1, 13);
    let reqs = instant_requests(&bundle.test, 1);
    let _ = serve(&ServeConfig::new(OffloadPolicy::Always, 1, 0, 1), &mut edges, &mut [], &reqs);
}

/// A feature config with a fixed cut and the given wire.
fn feature_plan(wire: FeatureWire, cut: usize) -> PayloadPlan {
    PayloadPlan::Features(FeatureConfig { wire, cut: CutSelection::Fixed(cut) })
}

#[test]
fn feature_payload_any_fixed_cut_matches_image_mode_bitwise() {
    // The crux of the tentpole: shipping the activation at ANY cut and
    // resuming on the cloud is indistinguishable (in records) from
    // shipping pixels — the cut moves compute, never predictions.
    let bundle = presets::tiny(72);
    let policy = OffloadPolicy::EntropyThreshold(0.5);
    let run = |payload: PayloadPlan| {
        let mut edges = split_replicas(2, 16, 17);
        let mut clouds = replicas(2, || tiny_cloud(17));
        let mut cfg = ServeConfig::new(policy, 2, 2, 4);
        cfg.payload = payload;
        serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 3))
    };
    let image = run(PayloadPlan::Image(WireFormat::Float32));
    let layers = tiny_cloud(17).cut_layer_count();
    for cut in [0, 1, layers / 2, layers - 1] {
        let feat = run(feature_plan(FeatureWire::F32, cut));
        assert_eq!(feat.records, image.records, "cut {cut} changed records");
        if cut > 0 {
            assert!(feat.stats.cloud_macs_saved > 0, "cut {cut} saved no cloud MACs");
        }
        assert_eq!(
            feat.stats.cloud_macs + feat.stats.cloud_macs_saved,
            image.stats.cloud_macs,
            "cut {cut}: MAC split does not cover the full forward"
        );
        assert_eq!(feat.stats.final_cuts, Some(vec![cut]));
    }
    assert_eq!(image.stats.cloud_macs_saved, 0);
    assert_eq!(image.stats.final_cuts, None);
}

#[test]
fn deep_int8_cut_beats_raw_image_upload_on_bytes() {
    let bundle = presets::tiny(73);
    let run = |payload: PayloadPlan| {
        let mut edges = split_replicas(1, 18, 19);
        let mut clouds = replicas(1, || tiny_cloud(19));
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 4);
        cfg.payload = payload;
        serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 2))
    };
    let raw = run(PayloadPlan::Image(WireFormat::Quantised8Bit));
    let deep = tiny_cloud(19).cut_layer_count() - 1;
    let int8 = run(feature_plan(FeatureWire::Int8, deep));
    let f32_deep = run(feature_plan(FeatureWire::F32, deep));
    assert!(
        int8.stats.bytes_to_cloud < raw.stats.bytes_to_cloud,
        "deep int8 activations should undercut the raw-image upload: {} vs {}",
        int8.stats.bytes_to_cloud,
        raw.stats.bytes_to_cloud
    );
    // While f32 features at the same cut are bigger than the raw image
    // (the paper's objection to sending features from small images).
    assert!(f32_deep.stats.bytes_to_cloud > raw.stats.bytes_to_cloud);
    // Responses are charged: every offload pulls its prediction back.
    assert_eq!(int8.stats.bytes_from_cloud, RESPONSE_WIRE_BYTES * int8.stats.offloaded as u64);
    // Int8 may flip borderline predictions but serves everything.
    assert_eq!(int8.records.len(), raw.records.len());
    assert!(int8.records.iter().all(|r| r.exit == ExitPoint::Cloud));
}

#[test]
fn per_channel_int8_is_deterministic_and_undercuts_per_tensor_at_every_cut() {
    // The grid-indexed frames round-trip deterministically end to end
    // (same trace, same records, twice), and carrying the quant params
    // out of band in the calibrated grid makes every frame exactly 16
    // bytes smaller than its per-tensor twin at the same cut: 12 bytes
    // of embedded params plus the squeezed batch-axis dim.
    let bundle = presets::tiny(77);
    let run = |payload: PayloadPlan| {
        let mut edges = split_replicas(1, 46, 47);
        let mut clouds = replicas(1, || tiny_cloud(47));
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 4);
        cfg.payload = payload;
        serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 2))
    };
    for cut in 0..tiny_cloud(47).cut_layer_count() {
        let a = run(feature_plan(FeatureWire::PerChannelInt8, cut));
        let b = run(feature_plan(FeatureWire::PerChannelInt8, cut));
        assert_eq!(a.records, b.records, "cut {cut}: grid framing must be deterministic");
        assert_eq!(a.records.len(), bundle.test.len());
        assert!(a.records.iter().all(|r| r.exit == ExitPoint::Cloud));
        let per_tensor = run(feature_plan(FeatureWire::Int8, cut));
        assert_eq!(per_tensor.stats.offloaded, a.stats.offloaded);
        assert_eq!(
            per_tensor.stats.bytes_to_cloud - a.stats.bytes_to_cloud,
            16 * a.stats.offloaded as u64,
            "cut {cut}: the shared grid should save exactly the per-frame param overhead"
        );
    }
}

#[test]
fn governed_unreachable_sla_escalates_the_full_ladder() {
    // Deterministic single-lane run under an impossible budget: the
    // governor walks rung 1 (SLA-constrained replan), rungs 2-3 (the
    // int8 wires) and then spends β — and the cloud decodes the
    // mid-run mix of f32 / per-tensor / grid-indexed frames without a
    // hiccup, serving every request.
    let bundle = presets::tiny(84);
    let mut requests = Vec::new();
    for rep in 0..4 {
        for mut r in instant_requests(&bundle.test, 2) {
            r.seq += rep * bundle.test.len();
            requests.push(r);
        }
    }
    let mut edges = split_replicas(1, 48, 49);
    let mut clouds = replicas(1, || tiny_cloud(49));
    let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
    cfg.link = Some(NetworkLink::wifi(2.0).with_rtt(0.001));
    cfg.control = Some(ControlPlan::Governed(SlaTarget::new(1e-3, 0.80)));
    let report = serve(&cfg, &mut edges, &mut clouds, &requests);
    assert_eq!(report.records.len(), requests.len());
    assert!(
        report.stats.sla_violations >= 4,
        "every judged window violates a 1 µs budget, saw {}",
        report.stats.sla_violations
    );
    let traj = report.stats.control_trajectory.expect("governed runs report their trajectory");
    let last = traj.last().expect("trajectory holds at least the initial point");
    assert_eq!(
        last.wires,
        vec![FeatureWire::PerChannelInt8],
        "the ladder should exhaust the wire rungs down to per-channel int8"
    );
    assert!(last.beta_target.is_some(), "past the wire rungs the β rung must be spent");
    assert!(report.stats.governor_decisions >= 1, "wire moves count as decisions");
    assert_eq!(traj.first().expect("seeded").after_batches, 0, "trajectory starts at the initial point");
}

#[test]
fn control_plan_rejects_each_incoherent_combination_by_name() {
    let b = || ServeConfig::builder(OffloadPolicy::Always);
    let edge = DeviceProfile::new("edge", 10.0, 1e9);
    let planner = || CutPlannerConfig {
        classes: vec![edge.clone()],
        cloud: DeviceProfile::new("cloud", 200.0, 1e12),
        objective: Objective::Latency,
        feedback: None,
    };
    let closed = || ControlPlan::ClosedLoop {
        planner: planner(),
        feedback: LinkFeedback::default(),
        wire: FeatureWire::F32,
        controller: None,
    };
    // Governed without link telemetry has nothing to govern from.
    assert_eq!(
        b().control(ControlPlan::Governed(SlaTarget::new(50.0, 0.9))).build(),
        Err(ServeConfigError::GovernedWithoutTelemetry)
    );
    // Governed over a fixed cut cannot move the cut.
    assert_eq!(
        b().payload(feature_plan(FeatureWire::F32, 1))
            .control(ControlPlan::Governed(SlaTarget::new(50.0, 0.9)))
            .link(NetworkLink::wifi(10.0))
            .build(),
        Err(ServeConfigError::GovernedFixedCut)
    );
    // A plan carries its own controller slot; the legacy setter clashes.
    let controller =
        ControllerConfig { controller: ThresholdController::new(1.0, 0.5, 2.0, (0.0, 3.0)), window: 8 };
    #[allow(deprecated)]
    let with_both = b().controller(controller).control(closed()).link(NetworkLink::wifi(10.0)).build();
    assert_eq!(with_both, Err(ServeConfigError::ControlPlanControllerConflict));
    // A plan decides the payload; an explicit payload clashes.
    assert_eq!(
        b().payload(planned_payload(vec![edge.clone()])).control(closed()).link(NetworkLink::wifi(10.0)).build(),
        Err(ServeConfigError::ControlPlanPayloadConflict)
    );
    // ClosedLoop's own feedback slot is the only one.
    let mut doubled = planner();
    doubled.feedback = Some(LinkFeedback::default());
    assert_eq!(
        b().control(ControlPlan::ClosedLoop {
            planner: doubled,
            feedback: LinkFeedback::default(),
            wire: FeatureWire::F32,
            controller: None,
        })
        .link(NetworkLink::wifi(10.0))
        .build(),
        Err(ServeConfigError::ClosedLoopFeedbackConflict)
    );
    // And each coherent plan builds.
    assert!(b().control(ControlPlan::Static { cut: 1, wire: FeatureWire::F32, controller: None }).build().is_ok());
    assert!(b().control(closed()).link(NetworkLink::wifi(10.0)).build().is_ok());
    assert!(b()
        .control(ControlPlan::Governed(SlaTarget::new(50.0, 0.9)))
        .link(NetworkLink::wifi(10.0))
        .build()
        .is_ok());
}

#[test]
fn planned_cut_is_deterministic_and_in_range() {
    let bundle = presets::tiny(74);
    let planned = PayloadPlan::Features(FeatureConfig {
        wire: FeatureWire::Int8,
        cut: CutSelection::Planned(CutPlannerConfig {
            classes: vec![DeviceProfile::new("fast edge", 10.0, 1e12), DeviceProfile::new("slow edge", 10.0, 1e7)],
            cloud: DeviceProfile::new("cloud", 200.0, 1e11),
            objective: Objective::Latency,
            feedback: None,
        }),
    });
    let run = || {
        let mut edges = split_replicas(2, 20, 21);
        let mut clouds = replicas(1, || tiny_cloud(21));
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 2, 1, 4);
        cfg.payload = planned.clone();
        cfg.link = Some(NetworkLink::wifi(1.0).with_rtt(0.001));
        serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 4))
    };
    let a = run();
    let b = run();
    let cuts = a.stats.final_cuts.clone().expect("feature mode reports cuts");
    assert_eq!(cuts.len(), 2, "one cut per device class");
    let layers = tiny_cloud(21).cut_layer_count();
    assert!(cuts.iter().all(|&c| c < layers));
    assert_eq!(a.stats.final_cuts, b.stats.final_cuts, "closed-form planning must be deterministic");
    assert_eq!(a.records, b.records);
    assert_eq!(a.stats.cut_replans, 0, "no controller, no replans");
}

#[test]
fn controller_replans_cuts_without_touching_predictions() {
    // A controller window moves β; the planner re-derives the cut
    // under the new contention. With the lossless wire the records
    // still match plain image serving bit for bit.
    let bundle = presets::tiny(75);
    let mut requests = Vec::new();
    for rep in 0..4 {
        for mut r in instant_requests(&bundle.test, 4) {
            r.seq += rep * bundle.test.len();
            requests.push(r);
        }
    }
    let controller =
        Some(ControllerConfig { controller: ThresholdController::new(1.0, 0.5, 2.0, (0.0, 3.0)), window: 16 });
    // One edge worker: the controller's window feedback then happens
    // in arrival order, so both runs see the same threshold (and cut)
    // trajectory. With several edge workers the lock interleaving —
    // not the payload plan — can reorder observations.
    let run = |payload: PayloadPlan| {
        let mut edges = split_replicas(1, 22, 23);
        let mut clouds = replicas(2, || tiny_cloud(23));
        let mut cfg = ServeConfig::new(OffloadPolicy::Never, 1, 2, 4);
        cfg.payload = payload;
        cfg.controller = controller;
        cfg.link = Some(NetworkLink::wifi(40.0).with_rtt(0.0005));
        serve(&cfg, &mut edges, &mut clouds, &requests)
    };
    let planned = PayloadPlan::Features(FeatureConfig {
        wire: FeatureWire::F32,
        cut: CutSelection::Planned(CutPlannerConfig {
            classes: vec![DeviceProfile::new("edge", 10.0, 1e8)],
            cloud: DeviceProfile::new("cloud", 200.0, 1e11),
            objective: Objective::Latency,
            feedback: None,
        }),
    });
    let feat = run(planned);
    let image = run(PayloadPlan::Image(WireFormat::Float32));
    assert_eq!(feat.records, image.records, "replanning leaked into predictions");
    assert!(feat.stats.final_cuts.is_some());
}

/// Rebuilds the planner exactly as `build_cut_table` does for an F32
/// feature plan over the tiny cloud: same env, same stream count.
fn planner_like_serve(cloud_seed: u64, link: NetworkLink, edge: &DeviceProfile, streams: usize) -> CutPlanner {
    let prefix = tiny_cloud(cloud_seed);
    let in_elems: u64 = prefix.in_shape.iter().map(|&d| d as u64).product();
    let env = PartitionEnv {
        edge: edge.clone(),
        cloud: DeviceProfile::new("cloud", 200.0, 1e12),
        link,
        bytes_per_elem: 4,
        raw_input_bytes: 4 * in_elems,
        response_bytes: RESPONSE_WIRE_BYTES,
    };
    CutPlanner::from_network(&prefix, env, Objective::Latency, streams)
}

#[test]
fn stream_count_uses_distinct_devices_not_max_id() {
    // Regression: the planner's contention model used to estimate the
    // stream count as `max(device id) + 1`, so a trace from devices
    // {0, 7} was charged as EIGHT concurrent uploaders instead of two,
    // inflating β·streams and pushing the planned cut away from where
    // the actual two-stream contention warrants.
    let bundle = presets::tiny(80);
    let edge = DeviceProfile::new("edge", 10.0, 1e9);
    // Find a link rate where 2-stream and 8-stream contention plan
    // different cuts (such a rate must exist: the effective rates
    // differ 4x), so the test can detect which model served.
    let rate = (0..60)
        .map(|i| 0.05 * 1.3f64.powi(i))
        .find(|&r| {
            let two = planner_like_serve(29, NetworkLink::wifi(r).with_rtt(0.001), &edge, 2);
            let eight = planner_like_serve(29, NetworkLink::wifi(r).with_rtt(0.001), &edge, 8);
            two.plan_for(&edge).cut != eight.plan_for(&edge).cut
        })
        .expect("some rate separates 2-stream from 8-stream contention");
    let link = NetworkLink::wifi(rate).with_rtt(0.001);
    let expected_cut = planner_like_serve(29, link, &edge, 2).plan_for(&edge).cut;
    let wrong_cut = planner_like_serve(29, link, &edge, 8).plan_for(&edge).cut;
    assert_ne!(expected_cut, wrong_cut, "rate search guaranteed a separation");

    // Sparse trace: the same frames, but the second device is id 7.
    let mut requests = instant_requests(&bundle.test, 2);
    for r in &mut requests {
        if r.device == 1 {
            r.device = 7;
        }
    }
    let planned = PayloadPlan::Features(FeatureConfig {
        wire: FeatureWire::F32,
        cut: CutSelection::Planned(CutPlannerConfig {
            classes: vec![edge.clone()],
            cloud: DeviceProfile::new("cloud", 200.0, 1e12),
            objective: Objective::Latency,
            feedback: None,
        }),
    });
    let mut edges = split_replicas(2, 28, 29);
    let mut clouds = replicas(1, || tiny_cloud(29));
    let mut cfg = ServeConfig::new(OffloadPolicy::Always, 2, 1, 4);
    cfg.payload = planned;
    cfg.link = Some(link);
    let report = serve(&cfg, &mut edges, &mut clouds, &requests);
    assert_eq!(
        report.stats.final_cuts,
        Some(vec![expected_cut]),
        "sparse ids {{0, 7}} must be planned as two streams, not eight"
    );
}

#[test]
fn measured_degradation_replans_toward_an_edge_heavier_cut() {
    // The closed loop end to end: the wire silently degrades 50x
    // mid-run; the static contention model can never see it, but the
    // cloud workers' per-batch telemetry does, and the planner moves
    // the cut toward the edge (smaller uploads). 1 edge x 1 cloud x
    // max_batch 1 keeps the batch order and hence the whole feedback
    // trajectory deterministic.
    let bundle = presets::tiny(81);
    // A slow edge device makes the nominal plan shallow (ship early,
    // the cloud is 2000x faster); once the wire degrades 200x, paying
    // the edge prefix to shrink the upload wins.
    let nominal = NetworkLink::wifi(100.0).with_rtt(0.0002);
    let degraded = NetworkLink::wifi(0.5).with_rtt(0.0002);
    let edge = DeviceProfile::new("edge", 10.0, 5e8);
    let run = |feedback: Option<LinkFeedback>| {
        let mut edges = split_replicas(1, 30, 31);
        let mut clouds = replicas(1, || tiny_cloud(31));
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
        let planner = CutPlannerConfig {
            classes: vec![edge.clone()],
            cloud: DeviceProfile::new("cloud", 200.0, 1e12),
            objective: Objective::Latency,
            feedback: None,
        };
        match feedback {
            Some(fb) => {
                cfg.control = Some(ControlPlan::ClosedLoop {
                    planner,
                    feedback: fb,
                    wire: FeatureWire::F32,
                    controller: None,
                });
            }
            None => {
                cfg.payload = PayloadPlan::Features(FeatureConfig {
                    wire: FeatureWire::F32,
                    cut: CutSelection::Planned(planner),
                });
            }
        }
        cfg.link = Some(nominal);
        cfg.link_schedule = vec![LinkChange { after_batches: 8, link: degraded }];
        serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 1))
    };
    let closed = run(Some(LinkFeedback { alpha: 0.5, prior_samples: 0.0, replan_every: 4 }));
    let open = run(None);

    // Open loop: the degradation happened, nobody replanned.
    assert_eq!(open.stats.cut_replans, 0);
    assert!(open.stats.link_estimates.is_none());
    let open_cut = open.stats.final_cuts.clone().expect("planned mode")[0];

    // Closed loop: telemetry saw the slower wire and the plan moved.
    assert!(closed.stats.cut_replans >= 1, "degradation never reached the planner");
    let closed_cut = closed.stats.final_cuts.clone().expect("planned mode")[0];
    assert!(closed_cut > open_cut, "cut should move edge-heavier: {open_cut} -> {closed_cut}");
    let cloud_net = tiny_cloud(31);
    let profiles = profile_network(&cloud_net);
    let in_elems: u64 = cloud_net.in_shape.iter().map(|&d| d as u64).product();
    let upload = |cut: usize| if cut == 0 { 4 * in_elems } else { 4 * profiles[cut - 1].out_elems };
    assert!(upload(closed_cut) < upload(open_cut), "edge-heavier cut must shrink the upload");

    // The estimator converged onto the degraded wire (EWMA of exact
    // per-batch observations; the nominal prefix decays geometrically).
    let ests = closed.stats.link_estimates.expect("feedback reports estimates");
    let est = ests[0].expect("class 0 observed");
    assert_eq!(est.samples, closed.stats.offloaded as u64, "one observation per served batch");
    assert!((est.up_mbps - 0.5).abs() / 0.5 < 0.05, "estimate {} should track 0.5 Mbps", est.up_mbps);
    assert!((est.rtt_s - 0.0002).abs() < 1e-9);

    // The cut is a pure cost knob: closed- and open-loop runs serve
    // bitwise-identical records under the lossless wire.
    assert_eq!(closed.records, open.records, "replanning leaked into predictions");
}

#[test]
#[should_panic(expected = "link schedule needs a link")]
fn link_schedule_without_link_rejected() {
    let bundle = presets::tiny(82);
    let mut edges = edge_replicas(1, 33);
    let mut cfg = ServeConfig::new(OffloadPolicy::Never, 1, 0, 1);
    cfg.link_schedule = vec![LinkChange { after_batches: 1, link: NetworkLink::wifi(1.0) }];
    let _ = serve(&cfg, &mut edges, &mut [], &instant_requests(&bundle.test, 1));
}

#[test]
#[should_panic(expected = "no cloud prefix")]
fn feature_mode_without_prefixes_rejected() {
    let bundle = presets::tiny(76);
    let mut edges = edge_replicas(1, 24);
    let mut clouds = replicas(1, || tiny_cloud(25));
    let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
    cfg.payload = feature_plan(FeatureWire::F32, 1);
    let _ = serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 1));
}

#[test]
#[should_panic(expected = "out of range")]
fn fixed_cut_out_of_range_rejected() {
    let bundle = presets::tiny(78);
    let mut edges = split_replicas(1, 26, 27);
    let mut clouds = replicas(1, || tiny_cloud(27));
    let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
    cfg.payload = feature_plan(FeatureWire::F32, tiny_cloud(27).cut_layer_count());
    let _ = serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 1));
}

#[test]
fn payload_pipeline_round_trips_in_order_across_workers() {
    let mut rng = Rng::new(0);
    let payloads: Vec<Payload> = (0..12)
        .map(|i| {
            let t = Tensor::randn([3, 4, 4], 1.0, &mut rng).map(|v| v + i as f32);
            Payload::Features { features: t }
        })
        .collect();
    let expected_bytes: u64 = payloads.iter().map(|p| p.wire_size_bytes()).sum();
    for workers in [1usize, 3] {
        let (results, stats) =
            run_payload_pipeline(payloads.clone(), workers, 4, Duration::from_millis(1), 4, |p| {
                p.as_tensor().sum().clamp(0.0, 11.0) as usize
            });
        assert_eq!(results.len(), 12);
        assert_eq!(stats.payloads, 12);
        assert_eq!(stats.bytes_sent, expected_bytes);
        let (serial, _) = run_payload_pipeline(payloads.clone(), 1, 1, Duration::ZERO, 4, |p| {
            p.as_tensor().sum().clamp(0.0, 11.0) as usize
        });
        assert_eq!(results, serial, "worker/batch configuration changed results");
    }
}

#[test]
fn scheduled_link_keys_on_started_batches() {
    // `after_batches: 3` means "the 4th started batch (and later) rides
    // the new link": a batch with 3 starts before it has crossed the
    // boundary, one with 2 has not.
    let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
    let before = NetworkLink::wifi(100.0);
    let after = NetworkLink::wifi(1.0);
    cfg.link = Some(before);
    cfg.link_schedule = vec![LinkChange { after_batches: 3, link: after }];
    assert_eq!(scheduled_link(&cfg, 2), Some(before));
    assert_eq!(scheduled_link(&cfg, 3), Some(after));
    assert_eq!(scheduled_link(&cfg, 9), Some(after));
}

#[test]
fn link_change_fires_on_the_started_batch_boundary() {
    // Regression for the started-vs-completed ambiguity: a change due
    // at batch 3 must leave EXACTLY the first three started batches on
    // the fast link, even with two cloud workers racing to dequeue.
    // The fast link is effectively free; the slow one costs 0.2 s of
    // RTT, so per-request latency separates the two regimes cleanly.
    let bundle = presets::tiny(83);
    let mut reqs = instant_requests(&bundle.test, 2);
    reqs.truncate(12);
    let mut edges = edge_replicas(1, 34);
    let mut clouds = replicas(2, || tiny_cloud(35));
    let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 2, 1);
    cfg.link = Some(NetworkLink::wifi(10_000.0).with_rtt(0.0));
    cfg.link_schedule = vec![LinkChange { after_batches: 3, link: NetworkLink::wifi(10_000.0).with_rtt(0.2) }];
    let report = serve(&cfg, &mut edges, &mut clouds, &reqs);
    assert_eq!(report.stats.cloud_batches, 12, "max_batch 1 means one batch per offload");
    let fast = report.completions.iter().filter(|c| c.latency_s < 0.1).count();
    assert_eq!(fast, 3, "exactly the batches started before the boundary ride the fast link");
}

#[test]
#[should_panic(expected = "non-finite arrival time")]
fn trace_requests_reject_non_finite_arrivals() {
    // `0 * inf = NaN`: an infinite uniform interval passes the model's
    // own `>= 0` parameter check but yields a NaN first arrival.
    let bundle = presets::tiny(84);
    let mut rng = Rng::new(0);
    let _ = trace_requests(&bundle.test, 1, &ArrivalModel::Uniform { interval_s: f64::INFINITY }, &mut rng);
}

#[test]
#[should_panic(expected = "non-finite arrival time")]
fn serve_rejects_non_finite_arrivals() {
    // A NaN smuggled into a hand-built trace must be named up front,
    // not surface as a misleading "sorted by arrival" comparator error.
    let bundle = presets::tiny(85);
    let mut reqs = instant_requests(&bundle.test, 1);
    reqs[3].arrival_s = f64::NAN;
    let mut edges = edge_replicas(1, 36);
    let _ = serve(&ServeConfig::new(OffloadPolicy::Never, 1, 0, 1), &mut edges, &mut [], &reqs);
}

#[test]
#[should_panic(expected = "edge worker 0 panicked")]
fn worker_panic_propagates_instead_of_hanging() {
    // A poisoned frame (wrong channel count) blows up the edge forward
    // mid-run. The collector used to block forever on `done_rx.recv()`;
    // now the runtime joins the workers and re-raises the original
    // panic, naming the worker that died.
    let bundle = presets::tiny(86);
    let mut reqs = instant_requests(&bundle.test, 1);
    let mid = reqs.len() / 2;
    reqs[mid].image = Tensor::zeros([1, 1, 8, 8]);
    let mut edges = edge_replicas(1, 37);
    let mut clouds = replicas(2, || tiny_cloud(38));
    let _ = serve(&ServeConfig::new(OffloadPolicy::Always, 1, 2, 1), &mut edges, &mut clouds, &reqs);
}

#[test]
fn pipe_transport_matches_modelled_records_bitwise() {
    // The acceptance bar of the transport tentpole: byte-identical
    // frames ride a real buffered byte stream instead of a modelled
    // channel, so records, uplink bytes, and downlink bytes all match
    // the modelled path exactly — on every payload plan and cut.
    let bundle = presets::tiny(87);
    let deep = tiny_cloud(41).cut_layer_count() - 1;
    let plans = [
        PayloadPlan::Image(WireFormat::Float32),
        PayloadPlan::Image(WireFormat::Quantised8Bit),
        feature_plan(FeatureWire::F32, 2),
        feature_plan(FeatureWire::Int8, deep),
    ];
    for plan in plans {
        let run = |transport: TransportKind| {
            let mut edges = split_replicas(2, 40, 41);
            let mut clouds = replicas(2, || tiny_cloud(41));
            let mut cfg = ServeConfig::new(OffloadPolicy::EntropyThreshold(0.5), 2, 2, 4);
            cfg.payload = plan.clone();
            cfg.transport = transport;
            serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 3))
        };
        let modelled = run(TransportKind::Modelled);
        let mut real_wires = vec![("pipe", TransportKind::Pipe(PipeConfig::default()))];
        #[cfg(unix)]
        real_wires.push(("uds", TransportKind::Uds(crate::transport::UdsConfig::default())));
        for (wire, kind) in real_wires {
            let real = run(kind);
            assert_eq!(real.records, modelled.records, "{plan:?}: {wire} transport changed records");
            assert_eq!(real.stats.offloaded, modelled.stats.offloaded);
            assert_eq!(
                real.stats.bytes_to_cloud, modelled.stats.bytes_to_cloud,
                "{plan:?}: {wire} uplink bytes diverged"
            );
            assert_eq!(
                real.stats.bytes_from_cloud, modelled.stats.bytes_from_cloud,
                "{plan:?}: {wire} downlink bytes diverged"
            );
        }
    }
}

#[test]
fn pipe_telemetry_measures_the_real_wire_not_the_model() {
    // Pace the pipe's uplink at 4 Mbps while telling the planner the
    // link is 100 Mbps. The estimator must report the paced wire (from
    // Instant::now() deltas around real sends), not echo the model.
    let bundle = presets::tiny(88);
    let mut edges = split_replicas(1, 42, 43);
    let mut clouds = replicas(1, || tiny_cloud(43));
    let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
    cfg.control = Some(ControlPlan::ClosedLoop {
        planner: CutPlannerConfig {
            classes: vec![DeviceProfile::new("edge", 10.0, 5e8)],
            cloud: DeviceProfile::new("cloud", 200.0, 1e12),
            objective: Objective::Latency,
            feedback: None,
        },
        feedback: LinkFeedback { alpha: 0.5, prior_samples: 0.0, replan_every: 4 },
        wire: FeatureWire::F32,
        controller: None,
    });
    cfg.link = Some(NetworkLink::wifi(100.0).with_rtt(0.0));
    cfg.transport = TransportKind::Pipe(PipeConfig { up_mbps: Some(4.0), ..PipeConfig::default() });
    let report = serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 1));
    let ests = report.stats.link_estimates.expect("feedback reports estimates");
    let est = ests[0].expect("class 0 observed");
    assert_eq!(est.samples, report.stats.offloaded as u64, "one observation per served batch");
    assert!(
        est.up_mbps > 1.0 && est.up_mbps < 16.0,
        "measured estimate {} Mbps should track the 4 Mbps pace, not the 100 Mbps model",
        est.up_mbps
    );
}

#[test]
fn pipe_throttle_replans_toward_an_edge_heavier_cut() {
    // The closed loop over REAL wall-clock time: the pipe's pacer
    // silently throttles 50 -> 0.4 Mbps mid-run. The static model is
    // never told, but the measured estimates are, and the planner
    // moves the cut toward the edge (smaller uploads) — the modelled
    // analogue of `measured_degradation_replans_toward_an_edge_heavier_cut`.
    let edge = DeviceProfile::new("edge", 10.0, 5e8);
    let bundle = presets::tiny(89);
    let run = |throttle: Vec<PaceChange>| {
        let mut edges = split_replicas(1, 44, 45);
        let mut clouds = replicas(1, || tiny_cloud(45));
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
        cfg.control = Some(ControlPlan::ClosedLoop {
            planner: CutPlannerConfig {
                classes: vec![edge.clone()],
                cloud: DeviceProfile::new("cloud", 200.0, 1e12),
                objective: Objective::Latency,
                feedback: None,
            },
            feedback: LinkFeedback { alpha: 0.5, prior_samples: 0.0, replan_every: 4 },
            wire: FeatureWire::F32,
            controller: None,
        });
        cfg.link = Some(NetworkLink::wifi(100.0).with_rtt(0.0002));
        cfg.transport = TransportKind::Pipe(PipeConfig { up_mbps: Some(50.0), throttle, ..PipeConfig::default() });
        serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 1))
    };
    let steady = run(Vec::new());
    let throttled = run(vec![PaceChange { after_frames: 8, up_mbps: 0.4 }]);
    assert!(throttled.stats.cut_replans >= 1, "throttle never reached the planner");
    let steady_cut = steady.stats.final_cuts.clone().expect("planned mode")[0];
    let throttled_cut = throttled.stats.final_cuts.clone().expect("planned mode")[0];
    assert!(
        throttled_cut > steady_cut,
        "cut should move edge-heavier under the real throttle: {steady_cut} -> {throttled_cut}"
    );
    // Lossless wire: the cut stays a pure cost knob even when the
    // schedule is driven by measured time.
    assert_eq!(throttled.records, steady.records, "replanning leaked into predictions");
}

/// A planned-cut feature payload over the given classes (no feedback).
fn planned_payload(classes: Vec<DeviceProfile>) -> PayloadPlan {
    PayloadPlan::Features(FeatureConfig {
        wire: FeatureWire::F32,
        cut: CutSelection::Planned(CutPlannerConfig {
            classes,
            cloud: DeviceProfile::new("cloud", 200.0, 1e12),
            objective: Objective::Latency,
            feedback: None,
        }),
    })
}

#[test]
fn builder_rejects_each_static_invariant_by_name() {
    let b = || ServeConfig::builder(OffloadPolicy::Always);
    let edge = DeviceProfile::new("edge", 10.0, 1e9);
    assert_eq!(b().edge_workers(0).build(), Err(ServeConfigError::NoEdgeWorkers));
    assert_eq!(b().max_batch(0).build(), Err(ServeConfigError::ZeroMaxBatch));
    assert_eq!(b().queue_depth(0).build(), Err(ServeConfigError::ZeroQueueDepth));
    let schedule = vec![LinkChange { after_batches: 1, link: NetworkLink::wifi(1.0) }];
    assert_eq!(b().link_schedule(schedule.clone()).build(), Err(ServeConfigError::ScheduleWithoutLink));
    assert_eq!(
        b().link(NetworkLink::wifi(1.0))
            .link_schedule(schedule)
            .transport(TransportKind::Pipe(PipeConfig::default()))
            .build(),
        Err(ServeConfigError::ScheduleOnPipe)
    );
    let controller =
        ControllerConfig { controller: ThresholdController::new(1.0, 0.5, 2.0, (0.0, 3.0)), window: 0 };
    assert_eq!(b().controller(controller).build(), Err(ServeConfigError::ControllerWindowEmpty));
    assert_eq!(b().cloud_workers(0).build(), Err(ServeConfigError::PolicyNeedsCloud));
    // An edge-only policy without cloud workers stays legal.
    assert!(ServeConfig::builder(OffloadPolicy::Never).cloud_workers(0).build().is_ok());
    assert_eq!(
        b().payload(planned_payload(Vec::new())).link(NetworkLink::wifi(1.0)).build(),
        Err(ServeConfigError::NoPlannerClasses)
    );
    assert_eq!(
        b().payload(planned_payload(vec![edge.clone()])).build(),
        Err(ServeConfigError::PlannedCutWithoutLink)
    );
    let feedback = Some(LinkFeedback { replan_every: 0, ..LinkFeedback::default() });
    let never_replans = PayloadPlan::Features(FeatureConfig {
        wire: FeatureWire::F32,
        cut: CutSelection::Planned(CutPlannerConfig {
            classes: vec![edge.clone()],
            cloud: DeviceProfile::new("cloud", 200.0, 1e12),
            objective: Objective::Latency,
            feedback,
        }),
    });
    assert_eq!(
        b().payload(never_replans).link(NetworkLink::wifi(1.0)).build(),
        Err(ServeConfigError::FeedbackNeverReplans)
    );
    let spec = FleetSpec::uniform(DeviceClass::new("edge", edge.clone(), ComputeTier::High));
    assert_eq!(
        b().payload(planned_payload(vec![edge])).link(NetworkLink::wifi(1.0)).fleet(spec).build(),
        Err(ServeConfigError::FleetClassesConflict)
    );
    // And a fully specified valid configuration builds.
    let cfg = b().edge_workers(2).cloud_workers(1).max_batch(4).build().expect("valid config");
    assert_eq!((cfg.edge_workers, cfg.cloud_workers, cfg.max_batch), (2, 1, 4));
}

#[test]
fn config_errors_keep_the_legacy_panic_wording() {
    // The deprecated `serve` shim panics with `{error}`; every
    // `#[should_panic(expected = ...)]` substring that guarded the old
    // asserts must therefore survive in the Display impls.
    for (error, legacy) in [
        (ServeConfigError::PolicyNeedsCloud, "requires a cloud model"),
        (ServeConfigError::ScheduleWithoutLink, "link schedule needs a link"),
        (ServeConfigError::NoEdgeWorkers, "need at least one edge worker"),
    ] {
        assert!(error.to_string().contains(legacy), "{error:?} lost its wording: {error}");
    }
    for (error, legacy) in [
        (ServeError::UnsortedArrivals, "sorted by arrival"),
        (ServeError::NonFiniteArrival { index: 0, device: 0, seq: 0 }, "non-finite arrival time"),
        (ServeError::MissingCloudPrefix { worker: 0 }, "no cloud prefix"),
        (ServeError::FixedCutOutOfRange { cut: 9, cut_layers: 9 }, "out of range"),
    ] {
        assert!(error.to_string().contains(legacy), "{error:?} lost its wording: {error}");
    }
    // Config errors surface their source through the ServeError chain.
    let wrapped = ServeError::from(ServeConfigError::NoEdgeWorkers);
    assert_eq!(wrapped, ServeError::Config(ServeConfigError::NoEdgeWorkers));
    assert!(std::error::Error::source(&wrapped).is_some());
}

/// A deeper cloud variant (two blocks per stage): same input shape as
/// [`tiny_cloud`], different layer enumeration.
fn deeper_cloud(seed: u64) -> SegmentedCnn {
    let mut rng = Rng::new(seed);
    let mut cfg = CifarResNetConfig::repro_scale(6);
    cfg.input_hw = 8;
    cfg.channels = [16, 24, 32];
    cfg.blocks_per_stage = 2;
    resnet_cifar(&cfg, &mut rng)
}

#[test]
fn try_serve_names_every_runtime_inconsistency() {
    let bundle = presets::tiny(150);
    let reqs = instant_requests(&bundle.test, 1);
    let mut edges = edge_replicas(1, 50);
    let mut clouds = replicas(1, || tiny_cloud(51));

    let two_workers = ServeConfig::new(OffloadPolicy::Never, 2, 0, 1);
    assert_eq!(
        try_serve(&two_workers, &mut edges, &mut [], &reqs).unwrap_err(),
        ServeError::EdgeReplicaMismatch { workers: 2, replicas: 1 }
    );
    let no_cloud = ServeConfig::new(OffloadPolicy::Never, 1, 0, 1);
    assert_eq!(
        try_serve(&no_cloud, &mut edges, &mut clouds, &reqs).unwrap_err(),
        ServeError::CloudReplicaMismatch { workers: 0, replicas: 1 }
    );

    let cfg = ServeConfig::new(OffloadPolicy::Never, 1, 0, 1);
    let mut unsorted = reqs.clone();
    unsorted[0].arrival_s = 1.0;
    assert_eq!(try_serve(&cfg, &mut edges, &mut [], &unsorted).unwrap_err(), ServeError::UnsortedArrivals);
    // Finiteness is named before sortedness: a NaN fails every
    // comparison, so it must not masquerade as "unsorted".
    let mut nan = reqs.clone();
    nan[2].arrival_s = f64::NAN;
    assert!(matches!(
        try_serve(&cfg, &mut edges, &mut [], &nan),
        Err(ServeError::NonFiniteArrival { index: 2, .. })
    ));
    let mut negative = reqs.clone();
    negative[0].arrival_s = -1.0;
    assert_eq!(
        try_serve(&cfg, &mut edges, &mut [], &negative).unwrap_err(),
        ServeError::NegativeArrival { index: 0 }
    );
    let mut batched = reqs.clone();
    batched[1].image = Tensor::zeros([2, 3, 8, 8]);
    assert_eq!(
        try_serve(&cfg, &mut edges, &mut [], &batched).unwrap_err(),
        ServeError::NotSingleInstance { index: 1 }
    );

    // Feature-payload inconsistencies.
    let mut features = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
    features.payload = feature_plan(FeatureWire::F32, 1);
    assert_eq!(
        try_serve(&features, &mut edges, &mut clouds, &reqs).unwrap_err(),
        ServeError::MissingCloudPrefix { worker: 0 }
    );
    let mut split = split_replicas(1, 52, 53);
    let layers = tiny_cloud(53).cut_layer_count();
    let mut out_of_range = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
    out_of_range.payload = feature_plan(FeatureWire::F32, layers);
    let mut clouds53 = replicas(1, || tiny_cloud(53));
    assert_eq!(
        try_serve(&out_of_range, &mut split, &mut clouds53, &reqs).unwrap_err(),
        ServeError::FixedCutOutOfRange { cut: layers, cut_layers: layers }
    );
    let mut deeper = replicas(1, || deeper_cloud(53));
    let mut fixed0 = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
    fixed0.payload = feature_plan(FeatureWire::F32, 0);
    assert_eq!(
        try_serve(&fixed0, &mut split, &mut deeper, &reqs).unwrap_err(),
        ServeError::PrefixMismatch { edge_layers: layers, cloud_layers: deeper_cloud(53).cut_layer_count() }
    );
    // A config error reaches try_serve callers wrapped.
    let zero_batch = ServeConfig::new(OffloadPolicy::Never, 1, 0, 0);
    assert_eq!(
        try_serve(&zero_batch, &mut edges, &mut [], &reqs).unwrap_err(),
        ServeError::Config(ServeConfigError::ZeroMaxBatch)
    );
}

#[test]
fn fleet_serve_matches_the_free_function_bitwise() {
    let bundle = presets::tiny(151);
    let cfg = ServeConfig::builder(OffloadPolicy::EntropyThreshold(0.8))
        .edge_workers(2)
        .cloud_workers(1)
        .max_batch(4)
        .build()
        .expect("valid config");
    let reqs = instant_requests(&bundle.test, 3);
    let mut edges = edge_replicas(2, 54);
    let mut clouds = replicas(1, || tiny_cloud(55));
    let expected = try_serve(&cfg, &mut edges, &mut clouds, &reqs).expect("serves");

    let mut fleet = Fleet::new(cfg, edge_replicas(2, 54), replicas(1, || tiny_cloud(55))).expect("consistent");
    assert!(fleet.spec().is_none(), "no registry configured");
    let report = fleet.serve(&reqs).expect("serves");
    assert_eq!(report.records, expected.records);
    assert_eq!(report.stats.offloaded, expected.stats.offloaded);
    // The parts come back out for rebuilding.
    let (cfg, edges, clouds) = fleet.into_parts();
    assert_eq!((edges.len(), clouds.len()), (cfg.edge_workers, cfg.cloud_workers));
}

#[test]
fn fleet_new_rejects_mismatched_replicas_up_front() {
    let cfg = ServeConfig::new(OffloadPolicy::Never, 2, 0, 1);
    let err = Fleet::new(cfg, edge_replicas(1, 56), Vec::new()).expect_err("one replica short");
    assert_eq!(err, ServeError::EdgeReplicaMismatch { workers: 2, replicas: 1 });
    assert!(err.to_string().contains("one edge replica per edge worker"));
}

#[test]
fn uniform_high_tier_fleet_matches_the_legacy_planner_path_bitwise() {
    // Backward compatibility of the registry: a single High-tier class
    // (scale factor 1.0, no link prior) must reproduce the legacy
    // `CutPlannerConfig::classes` path bit for bit — same cuts, same
    // records — because `scaled_throughput(1.0)` preserves the profile
    // and an absent prior falls back to the shared link model.
    let bundle = presets::tiny(152);
    let edge = DeviceProfile::new("edge", 10.0, 5e8);
    let link = NetworkLink::wifi(1.0).with_rtt(0.001);
    let run = |classes: Vec<DeviceProfile>, fleet: Option<FleetSpec>| {
        let mut edges = split_replicas(2, 58, 59);
        let mut clouds = replicas(1, || tiny_cloud(59));
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 2, 1, 4);
        cfg.payload = planned_payload(classes);
        cfg.link = Some(link);
        cfg.fleet = fleet;
        try_serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 2)).expect("serves")
    };
    let legacy = run(vec![edge.clone()], None);
    let spec = FleetSpec::uniform(DeviceClass::new("edge", edge, ComputeTier::High));
    let fleet = run(Vec::new(), Some(spec));
    assert_eq!(fleet.records, legacy.records);
    assert_eq!(fleet.stats.final_cuts, legacy.stats.final_cuts);
    assert_eq!(fleet.stats.bytes_to_cloud, legacy.stats.bytes_to_cloud);
    // Only the registry path reports per-class breakdowns.
    assert!(legacy.stats.per_class_served.is_none());
    let served = fleet.stats.per_class_served.expect("fleet stats");
    assert_eq!(served, vec![fleet.stats.total]);
}

#[test]
fn heterogeneous_tiers_plan_per_class_cuts_from_effective_profiles() {
    // The heart of the heterogeneity tentpole: two classes sharing one
    // hardware profile but different compute tiers must plan different
    // cuts once a link rate separates their effective throughputs —
    // and the planned cuts must equal what an offline planner derives
    // from the tier-scaled profiles.
    let bundle = presets::tiny(153);
    let base = DeviceProfile::new("edge", 10.0, 5e8);
    let high = DeviceClass::new("high", base.clone(), ComputeTier::High);
    let low = DeviceClass::new("low", base, ComputeTier::Low);
    let (hp, lp) = (high.effective_profile(), low.effective_profile());
    let rate = (0..60)
        .map(|i| 0.05 * 1.3f64.powi(i))
        .find(|&r| {
            let planner = planner_like_serve(61, NetworkLink::wifi(r).with_rtt(0.001), &hp, 2);
            planner.plan_for(&hp).cut != planner.plan_for(&lp).cut
        })
        .expect("some rate separates the High and Low tiers");
    let link = NetworkLink::wifi(rate).with_rtt(0.001);
    let planner = planner_like_serve(61, link, &hp, 2);
    let expected = vec![planner.plan_for(&hp).cut, planner.plan_for(&lp).cut];

    let mut edges = split_replicas(2, 60, 61);
    let mut clouds = replicas(1, || tiny_cloud(61));
    let cfg = ServeConfig::builder(OffloadPolicy::Always)
        .edge_workers(2)
        .cloud_workers(1)
        .max_batch(4)
        .payload(planned_payload(Vec::new()))
        .link(link)
        .fleet(FleetSpec::round_robin(vec![high, low]))
        .build()
        .expect("valid config");
    let report = try_serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 2)).expect("serves");
    assert_eq!(report.stats.final_cuts, Some(expected.clone()));
    assert_ne!(expected[0], expected[1], "tiers must plan different cuts");

    // Round-robin assignment: devices {0, 1} split across the classes,
    // and the per-class breakdown partitions the totals.
    let served = report.stats.per_class_served.clone().expect("fleet stats");
    let offload = report.stats.per_class_offload.clone().expect("fleet stats");
    assert_eq!(served.iter().sum::<usize>(), report.stats.total);
    assert_eq!(offload.iter().sum::<usize>(), report.stats.offloaded);
    assert!(served.iter().all(|&s| s > 0), "both classes serve traffic: {served:?}");
    let latency = report.stats.per_class_latency.expect("fleet stats");
    assert!(latency.iter().all(Option::is_some), "both classes record latencies");
}

#[test]
fn explicit_assignment_overrides_the_modulo_convention() {
    // `FleetSpec::assign` must beat `device % classes`: pin both
    // devices to class 1 and the class-0 row of every per-class stat
    // stays empty.
    let bundle = presets::tiny(154);
    let base = DeviceProfile::new("edge", 10.0, 1e9);
    let spec = FleetSpec::round_robin(vec![
        DeviceClass::new("a", base.clone(), ComputeTier::High),
        DeviceClass::new("b", base, ComputeTier::Medium),
    ])
    .assign(0, 1)
    .assign(1, 1);
    let cfg = ServeConfig::builder(OffloadPolicy::Always)
        .edge_workers(2)
        .cloud_workers(1)
        .max_batch(4)
        .fleet(spec)
        .build()
        .expect("valid config");
    let mut edges = edge_replicas(2, 62);
    let mut clouds = replicas(1, || tiny_cloud(63));
    let report = try_serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 2)).expect("serves");
    let served = report.stats.per_class_served.expect("fleet stats");
    assert_eq!(served[0], 0, "every device is pinned to class b");
    assert_eq!(served[1], report.stats.total);
    assert_eq!(report.stats.per_class_latency.expect("fleet stats")[0], None, "empty class has no histogram");
}

#[test]
fn difficulty_routing_skips_main_exits_and_settles_easy_locally() {
    // Algorithm-2 short-circuits: predicted-hard requests pre-commit
    // to the cloud WITHOUT running the main exit (the saved forwards
    // are counted), predicted-easy requests refuse the offload leg
    // entirely, and ambiguous requests take the unchanged route.
    let bundle = presets::tiny(155);
    let mut calibration = tiny_net(64);
    let predictor = DifficultyPredictor::calibrate(&mut calibration, &bundle.train.images, 8);
    let reqs = instant_requests(&bundle.test, 2);
    let verdicts: Vec<Difficulty> = reqs.iter().map(|r| predictor.predict(&r.image)).collect();
    let hard = verdicts.iter().filter(|&&d| d == Difficulty::Hard).count();
    let easy = verdicts.iter().filter(|&&d| d == Difficulty::Easy).count();
    assert!(hard > 0 && easy > 0, "calibration must spread the trace across bands: {verdicts:?}");

    let run = |difficulty: Option<DifficultyPredictor>| {
        let mut edges = edge_replicas(2, 64);
        let mut clouds = replicas(1, || tiny_cloud(65));
        let mut cfg = ServeConfig::new(OffloadPolicy::EntropyThreshold(0.8), 2, 1, 4);
        cfg.difficulty = difficulty;
        try_serve(&cfg, &mut edges, &mut clouds, &reqs).expect("serves")
    };
    let plain = run(None);
    let routed = run(Some(predictor.clone()));

    assert_eq!(plain.stats.skipped_main_exits, 0, "no predictor, no skips");
    assert_eq!(routed.stats.total, plain.stats.total, "routing must not drop requests");
    // Every predicted-hard request skipped its main-exit forward …
    assert_eq!(routed.stats.skipped_main_exits, hard);
    // … and is recognisable in the records by the sentinel.
    let precommitted = routed.records.iter().filter(|r| r.main_prediction == PendingCloud::PRECOMMITTED).count();
    assert_eq!(precommitted, hard);
    for (verdict, record) in verdicts.iter().zip(&routed.records) {
        match verdict {
            Difficulty::Hard => assert_eq!(record.exit, ExitPoint::Cloud, "hard pre-commits to the cloud"),
            Difficulty::Easy => assert_ne!(record.exit, ExitPoint::Cloud, "easy settles on the edge"),
            Difficulty::Ambiguous => {}
        }
    }
}

#[test]
fn difficulty_respects_an_edge_only_policy() {
    // `wants_precommit` defers to the policy: with no cloud at all a
    // predicted-hard request must still run the normal local route
    // (there is nowhere to pre-commit to).
    let bundle = presets::tiny(156);
    let mut calibration = tiny_net(66);
    let predictor = DifficultyPredictor::calibrate(&mut calibration, &bundle.train.images, 8);
    let mut edges = edge_replicas(1, 66);
    let mut cfg = ServeConfig::new(OffloadPolicy::Never, 1, 0, 1);
    cfg.difficulty = Some(predictor);
    let report = try_serve(&cfg, &mut edges, &mut [], &instant_requests(&bundle.test, 1)).expect("serves");
    assert_eq!(report.stats.offloaded, 0);
    assert_eq!(report.stats.skipped_main_exits, 0, "edge-only serving never pre-commits");
    assert_eq!(report.stats.total, bundle.test.len());
    assert!(report.records.iter().all(|r| r.exit != ExitPoint::Cloud));
}

#[test]
fn forced_multi_stage_placement_is_record_identical_to_its_final_cut() {
    // The tentpole's degeneracy proof at the serving layer: a forced
    // 3-stage placement (edge → peer → cloud) serves the exact records
    // of the fixed scalar cut at the same final cut. The peer hop ships
    // the lossless f32 codec through a bitwise prefix replica, so
    // splitting the prefix across edge devices is a pure cost knob.
    let bundle = presets::tiny(190);
    let layers = tiny_cloud(91).cut_layer_count();
    let fin = layers / 2 + 1;
    assert!(fin >= 2, "need room for a local/peer split");
    let run = |cut: CutSelection| {
        let mut edges = split_replicas(2, 90, 91);
        let mut clouds = replicas(1, || tiny_cloud(91));
        let mut cfg = ServeConfig::new(OffloadPolicy::EntropyThreshold(0.5), 2, 1, 4);
        cfg.payload = PayloadPlan::Features(FeatureConfig { wire: FeatureWire::F32, cut });
        serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 3))
    };
    let fixed = run(CutSelection::Fixed(fin));
    let placed = run(CutSelection::Placement(PlacementPlan::three_stage(1, fin, 0, layers)));
    assert_eq!(placed.records, fixed.records, "the peer stage changed records");
    assert_eq!(placed.stats.bytes_to_cloud, fixed.stats.bytes_to_cloud, "same final cut, same WAN bytes");
    assert_eq!(placed.stats.final_cuts, Some(vec![fin]));
    // Every offload paid exactly one peer hop, and the hop shipped real
    // bytes; the scalar path never touched the peer wire.
    assert_eq!(placed.stats.peer_hops, placed.stats.offloaded as u64);
    assert!(placed.stats.offloaded > 0, "threshold 0.5 offloads some of the trace");
    assert!(placed.stats.peer_bytes > 0);
    assert_eq!(fixed.stats.peer_hops, 0);
    assert_eq!(fixed.stats.peer_bytes, 0);
    let plans = placed.stats.placements.expect("feature mode reports placements");
    assert_eq!(plans[0].stages().len(), 3);
    assert!(plans[0].peer_stage().is_some());
    let fixed_plans = fixed.stats.placements.expect("feature mode reports placements");
    assert!(fixed_plans[0].is_two_stage(), "a fixed cut is the two-stage special case");
}

#[test]
fn coop_fleet_plans_multi_stage_placements_and_keeps_records() {
    // Cooperative edge splitting end to end: a Low-tier class pooled
    // into a 3-member coop group over a fast intra-edge wire plans a
    // multi-stage placement the solo class does not, the placement
    // matches the offline placement planner exactly, and the records are
    // identical with and without the pool (the plan is a cost knob).
    let bundle = presets::tiny(191);
    let base = DeviceProfile::new("edge", 10.0, 5e8);
    let coop_link = NetworkLink::wifi(400.0).with_rtt(0.0005);
    let spec_with = |coop: bool| {
        let mut dc = DeviceClass::new("low", base.clone(), ComputeTier::Low);
        if coop {
            dc = dc.coop_group(3, coop_link);
        }
        FleetSpec::uniform(dc)
    };
    let eff = spec_with(false).classes()[0].effective_profile();
    let pool = spec_with(true).peer_pools()[0].clone().expect("coop group pools");
    // Find a WAN rate where the pool actually changes the plan (the
    // pooled peers absorb deep prefix layers the solo class cannot).
    let rate = (0..60)
        .map(|i| 0.05 * 1.3f64.powi(i))
        .find(|&r| {
            let planner = planner_like_serve(93, NetworkLink::wifi(r).with_rtt(0.001), &eff, 2);
            let coop = planner.plan_placement_for_measured(&eff, None, Some(&pool));
            coop.plan.peer_stage().is_some()
        })
        .expect("some WAN rate makes the pool worthwhile");
    let link = NetworkLink::wifi(rate).with_rtt(0.001);
    let offline = planner_like_serve(93, link, &eff, 2);
    let expected_coop = offline.plan_placement_for_measured(&eff, None, Some(&pool));
    let expected_solo = offline.plan_placement_for_measured(&eff, None, None);

    let run = |coop: bool| {
        let mut edges = split_replicas(2, 92, 93);
        let mut clouds = replicas(1, || tiny_cloud(93));
        let cfg = ServeConfig::builder(OffloadPolicy::Always)
            .edge_workers(2)
            .cloud_workers(1)
            .max_batch(8)
            .payload(planned_payload(Vec::new()))
            .link(link)
            .fleet(spec_with(coop))
            .build()
            .expect("valid config");
        try_serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 2)).expect("serves")
    };
    let coop = run(true);
    let solo = run(false);
    assert_eq!(coop.records, solo.records, "the pool changed records");
    assert_eq!(coop.stats.placements, Some(vec![expected_coop.plan.clone()]));
    assert_eq!(solo.stats.placements, Some(vec![expected_solo.plan.clone()]));
    assert!(coop.stats.placements.as_ref().unwrap()[0].peer_stage().is_some());
    assert_eq!(coop.stats.final_cuts, Some(vec![expected_coop.plan.final_cut()]));
    // Every offload paid the peer hop; the solo run never did.
    assert_eq!(coop.stats.peer_hops, coop.stats.offloaded as u64);
    assert!(coop.stats.peer_bytes > 0);
    assert_eq!(solo.stats.peer_hops, 0);
}

#[test]
fn placement_validation_rejects_each_mismatch_by_name() {
    let bundle = presets::tiny(192);
    let layers = tiny_cloud(95).cut_layer_count();
    let run = |cut: CutSelection| {
        let mut edges = split_replicas(1, 94, 95);
        let mut clouds = replicas(1, || tiny_cloud(95));
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
        cfg.payload = PayloadPlan::Features(FeatureConfig { wire: FeatureWire::F32, cut });
        try_serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 1))
    };
    // A plan over the wrong layer count cannot line up with the prefix.
    let short = PlacementPlan::two_stage(1, layers - 1);
    assert_eq!(
        run(CutSelection::Placement(short)).err(),
        Some(ServeError::PlacementLayerMismatch { plan_layers: layers - 1, cut_layers: layers })
    );
    // A final cut swallowing the whole network leaves the cloud nothing
    // to run — rejected exactly like the scalar fixed cut.
    let edge_only = PlacementPlan::two_stage(layers, layers);
    assert_eq!(
        run(CutSelection::Placement(edge_only)).err(),
        Some(ServeError::FixedCutOutOfRange { cut: layers, cut_layers: layers })
    );
    // And the governor refuses a forced placement just like a fixed cut.
    let forced = PlacementPlan::three_stage(1, 2, 0, layers);
    let plan =
        PayloadPlan::Features(FeatureConfig { wire: FeatureWire::F32, cut: CutSelection::Placement(forced) });
    assert_eq!(
        ServeConfig::builder(OffloadPolicy::Always)
            .payload(plan)
            .control(ControlPlan::Governed(SlaTarget::new(50.0, 0.9)))
            .link(NetworkLink::wifi(10.0))
            .build(),
        Err(ServeConfigError::GovernedFixedCut)
    );
    // A well-formed forced placement serves.
    let ok = PlacementPlan::three_stage(1, layers / 2 + 1, 0, layers);
    assert!(run(CutSelection::Placement(ok)).is_ok());
}
