//! Property-based tests on the serving runtime: per-device response
//! ordering under dynamic batching, record equivalence with the offline
//! sweep under arbitrary worker/batch configurations, and cut-point
//! invariance of feature-payload serving.

use mea_data::{presets, ClassDict};
use mea_edgecloud::serve::{
    serve, trace_requests, CutSelection, EdgeReplica, FeatureConfig, FeatureWire, PayloadPlan, ServeConfig,
};
use mea_edgecloud::traces::ArrivalModel;
use mea_nn::models::{resnet_cifar, CifarResNetConfig, SegmentedCnn};
use mea_tensor::Rng;
use meanet::infer::run_inference_with_policy;
use meanet::model::{AdaptivePlan, MeaNet, Merge, Variant};
use meanet::{ExitPoint, OffloadPolicy};
use proptest::prelude::*;
use std::time::Duration;

fn tiny_net(seed: u64) -> MeaNet {
    let mut rng = Rng::new(seed);
    let mut cfg = CifarResNetConfig::repro_scale(6);
    cfg.input_hw = 8;
    let backbone = resnet_cifar(&cfg, &mut rng);
    let mut net = MeaNet::from_backbone(
        backbone,
        Variant::FullBackbone { extension_channels: 8, extension_blocks: 1 },
        Merge::Sum,
        &mut rng,
    );
    net.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, ClassDict::new(&[0, 2, 4]), &mut rng);
    net
}

fn tiny_cloud(seed: u64) -> SegmentedCnn {
    let mut rng = Rng::new(seed);
    let mut cfg = CifarResNetConfig::repro_scale(6);
    cfg.input_hw = 8;
    cfg.channels = [16, 24, 32];
    resnet_cifar(&cfg, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Dynamic batching never reorders responses *per device*: within one
    /// device's stream, cloud completions come back in sequence order and
    /// local completions come back in sequence order, whatever the worker
    /// topology, batch cap or coalescing wait. (A local exit may overtake
    /// an earlier in-flight offload — that cross-exit interleaving is
    /// inherent to early-exit serving — but the cloud path itself is
    /// device-FIFO end to end.)
    #[test]
    fn dynamic_batching_preserves_per_device_order(
        devices in 1usize..5,
        edge_workers in 1usize..4,
        cloud_workers in 1usize..4,
        max_batch in 1usize..9,
        wait_us in 0u64..2000,
        threshold in 0.0f32..2.0,
    ) {
        let bundle = presets::tiny(70);
        let mut rng = Rng::new(5);
        let requests =
            trace_requests(&bundle.test, devices, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
        let mut edges: Vec<EdgeReplica> = (0..edge_workers).map(|_| EdgeReplica::new(tiny_net(21))).collect();
        let mut clouds: Vec<SegmentedCnn> = (0..cloud_workers).map(|_| tiny_cloud(22)).collect();
        let mut cfg = ServeConfig::new(
            OffloadPolicy::EntropyThreshold(threshold),
            edge_workers,
            cloud_workers,
            max_batch,
        );
        cfg.max_wait = Duration::from_micros(wait_us);
        let report = serve(&cfg, &mut edges, &mut clouds, &requests);
        prop_assert_eq!(report.completions.len(), requests.len());

        for d in 0..devices {
            let mut last_cloud_seq = None;
            let mut last_local_seq = None;
            for c in report.completions.iter().filter(|c| c.device == d) {
                let slot = if c.record.exit == ExitPoint::Cloud {
                    &mut last_cloud_seq
                } else {
                    &mut last_local_seq
                };
                if let Some(prev) = *slot {
                    prop_assert!(
                        c.seq > prev,
                        "device {} exit {:?}: seq {} completed after seq {}",
                        d, c.record.exit, c.seq, prev
                    );
                }
                *slot = Some(c.seq);
            }
        }
    }

    /// Whatever the configuration, the records equal the sequential
    /// offline sweep's — worker scheduling is invisible in the output.
    #[test]
    fn any_configuration_matches_the_offline_sweep(
        devices in 1usize..4,
        edge_workers in 1usize..4,
        cloud_workers in 1usize..3,
        max_batch in 1usize..6,
        batch_size in 1usize..17,
        threshold in 0.0f32..2.0,
    ) {
        let bundle = presets::tiny(71);
        let policy = OffloadPolicy::EntropyThreshold(threshold);
        let mut offline_net = tiny_net(23);
        let mut offline_cloud = tiny_cloud(24);
        let expected = run_inference_with_policy(
            &mut offline_net,
            Some(&mut offline_cloud),
            &bundle.test,
            policy,
            batch_size,
        );

        let mut rng = Rng::new(6);
        let requests =
            trace_requests(&bundle.test, devices, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
        let mut edges: Vec<EdgeReplica> = (0..edge_workers).map(|_| EdgeReplica::new(tiny_net(23))).collect();
        let mut clouds: Vec<SegmentedCnn> = (0..cloud_workers).map(|_| tiny_cloud(24)).collect();
        let cfg = ServeConfig::new(policy, edge_workers, cloud_workers, max_batch);
        let report = serve(&cfg, &mut edges, &mut clouds, &requests);
        prop_assert_eq!(report.records, expected);
    }

    /// Any cut index yields bitwise-identical cloud predictions: serving
    /// with a feature payload (lossless wire) at an arbitrary cut, under
    /// an arbitrary worker/batch topology, reproduces the offline sweep's
    /// records exactly — and saves the cloud exactly the prefix MACs.
    #[test]
    fn any_cut_yields_bitwise_identical_cloud_predictions(
        cut_pick in 0usize..1000,
        devices in 1usize..4,
        edge_workers in 1usize..3,
        cloud_workers in 1usize..3,
        max_batch in 1usize..6,
        threshold in 0.0f32..1.5,
    ) {
        let bundle = presets::tiny(79);
        let policy = OffloadPolicy::EntropyThreshold(threshold);
        let mut offline_net = tiny_net(25);
        let mut offline_cloud = tiny_cloud(26);
        let expected =
            run_inference_with_policy(&mut offline_net, Some(&mut offline_cloud), &bundle.test, policy, 8);

        let layers = tiny_cloud(26).cut_layer_count();
        let cut = cut_pick % layers;
        let mut rng = Rng::new(7);
        let requests =
            trace_requests(&bundle.test, devices, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
        let mut edges: Vec<EdgeReplica> = (0..edge_workers)
            .map(|_| EdgeReplica::with_cloud_prefix(tiny_net(25), tiny_cloud(26)))
            .collect();
        let mut clouds: Vec<SegmentedCnn> = (0..cloud_workers).map(|_| tiny_cloud(26)).collect();
        let mut cfg = ServeConfig::new(policy, edge_workers, cloud_workers, max_batch);
        cfg.payload = PayloadPlan::Features(FeatureConfig {
            wire: FeatureWire::F32,
            cut: CutSelection::Fixed(cut),
        });
        let report = serve(&cfg, &mut edges, &mut clouds, &requests);
        prop_assert_eq!(report.records, expected, "cut {} diverged", cut);
        prop_assert_eq!(report.stats.final_cuts, Some(vec![cut]));
        // MAC conservation: executed + saved = offloads x full forward.
        let total_macs: u64 = tiny_cloud(26).total_macs();
        prop_assert_eq!(
            report.stats.cloud_macs + report.stats.cloud_macs_saved,
            report.stats.offloaded as u64 * total_macs
        );
    }
}
