//! Shape-error paths of the matmul and convolution kernels: every
//! mismatched-dimension case must fail loudly (a typed `Err` from
//! constructors, a panic with a diagnostic message from the hot-path
//! kernels) rather than computing garbage. Complements the property suite
//! in `properties.rs`, which only exercises well-formed shapes.

use mea_tensor::conv::{col2im, im2col, ConvGeom};
use mea_tensor::{matmul, Tensor, TensorError};

// ---- constructor / reshape errors (typed Results) ----

#[test]
fn from_vec_rejects_length_mismatch() {
    let err = Tensor::from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
    assert_eq!(err, TensorError::LengthMismatch { expected: 6, got: 5 });
}

#[test]
fn from_vec_rejects_zero_dimension() {
    assert!(matches!(Tensor::from_vec(vec![], &[0, 3]), Err(TensorError::InvalidShape { .. })));
}

#[test]
fn from_vec_rejects_empty_shape() {
    assert!(matches!(Tensor::from_vec(vec![1.0], &[]), Err(TensorError::InvalidShape { .. })));
}

#[test]
fn reshape_rejects_element_count_change() {
    let t = Tensor::zeros([2, 3]);
    assert_eq!(t.reshape(&[7]).unwrap_err(), TensorError::LengthMismatch { expected: 7, got: 6 });
}

// ---- matmul family (panicking hot paths) ----

#[test]
#[should_panic(expected = "must be a matrix")]
fn matmul_rejects_non_matrix_lhs() {
    let a = Tensor::zeros([2, 3, 4]);
    let b = Tensor::zeros([4, 2]);
    matmul::matmul(&a, &b);
}

#[test]
#[should_panic(expected = "must be a matrix")]
fn matmul_rejects_vector_rhs() {
    let a = Tensor::zeros([2, 3]);
    let b = Tensor::zeros([3]);
    matmul::matmul(&a, &b);
}

#[test]
#[should_panic(expected = "inner dimension mismatch")]
fn matmul_rejects_inner_dim_mismatch() {
    matmul::matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
}

#[test]
#[should_panic(expected = "matmul_a_bt shared dimension mismatch")]
fn matmul_a_bt_rejects_shared_dim_mismatch() {
    // A: [m, k], B: [n, k'] with k != k'.
    matmul::matmul_a_bt(&Tensor::zeros([2, 3]), &Tensor::zeros([5, 4]));
}

#[test]
#[should_panic(expected = "matmul_at_b shared dimension mismatch")]
fn matmul_at_b_rejects_shared_dim_mismatch() {
    // A: [k, m], B: [k', n] with k != k'.
    matmul::matmul_at_b(&Tensor::zeros([3, 2]), &Tensor::zeros([4, 5]));
}

// ---- convolution geometry (panicking hot paths) ----

#[test]
#[should_panic(expected = "larger than padded input")]
fn out_hw_rejects_kernel_larger_than_padded_input() {
    // 5x5 kernel over a 3x3 input with pad 0 cannot produce any output.
    ConvGeom::square(1, 5, 1, 0).out_hw(3, 3);
}

#[test]
fn out_hw_accepts_kernel_exactly_fitting_padded_input() {
    // Padding can make an otherwise-too-large kernel legal; boundary case.
    assert_eq!(ConvGeom::square(1, 5, 1, 1).out_hw(3, 3), (1, 1));
}

#[test]
#[should_panic(expected = "image length mismatch")]
fn im2col_rejects_wrong_image_length() {
    let geom = ConvGeom::square(2, 3, 1, 1);
    // 2 channels of 4x4 need 32 values; pass one channel's worth.
    im2col(&[0.0; 16], 4, 4, &geom);
}

#[test]
#[should_panic(expected = "col2im shape mismatch")]
fn col2im_rejects_wrong_cols_shape() {
    let geom = ConvGeom::square(1, 3, 1, 1);
    let cols = Tensor::zeros([9, 99]); // 4x4 input needs [9, 16]
    let mut grad = vec![0.0; 16];
    col2im(&cols, 4, 4, &geom, &mut grad);
}

#[test]
#[should_panic(expected = "image gradient length mismatch")]
fn col2im_rejects_wrong_grad_length() {
    let geom = ConvGeom::square(1, 3, 1, 1);
    let cols = Tensor::zeros([9, 16]);
    let mut grad = vec![0.0; 5]; // needs 16
    col2im(&cols, 4, 4, &geom, &mut grad);
}

// ---- elementwise shape agreement ----

#[test]
#[should_panic(expected = "shape mismatch")]
fn add_assign_rejects_shape_mismatch() {
    let mut a = Tensor::zeros([2, 3]);
    a.add_assign(&Tensor::zeros([3, 2]));
}
