//! A windowed quantile view over a [`StreamingHistogram`] pair.
//!
//! Closed-loop controllers (the serving governor) need *recent* latency
//! quantiles, not lifetime ones: a p95 dominated by the first thousand
//! fast requests hides a link degradation for thousands more. This type
//! keeps two histograms — one cumulative for end-of-run reporting, one
//! covering only the observations since the last [`WindowedQuantiles::roll`]
//! — so a control loop can read the live window each decision epoch and
//! still report lifetime quantiles at the end.

use crate::streaming::StreamingHistogram;

/// A cumulative + current-window histogram pair with identical bucket
/// layouts. Every [`WindowedQuantiles::record`] lands in both; `roll()`
/// hands the finished window out and starts a fresh one.
#[derive(Debug, Clone)]
pub struct WindowedQuantiles {
    cumulative: StreamingHistogram,
    window: StreamingHistogram,
}

impl Default for WindowedQuantiles {
    fn default() -> Self {
        Self::for_latency()
    }
}

impl WindowedQuantiles {
    /// A pair of latency-ranged histograms ([`StreamingHistogram::for_latency`]).
    pub fn for_latency() -> Self {
        WindowedQuantiles {
            cumulative: StreamingHistogram::for_latency(),
            window: StreamingHistogram::for_latency(),
        }
    }

    /// Records one observation into both the cumulative view and the
    /// current window.
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite value (the histograms' own
    /// contract).
    pub fn record(&mut self, value: f64) {
        self.cumulative.record(value);
        self.window.record(value);
    }

    /// Observations in the current (un-rolled) window.
    pub fn window_count(&self) -> u64 {
        self.window.count()
    }

    /// Observations recorded since construction.
    pub fn count(&self) -> u64 {
        self.cumulative.count()
    }

    /// The window's `q`-quantile without closing it, or `None` while the
    /// window is empty.
    pub fn window_quantile(&self, q: f64) -> Option<f64> {
        (self.window.count() > 0).then(|| self.window.quantile(q))
    }

    /// The lifetime `q`-quantile, or `None` before the first observation.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        (self.cumulative.count() > 0).then(|| self.cumulative.quantile(q))
    }

    /// Closes the current window: returns it and starts an empty one. The
    /// cumulative view is untouched.
    pub fn roll(&mut self) -> StreamingHistogram {
        std::mem::replace(&mut self.window, StreamingHistogram::for_latency())
    }

    /// The lifetime histogram (for end-of-run reporting).
    pub fn cumulative(&self) -> &StreamingHistogram {
        &self.cumulative
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_lands_in_both_views() {
        let mut w = WindowedQuantiles::for_latency();
        for i in 1..=100 {
            w.record(i as f64 * 1e-3);
        }
        assert_eq!(w.count(), 100);
        assert_eq!(w.window_count(), 100);
        // Same data → same quantile from both views.
        assert_eq!(w.quantile(0.95), w.window_quantile(0.95));
    }

    #[test]
    fn roll_resets_the_window_but_not_the_cumulative_view() {
        let mut w = WindowedQuantiles::for_latency();
        for _ in 0..10 {
            w.record(0.010);
        }
        let closed = w.roll();
        assert_eq!(closed.count(), 10);
        assert_eq!(w.window_count(), 0);
        assert_eq!(w.count(), 10);
        assert_eq!(w.window_quantile(0.95), None);
        // A degradation shows up in the fresh window immediately, while
        // the cumulative view blends both regimes.
        for _ in 0..10 {
            w.record(1.0);
        }
        let live = w.window_quantile(0.5).unwrap();
        let lifetime = w.quantile(0.5).unwrap();
        assert!(live > 0.5, "live window sees only the slow regime, got {live}");
        assert!(lifetime < live, "cumulative median blends the fast prefix");
    }

    #[test]
    fn empty_quantiles_are_none_not_panics() {
        let w = WindowedQuantiles::for_latency();
        assert_eq!(w.quantile(0.95), None);
        assert_eq!(w.window_quantile(0.95), None);
    }
}
