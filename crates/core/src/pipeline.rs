//! End-to-end orchestration of the distributed system: cloud pretraining,
//! hard-class selection, blockwise edge training and the cloud DNN — the
//! complete Algorithm 1 followed by everything Algorithm 2 needs.

use crate::hard_classes::Selection;
use crate::infer::{run_inference, InferenceConfig, InstanceRecord};
use crate::model::{AdaptivePlan, MeaNet, Merge, Variant};
use crate::stats::{evaluate_main_exit, MainEval};
use crate::thresholds::entropy_stats;
use crate::train::{
    build_hard_dataset, train_backbone, train_edge_blocks, train_main_exit, EpochStats, TrainConfig,
};
use mea_data::Dataset;
use mea_metrics::EntropyStats;
use mea_nn::models::{
    mobilenet_v2, resnet_cifar, resnet_imagenet, CifarResNetConfig, ImageNetResNetConfig, MobileNetConfig,
    SegmentedCnn,
};
use mea_tensor::Rng;

/// Which reference architecture to instantiate.
#[derive(Debug, Clone)]
pub enum BackboneChoice {
    /// CIFAR-style ResNet (paper's ResNet32 family).
    CifarResNet(CifarResNetConfig),
    /// ImageNet-style ResNet (paper's ResNet18 / ResNet101 family).
    ImageNetResNet(ImageNetResNetConfig),
    /// MobileNetV2.
    MobileNet(MobileNetConfig),
}

impl BackboneChoice {
    /// Instantiates the network.
    pub fn build(&self, rng: &mut Rng) -> SegmentedCnn {
        match self {
            BackboneChoice::CifarResNet(cfg) => resnet_cifar(cfg, rng),
            BackboneChoice::ImageNetResNet(cfg) => resnet_imagenet(cfg, rng),
            BackboneChoice::MobileNet(cfg) => mobilenet_v2(cfg, rng),
        }
    }
}

/// Full configuration of a distributed training pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Edge backbone architecture.
    pub backbone: BackboneChoice,
    /// MEANet variant (model A split / model B full).
    pub variant: Variant,
    /// Feature merge mode at the extension input.
    pub merge: Merge,
    /// How the edge-trained adaptive mirror (and fresh-extension bridge)
    /// is built; [`AdaptivePlan::DepthwiseSeparable`] is the paper-faithful
    /// default.
    pub adaptive: AdaptivePlan,
    /// Hard-class selection strategy.
    pub selection: Selection,
    /// Cloud DNN architecture (None = edge-only system).
    pub cloud: Option<BackboneChoice>,
    /// Schedule for the cloud DNN (the cloud has no resource constraint,
    /// so it typically trains longer than the edge backbone).
    pub cloud_pretrain: TrainConfig,
    /// Schedule for backbone pretraining.
    pub pretrain: TrainConfig,
    /// Schedule for fitting a fresh model-A main exit.
    pub exit_train: TrainConfig,
    /// Schedule for blockwise edge training.
    pub edge_train: TrainConfig,
    /// Fraction of the training set held out as validation (paper: 10%).
    pub val_fraction: f64,
    /// Master seed (weights, splits, shuffles).
    pub seed: u64,
}

impl PipelineConfig {
    /// Repro-scale model A on a CIFAR-like dataset: ResNet split after two
    /// of four segments, cloud = deeper/wider ResNet.
    pub fn repro_resnet_a(num_classes: usize, epochs: usize, seed: u64) -> Self {
        let mut backbone = CifarResNetConfig::repro_scale(num_classes);
        backbone.input_hw = 16;
        let mut cloud = CifarResNetConfig::repro_scale(num_classes);
        cloud.input_hw = 16;
        cloud.blocks_per_stage = 3;
        cloud.channels = [12, 24, 48];
        PipelineConfig {
            backbone: BackboneChoice::CifarResNet(backbone),
            variant: Variant::SplitBackbone { main_segments: 2 },
            merge: Merge::Sum,
            adaptive: AdaptivePlan::default(),
            selection: Selection::HardestByPrecision { n: (num_classes / 2).max(1) },
            cloud: Some(BackboneChoice::CifarResNet(cloud)),
            cloud_pretrain: TrainConfig::repro(epochs * 2),
            pretrain: TrainConfig::repro(epochs),
            exit_train: TrainConfig::repro((epochs / 2).max(2)),
            edge_train: TrainConfig::repro(epochs),
            val_fraction: 0.1,
            seed,
        }
    }

    /// Repro-scale model B on a CIFAR-like dataset.
    pub fn repro_resnet_b(num_classes: usize, epochs: usize, seed: u64) -> Self {
        let mut cfg = Self::repro_resnet_a(num_classes, epochs, seed);
        cfg.variant = Variant::FullBackbone { extension_channels: 32, extension_blocks: 2 };
        cfg
    }

    /// Repro-scale model B on an ImageNet-like dataset (ResNet main block).
    pub fn repro_imagenet_resnet_b(num_classes: usize, epochs: usize, seed: u64) -> Self {
        let backbone = ImageNetResNetConfig::repro_scale(num_classes);
        let mut cloud = ImageNetResNetConfig::repro_scale(num_classes);
        cloud.blocks_per_stage = [2, 2, 2, 2];
        cloud.channels = [12, 24, 36, 48];
        PipelineConfig {
            backbone: BackboneChoice::ImageNetResNet(backbone),
            variant: Variant::FullBackbone { extension_channels: 32, extension_blocks: 2 },
            merge: Merge::Sum,
            adaptive: AdaptivePlan::default(),
            selection: Selection::HardestByPrecision { n: (num_classes / 2).max(1) },
            cloud: Some(BackboneChoice::ImageNetResNet(cloud)),
            cloud_pretrain: TrainConfig::repro(epochs * 2),
            pretrain: TrainConfig::repro(epochs),
            exit_train: TrainConfig::repro((epochs / 2).max(2)),
            edge_train: TrainConfig::repro(epochs),
            val_fraction: 0.1,
            seed,
        }
    }

    /// Repro-scale model B with a MobileNetV2 main block (paper: "the
    /// extension block for model B is designed to have four residual
    /// blocks").
    pub fn repro_mobilenet_b(num_classes: usize, epochs: usize, seed: u64) -> Self {
        let mut cloud = ImageNetResNetConfig::repro_scale(num_classes);
        cloud.blocks_per_stage = [2, 2, 2, 2];
        cloud.channels = [12, 24, 36, 48];
        PipelineConfig {
            backbone: BackboneChoice::MobileNet(MobileNetConfig::repro_scale(num_classes)),
            variant: Variant::FullBackbone { extension_channels: 48, extension_blocks: 4 },
            merge: Merge::Sum,
            adaptive: AdaptivePlan::default(),
            selection: Selection::HardestByPrecision { n: (num_classes / 2).max(1) },
            cloud: Some(BackboneChoice::ImageNetResNet(cloud)),
            cloud_pretrain: TrainConfig::repro(epochs * 2),
            pretrain: TrainConfig::repro(epochs),
            exit_train: TrainConfig::repro((epochs / 2).max(2)),
            edge_train: TrainConfig::repro(epochs),
            val_fraction: 0.1,
            seed,
        }
    }
}

/// The trained distributed system plus everything measured along the way.
#[derive(Debug)]
pub struct Pipeline {
    /// The trained MEANet (edge blocks attached and trained).
    pub net: MeaNet,
    /// The trained cloud DNN, if configured.
    pub cloud: Option<SegmentedCnn>,
    /// Main-exit evaluation on the validation split (drives hard-class
    /// selection and threshold calibration).
    pub val_eval: MainEval,
    /// Entropy statistics `(µ_correct, µ_wrong)` on the validation split.
    pub entropy: EntropyStats,
    /// Hard classes in selection order.
    pub hard_classes: Vec<usize>,
    /// Backbone pretraining curve.
    pub pretrain_stats: Vec<EpochStats>,
    /// Edge (blockwise) training curve.
    pub edge_stats: Vec<EpochStats>,
    /// The 90% training split used for edge training (pre-remap).
    pub train_split: Dataset,
    /// The 10% validation split.
    pub val_split: Dataset,
}

impl Pipeline {
    /// Runs the full Algorithm-1 pipeline on a training set.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (e.g. model A with concat
    /// merge) — see [`MeaNet::from_backbone`].
    pub fn run(cfg: &PipelineConfig, train_full: &Dataset) -> Pipeline {
        let mut rng = Rng::new(cfg.seed);

        // Step 0: hold out validation (paper: 10% of training data).
        let (val_split, train_split) = train_full.split_fraction(cfg.val_fraction, &mut rng);

        // Step 1: train the edge backbone at the "cloud" on all classes.
        let mut backbone = cfg.backbone.build(&mut rng);
        let pretrain_stats = train_backbone(&mut backbone, &train_split, &cfg.pretrain);

        // Assemble the MEANet; model A additionally fits its fresh exit.
        let mut net = MeaNet::from_backbone(backbone, cfg.variant, cfg.merge, &mut rng);
        if matches!(cfg.variant, Variant::SplitBackbone { .. }) {
            let _ = train_main_exit(&mut net, &train_split, &cfg.exit_train);
        }

        // Step 2: validation statistics determine the hard classes.
        let val_eval = evaluate_main_exit(&mut net, &val_split, cfg.pretrain.batch_size);
        let dict = cfg.selection.select_dict(&val_eval.confusion);
        let hard_classes = dict.hard_classes().to_vec();

        // Steps 3–8: attach and train the edge blocks on the hard subset.
        net.attach_edge_blocks(cfg.adaptive, dict.clone(), &mut rng);
        let hard_train = build_hard_dataset(&train_split, &dict);
        let edge_stats = train_edge_blocks(&mut net, &hard_train, &cfg.edge_train);

        // The independent cloud DNN trains on the full training set.
        let cloud = cfg.cloud.as_ref().map(|choice| {
            let mut cloud_net = choice.build(&mut rng);
            let _ = train_backbone(&mut cloud_net, train_full, &cfg.cloud_pretrain);
            cloud_net
        });

        let entropy = entropy_stats(&val_eval);
        Pipeline {
            net,
            cloud,
            val_eval,
            entropy,
            hard_classes,
            pretrain_stats,
            edge_stats,
            train_split,
            val_split,
        }
    }

    /// Edge-only Algorithm-2 records on a dataset.
    pub fn infer_edge_only(&mut self, data: &Dataset, batch: usize) -> Vec<InstanceRecord> {
        run_inference(&mut self.net, None, data, &InferenceConfig::edge_only(batch))
    }

    /// Edge-cloud Algorithm-2 records at a given entropy threshold.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline was built without a cloud model.
    pub fn infer_distributed(&mut self, data: &Dataset, threshold: f32, batch: usize) -> Vec<InstanceRecord> {
        let cloud = self.cloud.as_mut().expect("pipeline has no cloud model");
        run_inference(&mut self.net, Some(cloud), data, &InferenceConfig::with_cloud(threshold, batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ExitStats;
    use mea_data::presets;

    /// One end-to-end smoke test at micro scale; thorough accuracy checks
    /// live in the integration suite where bigger budgets are acceptable.
    #[test]
    fn tiny_pipeline_end_to_end() {
        let bundle = presets::tiny(21);
        let mut cfg = PipelineConfig::repro_resnet_b(6, 4, 1);
        // Shrink to the tiny preset's 8×8 images.
        if let BackboneChoice::CifarResNet(ref mut c) = cfg.backbone {
            c.input_hw = 8;
        }
        if let Some(BackboneChoice::CifarResNet(ref mut c)) = cfg.cloud {
            c.input_hw = 8;
        }
        let mut pipe = Pipeline::run(&cfg, &bundle.train);
        assert_eq!(pipe.hard_classes.len(), 3);
        assert!(pipe.pretrain_stats.last().unwrap().accuracy > 0.2);

        let records = pipe.infer_edge_only(&bundle.test, 8);
        assert_eq!(records.len(), bundle.test.len());
        let dict = pipe.net.hard_dict().unwrap().clone();
        let stats = ExitStats::from_records(&records, &dict);
        assert!(stats.accuracy > 1.0 / 6.0, "edge accuracy {} not above chance", stats.accuracy);

        let dist = pipe.infer_distributed(&bundle.test, 0.5, 8);
        let dstats = ExitStats::from_records(&dist, &dict);
        assert!(dstats.cloud_exits > 0, "no instance reached the cloud at threshold 0.5");
    }
}
