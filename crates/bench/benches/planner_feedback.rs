//! Closed-loop cut planning under a silent link degradation: the same
//! deterministic single-pipeline trace served open-loop (the planner's
//! static contention model, which never hears about the degradation) and
//! closed-loop (per-batch measured-link telemetry feeding the planner),
//! gating the replan count, the final cuts and the converged link
//! estimate as exact invariants.

use mea_bench::experiments::serving;
use mea_bench::regression::Reporter;
use mea_bench::Scale;
use mea_metrics::Table;

fn main() {
    let mut rep = Reporter::start("planner_feedback");
    let result = serving::planner_feedback(Scale::from_env());

    let mut table = Table::new(&["planner loop", "final cut", "replans", "bytes up", "service (ms)"]);
    for r in [&result.open, &result.closed] {
        table.row(&[
            r.mode.to_string(),
            r.final_cut.to_string(),
            r.cut_replans.to_string(),
            r.bytes_to_cloud.to_string(),
            format!("{:.2}", r.service_ms),
        ]);
    }
    println!("== Planner feedback: measured-link telemetry vs the static contention model ==\n{table}");
    println!(
        "link estimate after {} batches: {:.3} Mbps up (wire degraded to {:.1} Mbps mid-run)",
        result.estimate.samples, result.estimate.up_mbps, result.degraded_up_mbps
    );

    // The degradation is invisible to the static model: the open loop
    // must end the run on its nominal plan with zero replans.
    assert_eq!(result.open.cut_replans, 0, "the static model has nothing to replan from");

    // The closed loop must notice and move the cut toward the edge
    // (smaller upload): at least one replan, a strictly deeper cut.
    assert!(result.closed.cut_replans >= 1, "measured degradation never reached the planner");
    assert!(
        result.closed.final_cut > result.open.final_cut,
        "telemetry should push the cut edge-heavier: {} -> {}",
        result.open.final_cut,
        result.closed.final_cut
    );

    // The EWMA converged onto the degraded wire.
    let err = (result.estimate.up_mbps - result.degraded_up_mbps).abs() / result.degraded_up_mbps;
    assert!(err < 0.05, "estimate {:.3} Mbps should track the degraded wire", result.estimate.up_mbps);
    assert_eq!(result.estimate.samples as usize, result.offloaded, "one observation per served batch");

    // Replanning is a pure cost decision: both loops and the offline
    // sweep produce bitwise-identical records on the lossless wire.
    assert_eq!(result.closed.records, result.open.records, "feedback leaked into predictions");
    assert_eq!(result.closed.records, result.offline, "serving diverged from the offline sweep");

    // Deterministic loop outcomes gate as invariants; wall-clock service
    // times gate as `_ms` latencies.
    rep.metric("total", result.offline.len() as f64);
    rep.metric("offloaded", result.offloaded as f64);
    rep.metric("open_final_cut", result.open.final_cut as f64);
    rep.metric("open_replans", result.open.cut_replans as f64);
    rep.metric("closed_final_cut", result.closed.final_cut as f64);
    rep.metric("closed_replans", result.closed.cut_replans as f64);
    rep.metric("est_samples", result.estimate.samples as f64);
    rep.metric("est_up_mbps", result.estimate.up_mbps);
    rep.metric("service_open_ms", result.open.service_ms);
    rep.metric("service_closed_ms", result.closed.service_ms);
    rep.finish();
}
