//! Runners for every table of the paper's evaluation (Tables I–VII).

use super::helpers::{
    self, cifar_system_a, cifar_system_b, imagenet_mobilenet_b, imagenet_resnet_b, pct, TrainedSystem,
};
use crate::scale::Scale;
use mea_data::synth::generate;
use mea_edgecloud::cost::{estimate, CostParams, Strategy};
use mea_edgecloud::device::DeviceProfile;
use mea_edgecloud::energy::per_image;
use mea_edgecloud::network::NetworkLink;
use mea_edgecloud::payload::paper_raw_image_bytes;
use mea_metrics::flops::millions;
use mea_metrics::Table;
use mea_nn::layer::Mode;
use mea_nn::models::{
    mobilenet_v2, resnet_cifar, resnet_imagenet, CifarResNetConfig, ImageNetResNetConfig, MobileNetConfig,
};
use mea_tensor::{Rng, Tensor};
use meanet::hard_classes::Selection;
use meanet::model::{AdaptivePlan, MeaNet, Merge, Variant};
use meanet::pipeline::{Pipeline, PipelineConfig};
use meanet::stats::ExitStats;
use meanet::train::TrainConfig;

/// One row of the Table II reproduction.
#[derive(Debug, Clone)]
pub struct HardClassRow {
    /// Model/dataset label.
    pub label: String,
    /// Main-exit accuracy on hard-class training data.
    pub train_main: f64,
    /// MEANet accuracy on hard-class training data.
    pub train_meanet: f64,
    /// Main-exit accuracy on hard-class test data.
    pub test_main: f64,
    /// MEANet accuracy on hard-class test data.
    pub test_meanet: f64,
}

fn hard_class_row(label: &str, sys: &mut TrainedSystem) -> HardClassRow {
    let dict = sys.pipeline.net.hard_dict().expect("trained pipeline").clone();
    let hard_train = sys.pipeline.train_split.filter_classes(dict.hard_classes());
    let hard_test = sys.bundle.test.filter_classes(dict.hard_classes());
    HardClassRow {
        label: label.to_string(),
        train_main: helpers::main_accuracy(&mut sys.pipeline.net, &hard_train, 32),
        train_meanet: helpers::meanet_accuracy_on_hard(&mut sys.pipeline.net, &hard_train, 32),
        test_main: helpers::main_accuracy(&mut sys.pipeline.net, &hard_test, 32),
        test_meanet: helpers::meanet_accuracy_on_hard(&mut sys.pipeline.net, &hard_test, 32),
    }
}

/// Table II: accuracy of hard classes, main block vs MEANet, for the four
/// model/dataset pairs of the paper.
pub fn table2_hard_classes(scale: Scale) -> (Table, Vec<HardClassRow>) {
    let mut rows = Vec::new();
    let mut sys = cifar_system_a(scale, 2001, false);
    rows.push(hard_class_row("CIFAR-like, ResNet A", &mut sys));
    let mut sys = cifar_system_b(scale, 2002, false);
    rows.push(hard_class_row("CIFAR-like, ResNet B", &mut sys));
    let mut sys = imagenet_mobilenet_b(scale, 2003, false);
    rows.push(hard_class_row("ImageNet-like, MobileNetV2 B", &mut sys));
    let mut sys = imagenet_resnet_b(scale, 2004, false);
    rows.push(hard_class_row("ImageNet-like, ResNet B", &mut sys));

    let mut table = Table::new(&["dataset, model", "train main", "train MEANet", "test main", "test MEANet"]);
    for r in &rows {
        table.row(&[
            r.label.clone(),
            pct(r.train_main),
            pct(r.train_meanet),
            pct(r.test_main),
            pct(r.test_meanet),
        ]);
    }
    (table, rows)
}

/// One row of the Table III reproduction.
#[derive(Debug, Clone)]
pub struct AllClassRow {
    /// Model/dataset label.
    pub label: String,
    /// Main-exit test accuracy over all classes.
    pub main: f64,
    /// MEANet (edge-only Algorithm 2) test accuracy over all classes.
    pub meanet: f64,
    /// Easy/hard detection accuracy.
    pub detection: f64,
}

fn all_class_row(label: &str, sys: &mut TrainedSystem) -> AllClassRow {
    let dict = sys.pipeline.net.hard_dict().expect("trained pipeline").clone();
    let main = helpers::main_accuracy(&mut sys.pipeline.net, &sys.bundle.test, 32);
    let records = sys.pipeline.infer_edge_only(&sys.bundle.test, 32);
    let stats = ExitStats::from_records(&records, &dict);
    AllClassRow { label: label.to_string(), main, meanet: stats.accuracy, detection: stats.detection_accuracy }
}

/// Table III: test accuracy of all classes plus easy/hard detection
/// accuracy.
pub fn table3_all_classes(scale: Scale) -> (Table, Vec<AllClassRow>) {
    let mut rows = Vec::new();
    let mut sys = cifar_system_a(scale, 2001, false);
    rows.push(all_class_row("CIFAR-like, ResNet A", &mut sys));
    let mut sys = cifar_system_b(scale, 2002, false);
    rows.push(all_class_row("CIFAR-like, ResNet B", &mut sys));
    let mut sys = imagenet_mobilenet_b(scale, 2003, false);
    rows.push(all_class_row("ImageNet-like, MobileNetV2 B", &mut sys));
    let mut sys = imagenet_resnet_b(scale, 2004, false);
    rows.push(all_class_row("ImageNet-like, ResNet B", &mut sys));

    let mut table = Table::new(&["dataset, model", "main", "MEANet", "easy/hard detection"]);
    for r in &rows {
        table.row(&[r.label.clone(), pct(r.main), pct(r.meanet), pct(r.detection)]);
    }
    (table, rows)
}

/// One row of the Table IV/V reproduction.
#[derive(Debug, Clone)]
pub struct SelectionRow {
    /// Selection label ("N hard" / "N random").
    pub label: String,
    /// Detection accuracy (Table IV).
    pub detection: f64,
    /// Training accuracy of the selected classes (Table V).
    pub train_main: f64,
    /// MEANet training accuracy on selected classes.
    pub train_meanet: f64,
    /// Test accuracy of selected classes, main exit.
    pub test_main: f64,
    /// MEANet test accuracy of selected classes.
    pub test_meanet: f64,
}

/// Tables IV & V: the class-selection ablation (hard vs random vs count),
/// sharing one backbone seed so the pretrained main block is identical.
pub fn table45_class_selection(scale: Scale) -> (Table, Table, Vec<SelectionRow>) {
    let bundle = generate(&scale.cifar100_like(4001));
    let classes = bundle.train.num_classes;
    let half = classes / 2;
    let seventy = (classes * 7) / 10;
    let selections = vec![
        (format!("{half} hard"), Selection::HardestByPrecision { n: half }),
        (format!("{half} random"), Selection::Random { n: half, seed: 99 }),
        (format!("{seventy} hard"), Selection::HardestByPrecision { n: seventy }),
        (format!("{classes} (all)"), Selection::All),
    ];

    let mut rows = Vec::new();
    for (label, selection) in selections {
        let mut cfg = PipelineConfig::repro_resnet_a(classes, scale.epochs(), 4001);
        cfg.pretrain = TrainConfig::repro(scale.epochs());
        cfg.edge_train = TrainConfig::repro(scale.epochs());
        cfg.exit_train = TrainConfig::repro((scale.epochs() / 2).max(2));
        cfg.val_fraction = 0.3;
        cfg.selection = selection;
        cfg.cloud = None;
        let mut pipe = Pipeline::run(&cfg, &bundle.train);
        let dict = pipe.net.hard_dict().expect("trained pipeline").clone();

        let sel_train = pipe.train_split.filter_classes(dict.hard_classes());
        let sel_test = bundle.test.filter_classes(dict.hard_classes());
        let records = pipe.infer_edge_only(&bundle.test, 32);
        let stats = ExitStats::from_records(&records, &dict);
        rows.push(SelectionRow {
            label,
            detection: stats.detection_accuracy,
            train_main: helpers::main_accuracy(&mut pipe.net, &sel_train, 32),
            train_meanet: helpers::meanet_accuracy_on_hard(&mut pipe.net, &sel_train, 32),
            test_main: helpers::main_accuracy(&mut pipe.net, &sel_test, 32),
            test_meanet: helpers::meanet_accuracy_on_hard(&mut pipe.net, &sel_test, 32),
        });
    }

    let mut t4 = Table::new(&["selected classes", "detection accuracy (%)"]);
    for r in rows.iter().take(3) {
        t4.row(&[r.label.clone(), pct(r.detection)]);
    }
    let mut t5 = Table::new(&["selected classes", "train main", "train MEANet", "test main", "test MEANet"]);
    for r in &rows {
        t5.row(&[r.label.clone(), pct(r.train_main), pct(r.train_meanet), pct(r.test_main), pct(r.test_meanet)]);
    }
    (t4, t5, rows)
}

/// Table I: evaluates the closed-form cost model on the paper's Table VII
/// unit costs and cross-checks the `β = 0` / `β = 1` degeneracies.
pub fn table1_cost_model() -> (Table, Vec<(Strategy, f64)>) {
    // CIFAR unit costs from Table VII (energy, J).
    let params = CostParams {
        n: 10_000,
        edge_unit: 3.14e-3,
        cloud_unit: 0.0, // cloud compute energy is not an edge concern
        comm_raw_unit: 7.12e-3,
        comm_feat_unit: 4.0 * 7.12e-3, // f32 features ≈ 4× raw CIFAR bytes
        beta: 0.15,
        q: 0.5,
    };
    let strategies =
        [Strategy::EdgeOnly, Strategy::CloudOnly, Strategy::EdgeCloudRaw, Strategy::EdgeCloudFeatures];
    let mut table =
        Table::new(&["strategy", "edge compute (J)", "cloud compute (J)", "communication (J)", "edge total (J)"]);
    let mut totals = Vec::new();
    for s in strategies {
        let c = estimate(s, &params);
        table.row(&[
            format!("{s:?}"),
            format!("{:.1}", c.edge_compute),
            format!("{:.1}", c.cloud_compute),
            format!("{:.1}", c.communication),
            format!("{:.1}", c.edge_total()),
        ]);
        totals.push((s, c.edge_total()));
    }
    (table, totals)
}

/// Table I's "sending features" row, **measured** instead of modelled.
#[derive(Debug, Clone)]
pub struct MeasuredFeaturesResult {
    /// Instances the sweep offloaded (same set in every payload mode).
    pub offloaded: usize,
    /// Total instances swept.
    pub total: usize,
    /// The cut the offline `CutPlanner` picked for the measured rows.
    pub cut: usize,
    /// Measured bytes per offload, pixel payload (paper accounting).
    pub raw_measured: f64,
    /// Measured bytes per offload, f32 activations at the planned cut.
    pub f32_measured: f64,
    /// Measured bytes per offload, int8 activations through the
    /// `mea_quant::wire` codec (real frame, header included).
    pub int8_measured: f64,
    /// The paper's model for the raw row: 1 byte per input sample.
    pub raw_modelled: u64,
    /// The paper's model for the features row: f32 maps assumed
    /// input-sized, i.e. 4 bytes per input sample (`x'_cu = 4·x_cu` —
    /// exactly the `comm_feat_unit` ratio [`table1_cost_model`] uses).
    pub f32_modelled: u64,
    /// Whether the f32 feature sweep reproduced the pixel sweep's records
    /// bitwise (it must: the wire is lossless).
    pub records_identical: bool,
}

/// Measures Table I's communication column end-to-end: the same offline
/// sweep (`run_inference_with_payload`, β ≈ 0.15 like the table) run with
/// pixel, f32-feature and int8-feature payloads at the cut an offline
/// [`CutPlanner`](mea_edgecloud::partition::CutPlanner) picks, next to
/// the closed-form model's per-offload byte assumptions. The modelled
/// features row assumes input-sized f32 maps (4× the raw bytes — the
/// paper's stated objection to sending features); the measured rows show
/// what a *planned* cut actually ships.
pub fn table1_measured_features() -> (Table, MeasuredFeaturesResult) {
    use super::serving::{cloud_replica, edge_replica, high_offload_policy};
    use mea_edgecloud::network::NetworkLink;
    use mea_edgecloud::partition::{CutPlanner, Objective, PartitionEnv};
    use meanet::infer::run_inference_with_payload;
    use meanet::SweepPayload;

    let bundle = mea_data::presets::tiny(91);
    let data = &bundle.test;
    let hard = [0usize, 2, 4];
    let mut probe = edge_replica(61, &hard);
    let policy = high_offload_policy(&mut probe, data, 0.15);

    // Plan the cut offline against a congested uplink (the regime where
    // the features row earns its keep).
    let cloud_net = cloud_replica(62);
    let in_elems: u64 = cloud_net.in_shape.iter().map(|&d| d as u64).product();
    let env = PartitionEnv {
        edge: DeviceProfile::new("edge", 10.0, 5e9),
        cloud: DeviceProfile::new("cloud", 200.0, 1e12),
        link: NetworkLink::wifi(1.0).with_rtt(0.0002),
        bytes_per_elem: 4,
        raw_input_bytes: 4 * in_elems,
        response_bytes: 8,
    };
    let planner = CutPlanner::from_network(&cloud_net, env, Objective::Latency, 1);
    let cut = planner.plan().cut;

    let sweep = |payload: SweepPayload| {
        let mut net = edge_replica(61, &hard);
        let mut cloud = cloud_replica(62);
        run_inference_with_payload(&mut net, Some(&mut cloud), data, policy, 16, payload)
    };
    let (pixel_records, pixels) = sweep(SweepPayload::Pixels);
    let (f32_records, f32s) = sweep(SweepPayload::Features { cut });
    let (_, int8s) = sweep(SweepPayload::QuantFeatures { cut });

    let per = |bytes: u64| bytes as f64 / pixels.offloaded.max(1) as f64;
    let result = MeasuredFeaturesResult {
        offloaded: pixels.offloaded,
        total: data.len(),
        cut,
        raw_measured: per(pixels.upload_bytes),
        f32_measured: per(f32s.upload_bytes),
        int8_measured: per(int8s.upload_bytes),
        raw_modelled: in_elems,
        f32_modelled: 4 * in_elems,
        records_identical: f32_records == pixel_records,
    };
    let mut table = Table::new(&["payload", "modelled (B/offload)", "measured (B/offload)"]);
    table.row(&["raw pixels".into(), result.raw_modelled.to_string(), format!("{:.1}", result.raw_measured)]);
    table.row(&[
        format!("features f32 @ cut {cut}"),
        result.f32_modelled.to_string(),
        format!("{:.1}", result.f32_measured),
    ]);
    table.row(&[format!("features int8 @ cut {cut}"), "-".into(), format!("{:.1}", result.int8_measured)]);
    (table, result)
}

/// One row of the Table VI reproduction.
#[derive(Debug, Clone)]
pub struct FlopsRow {
    /// Model label.
    pub label: String,
    /// Per-image MACs through the fixed (frozen) part.
    pub fixed_macs: u64,
    /// Per-image MACs through the trained part.
    pub trained_macs: u64,
    /// Parameters in the fixed part.
    pub fixed_params: u64,
    /// Parameters in the trained part.
    pub trained_params: u64,
}

/// Builds the four *paper-scale* MEANets of Table VI (no training — pure
/// architecture counting, so this runs at full CIFAR/ImageNet geometry)
/// under the default [`AdaptivePlan`].
pub fn paper_scale_meanets() -> Vec<(String, MeaNet)> {
    paper_scale_meanets_under(AdaptivePlan::default())
}

/// [`paper_scale_meanets`] with an explicit adaptive plan, so benches can
/// contrast the depthwise-separable budget against the dense mirror.
pub fn paper_scale_meanets_under(plan: AdaptivePlan) -> Vec<(String, MeaNet)> {
    let mut rng = Rng::new(0);
    let mut nets = Vec::new();

    // CIFAR-100 ResNet32 A: split after stage 1 of (stem, s1, s2, s3).
    let backbone = resnet_cifar(&CifarResNetConfig::resnet32_cifar100(), &mut rng);
    let mut net =
        MeaNet::from_backbone(backbone, Variant::SplitBackbone { main_segments: 2 }, Merge::Sum, &mut rng);
    net.attach_edge_blocks(plan, mea_data::ClassDict::new(&(0..50).collect::<Vec<_>>()), &mut rng);
    nets.push(("CIFAR-100, ResNet32 A".to_string(), net));

    // CIFAR-100 ResNet32 B: full backbone + 2 fresh 64-channel blocks.
    let backbone = resnet_cifar(&CifarResNetConfig::resnet32_cifar100(), &mut rng);
    let mut net = MeaNet::from_backbone(
        backbone,
        Variant::FullBackbone { extension_channels: 64, extension_blocks: 2 },
        Merge::Sum,
        &mut rng,
    );
    net.attach_edge_blocks(plan, mea_data::ClassDict::new(&(0..50).collect::<Vec<_>>()), &mut rng);
    nets.push(("CIFAR-100, ResNet32 B".to_string(), net));

    // ImageNet MobileNetV2 B: full backbone + 4 narrow residual blocks
    // (the paper reports ~1.1M trained parameters).
    let backbone = mobilenet_v2(&MobileNetConfig::imagenet(), &mut rng);
    let mut net = MeaNet::from_backbone(
        backbone,
        Variant::FullBackbone { extension_channels: 96, extension_blocks: 4 },
        Merge::Sum,
        &mut rng,
    );
    net.attach_edge_blocks(plan, mea_data::ClassDict::new(&(0..500).collect::<Vec<_>>()), &mut rng);
    nets.push(("ImageNet, MobileNetV2 B".to_string(), net));

    // ImageNet ResNet18 B: full backbone + 2 fresh 512-channel blocks.
    let backbone = resnet_imagenet(&ImageNetResNetConfig::resnet18_imagenet(), &mut rng);
    let mut net = MeaNet::from_backbone(
        backbone,
        Variant::FullBackbone { extension_channels: 512, extension_blocks: 2 },
        Merge::Sum,
        &mut rng,
    );
    net.attach_edge_blocks(plan, mea_data::ClassDict::new(&(0..500).collect::<Vec<_>>()), &mut rng);
    nets.push(("ImageNet, ResNet18 B".to_string(), net));
    nets
}

/// Table VI: number of computations (MACs) and parameters, fixed vs
/// trained, at true paper scale.
pub fn table6_flops() -> (Table, Vec<FlopsRow>) {
    let mut table = Table::new(&[
        "dataset, model",
        "fixed MACs (M)",
        "trained MACs (M)",
        "fixed params (M)",
        "trained params (M)",
    ]);
    let mut rows = Vec::new();
    for (label, net) in paper_scale_meanets() {
        let split = net.cost_split();
        table.row(&[
            label.clone(),
            millions(split.fixed_macs),
            millions(split.trained_macs),
            millions(split.fixed_params),
            millions(split.trained_params),
        ]);
        rows.push(FlopsRow {
            label,
            fixed_macs: split.fixed_macs,
            trained_macs: split.trained_macs,
            fixed_params: split.fixed_params,
            trained_params: split.trained_params,
        });
    }
    (table, rows)
}

/// One row of the Table VII reproduction.
#[derive(Debug, Clone)]
pub struct PerImageRow {
    /// Workload label.
    pub label: String,
    /// Device + link costs under the paper's constants.
    pub costs: mea_edgecloud::energy::PerImageCosts,
    /// Wall-clock per-image latency of the repro-scale model on this host.
    pub measured_latency_s: f64,
}

/// Table VII: per-image computation/communication power, time and energy.
/// The modelled columns use the paper's device constants; the measured
/// column times this crate's repro-scale models on the host CPU.
pub fn table7_per_image() -> (Table, Vec<PerImageRow>) {
    let link = NetworkLink::wifi_18_88();
    let mut rng = Rng::new(7);

    let cifar = per_image(&DeviceProfile::edge_gpu_cifar(), &link, 69_400_000, paper_raw_image_bytes(3, 32, 32));
    let inet =
        per_image(&DeviceProfile::edge_gpu_imagenet(), &link, 1_820_000_000, paper_raw_image_bytes(3, 224, 224));

    let mut small = resnet_cifar(&CifarResNetConfig::repro_scale(100), &mut rng);
    let x = Tensor::randn([16, 3, 16, 16], 1.0, &mut rng);
    let reps = 5;
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        let _ = small.forward(&x, Mode::Eval);
    }
    let measured_cifar = t0.elapsed().as_secs_f64() / (reps * 16) as f64;

    let mut big = resnet_imagenet(&ImageNetResNetConfig::repro_scale(40), &mut rng);
    let x = Tensor::randn([8, 3, 24, 24], 1.0, &mut rng);
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        let _ = big.forward(&x, Mode::Eval);
    }
    let measured_inet = t0.elapsed().as_secs_f64() / (reps * 8) as f64;

    let mut table = Table::new(&[
        "dataset, model",
        "GPU power (W)",
        "WiFi power (W)",
        "tcp (ms)",
        "tcu (ms)",
        "Ecp (mJ)",
        "Ecu (mJ)",
        "host-measured tcp (ms)",
    ]);
    let rows = vec![
        PerImageRow { label: "CIFAR-100, ResNet32 A".into(), costs: cifar, measured_latency_s: measured_cifar },
        PerImageRow { label: "ImageNet, ResNet18 B".into(), costs: inet, measured_latency_s: measured_inet },
    ];
    for r in &rows {
        table.row(&[
            r.label.clone(),
            format!("{:.0}", r.costs.gpu_power_w),
            format!("{:.2}", r.costs.upload_power_w),
            format!("{:.3}", r.costs.tcp_s * 1e3),
            format!("{:.1}", r.costs.tcu_s * 1e3),
            format!("{:.2}", r.costs.ecp_j * 1e3),
            format!("{:.0}", r.costs.ecu_j * 1e3),
            format!("{:.3}", r.measured_latency_s * 1e3),
        ]);
    }
    (table, rows)
}
