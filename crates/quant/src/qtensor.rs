//! The int8 tensor produced and consumed by quantized layers.

use crate::qparams::{QScheme, QuantParams};
use mea_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A dense row-major int8 tensor together with the parameters that map it
/// back onto real values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTensor {
    data: Vec<i8>,
    dims: Vec<usize>,
    params: QuantParams,
}

impl QTensor {
    /// Quantizes a float tensor with **per-tensor** parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` is per-channel (use [`QTensor::quantize_per_channel`]).
    pub fn quantize(t: &Tensor, params: QuantParams) -> Self {
        assert!(
            params.scheme() != QScheme::SymmetricPerChannel,
            "per-channel quantization requires quantize_per_channel"
        );
        let data = t.as_slice().iter().map(|&x| params.quantize_value(x, 0)).collect();
        QTensor { data, dims: t.dims().to_vec(), params }
    }

    /// Quantizes a float tensor whose **leading axis** is the channel axis
    /// (weight matrices `[out_c, ...]`), one scale per channel.
    ///
    /// # Panics
    ///
    /// Panics if the parameter channel count differs from `dims[0]`.
    pub fn quantize_per_channel(t: &Tensor, params: QuantParams) -> Self {
        let out_c = t.dims()[0];
        assert_eq!(params.channels(), out_c, "params cover {} channels, tensor has {out_c}", params.channels());
        let row = t.numel() / out_c;
        let mut data = Vec::with_capacity(t.numel());
        for (c, chunk) in t.as_slice().chunks(row).enumerate() {
            data.extend(chunk.iter().map(|&x| params.quantize_value(x, c)));
        }
        QTensor { data, dims: t.dims().to_vec(), params }
    }

    /// Builds a quantized tensor from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the data length does not match the dims product.
    pub fn from_parts(data: Vec<i8>, dims: Vec<usize>, params: QuantParams) -> Self {
        assert_eq!(data.len(), dims.iter().product::<usize>(), "data/dims mismatch");
        QTensor { data, dims, params }
    }

    /// Dequantizes back to f32.
    pub fn dequantize(&self) -> Tensor {
        let mut values = Vec::with_capacity(self.data.len());
        self.dequantize_into(&mut values);
        Tensor::from_vec(values, &self.dims).expect("dims consistent by construction")
    }

    /// Appends the dequantized f32 values to `out` (same element order and
    /// bit-identical values as [`QTensor::dequantize`]). Lets callers
    /// assemble batches in a reused scratch arena instead of allocating a
    /// tensor per payload.
    pub fn dequantize_into(&self, out: &mut Vec<f32>) {
        out.reserve(self.data.len());
        match self.params.scheme() {
            QScheme::SymmetricPerChannel => {
                let out_c = self.dims[0];
                let row = self.data.len() / out_c;
                for (c, chunk) in self.data.chunks(row).enumerate() {
                    out.extend(chunk.iter().map(|&q| self.params.dequantize_value(q, c)));
                }
            }
            _ => out.extend(self.data.iter().map(|&q| self.params.dequantize_value(q, 0))),
        }
    }

    /// The raw int8 data.
    pub fn as_slice(&self) -> &[i8] {
        &self.data
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// The quantization parameters.
    pub fn params(&self) -> &QuantParams {
        &self.params
    }

    /// Returns the same data viewed under new dims (flatten/reshape).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(mut self, dims: Vec<usize>) -> Self {
        assert_eq!(self.data.len(), dims.iter().product::<usize>(), "reshape changes element count");
        self.dims = dims;
        self
    }

    /// Wire size of the tensor payload in bytes (1 byte per element) —
    /// the communication advantage of offloading quantized features.
    pub fn wire_size_bytes(&self) -> u64 {
        self.data.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_tensor::Rng;

    #[test]
    fn round_trip_error_bounded() {
        let mut rng = Rng::new(0);
        let t = Tensor::randn([2, 3, 4, 4], 1.0, &mut rng);
        let (mut lo, mut hi) = (f32::MAX, f32::MIN);
        for &v in t.as_slice() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let q = QTensor::quantize(&t, QuantParams::affine_from_range(lo, hi));
        let back = q.dequantize();
        let half_scale = q.params().scale(0) / 2.0 + 1e-6;
        for (a, b) in t.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= half_scale, "{a} vs {b}");
        }
    }

    #[test]
    fn per_channel_round_trip_uses_channel_scales() {
        // Channel 0 small values, channel 1 large: per-channel keeps both
        // accurate while per-tensor would crush channel 0.
        let t = Tensor::from_vec(vec![0.01, -0.02, 10.0, -8.0], &[2, 2]).unwrap();
        let params = QuantParams::symmetric_per_channel(&[0.02, 10.0]);
        let q = QTensor::quantize_per_channel(&t, params);
        let back = q.dequantize();
        assert!((back.as_slice()[0] - 0.01).abs() < 0.001);
        assert!((back.as_slice()[2] - 10.0).abs() < 0.1);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap();
        let q = QTensor::quantize(&t, QuantParams::affine_from_range(0.0, 4.0));
        let r = q.clone().reshaped(vec![2, 2]);
        assert_eq!(r.as_slice(), q.as_slice());
        assert_eq!(r.dims(), &[2, 2]);
    }

    #[test]
    fn wire_size_is_one_byte_per_element() {
        let t = Tensor::zeros([3, 5]);
        let q = QTensor::quantize(&t, QuantParams::affine_from_range(0.0, 1.0));
        assert_eq!(q.wire_size_bytes(), 15);
    }
}
