//! The serving runtime and the offline sweep must be the same system:
//! for any worker/batch configuration — and for any payload plan with a
//! lossless wire — `edgecloud::serve` over a trained MEANet must produce
//! exactly the `InstanceRecord`s that sequential `run_inference` produces
//! on the same dataset and policy. Dynamic batching, worker scheduling,
//! the wire format and the partition cut may not change a single
//! prediction, entropy or exit.

use mea_edgecloud::serve::{
    trace_requests, try_serve, CutSelection, EdgeReplica, FeatureConfig, FeatureWire, PayloadPlan, ServeConfig,
};
use mea_edgecloud::traces::ArrivalModel;
use mea_nn::models::SegmentedCnn;
use mea_nn::StateDict;
use mea_tensor::Rng;
use meanet::infer::{run_inference_with_payload, run_inference_with_policy};
use meanet::pipeline::{BackboneChoice, Pipeline, PipelineConfig};
use meanet::{MeaNet, OffloadPolicy, SweepPayload};

/// Trains a tiny model-B system and returns builders for bitwise replicas
/// of the edge net and the cloud net.
fn trained_system() -> (Pipeline, PipelineConfig, mea_data::synth::DatasetBundle) {
    let bundle = mea_data::presets::tiny(77);
    let mut cfg = PipelineConfig::repro_resnet_b(6, 3, 7);
    if let BackboneChoice::CifarResNet(ref mut c) = cfg.backbone {
        c.input_hw = 8;
    }
    if let Some(BackboneChoice::CifarResNet(ref mut c)) = cfg.cloud {
        c.input_hw = 8;
    }
    let pipe = Pipeline::run(&cfg, &bundle.train);
    (pipe, cfg, bundle)
}

/// Builds `count` bitwise replicas of the pipeline's trained MEANet by
/// assembling fresh same-architecture nets and copying the state over.
fn edge_replicas(pipe: &mut Pipeline, cfg: &PipelineConfig, count: usize) -> Vec<MeaNet> {
    let dict = pipe.net.hard_dict().expect("trained pipeline").clone();
    (0..count)
        .map(|i| {
            let mut rng = Rng::new(1000 + i as u64);
            let backbone = cfg.backbone.build(&mut rng);
            let mut replica = MeaNet::from_backbone(backbone, cfg.variant, cfg.merge, &mut rng);
            replica.attach_edge_blocks(cfg.adaptive, dict.clone(), &mut rng);
            pipe.net.replicate_into(&mut replica);
            replica
        })
        .collect()
}

/// Image-payload serving replicas (no cloud prefix).
fn serving_replicas(pipe: &mut Pipeline, cfg: &PipelineConfig, count: usize) -> Vec<EdgeReplica> {
    edge_replicas(pipe, cfg, count).into_iter().map(EdgeReplica::new).collect()
}

/// Feature-payload serving replicas: each edge additionally carries a
/// bitwise replica of the trained cloud network for prefix execution.
fn split_serving_replicas(pipe: &mut Pipeline, cfg: &PipelineConfig, count: usize) -> Vec<EdgeReplica> {
    let nets = edge_replicas(pipe, cfg, count);
    let prefixes = cloud_replicas(pipe, cfg, count);
    nets.into_iter().zip(prefixes).map(|(n, p)| EdgeReplica::with_cloud_prefix(n, p)).collect()
}

/// Builds `count` bitwise replicas of the trained cloud DNN.
fn cloud_replicas(pipe: &mut Pipeline, cfg: &PipelineConfig, count: usize) -> Vec<SegmentedCnn> {
    let cloud = pipe.cloud.as_mut().expect("pipeline has a cloud");
    let state = StateDict::from_cnn(cloud);
    let choice = cfg.cloud.as_ref().expect("cloud configured");
    (0..count)
        .map(|i| {
            let mut rng = Rng::new(2000 + i as u64);
            let mut replica = choice.build(&mut rng);
            state.apply_to_cnn(&mut replica).expect("identical cloud architecture");
            replica
        })
        .collect()
}

#[test]
fn serving_runtime_reproduces_sequential_inference_exactly() {
    let (mut pipe, cfg, bundle) = trained_system();
    // A mid-range threshold so all three exits actually occur.
    let mid = 0.5 * (pipe.entropy.mean_correct + pipe.entropy.mean_wrong) as f32;
    let policy = OffloadPolicy::EntropyThreshold(mid);

    let mut offline_net = edge_replicas(&mut pipe, &cfg, 1);
    let mut offline_cloud = cloud_replicas(&mut pipe, &cfg, 1);
    let expected =
        run_inference_with_policy(&mut offline_net[0], Some(&mut offline_cloud[0]), &bundle.test, policy, 16);
    let exits: std::collections::HashSet<_> = expected.iter().map(|r| r.exit).collect();
    assert!(exits.len() >= 2, "threshold {mid} exercised only {exits:?}; test is too weak");

    let mut rng = Rng::new(3);
    let requests = trace_requests(&bundle.test, 5, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
    for (e, c, b) in [(1usize, 1usize, 1usize), (2, 2, 1), (4, 1, 8), (3, 2, 4)] {
        let mut edges = serving_replicas(&mut pipe, &cfg, e);
        let mut clouds = cloud_replicas(&mut pipe, &cfg, c);
        let serve_cfg = ServeConfig::new(policy, e, c, b);
        let report = try_serve(&serve_cfg, &mut edges, &mut clouds, &requests).expect("valid configuration");
        assert_eq!(
            report.records, expected,
            "serve(edge={e}, cloud={c}, max_batch={b}) diverged from the offline sweep"
        );
        assert_eq!(report.stats.offloaded, expected.iter().filter(|r| r.exit == meanet::ExitPoint::Cloud).count());
    }
}

#[test]
fn feature_payload_serving_is_the_same_system_at_every_cut() {
    // The three substrates — sequential `run_inference`, image-payload
    // serving, feature-payload serving at an arbitrary cut — must be one
    // system: identical records everywhere, while the cloud provably
    // recomputes less the deeper the cut.
    let (mut pipe, cfg, bundle) = trained_system();
    let mid = 0.5 * (pipe.entropy.mean_correct + pipe.entropy.mean_wrong) as f32;
    let policy = OffloadPolicy::EntropyThreshold(mid);

    let mut offline_net = edge_replicas(&mut pipe, &cfg, 1);
    let mut offline_cloud = cloud_replicas(&mut pipe, &cfg, 1);
    let expected =
        run_inference_with_policy(&mut offline_net[0], Some(&mut offline_cloud[0]), &bundle.test, policy, 16);
    assert!(
        expected.iter().any(|r| r.exit == meanet::ExitPoint::Cloud),
        "threshold routed nothing to the cloud; test is too weak"
    );

    let mut rng = Rng::new(5);
    let requests = trace_requests(&bundle.test, 4, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
    let layers = cloud_replicas(&mut pipe, &cfg, 1)[0].cut_layer_count();
    let mut saved_at: Vec<u64> = Vec::new();
    for (e, c, b, cut) in
        [(1usize, 1usize, 1usize, 0usize), (2, 2, 4, 1), (3, 1, 8, layers / 2), (2, 2, 2, layers - 1)]
    {
        let mut edges = split_serving_replicas(&mut pipe, &cfg, e);
        let mut clouds = cloud_replicas(&mut pipe, &cfg, c);
        let mut serve_cfg = ServeConfig::new(policy, e, c, b);
        serve_cfg.payload =
            PayloadPlan::Features(FeatureConfig { wire: FeatureWire::F32, cut: CutSelection::Fixed(cut) });
        let report = try_serve(&serve_cfg, &mut edges, &mut clouds, &requests).expect("valid configuration");
        assert_eq!(
            report.records, expected,
            "feature serve(edge={e}, cloud={c}, max_batch={b}, cut={cut}) diverged from the offline sweep"
        );
        saved_at.push(report.stats.cloud_macs_saved);
    }
    assert_eq!(saved_at[0], 0, "cut 0 ships pixels and saves nothing");
    assert!(saved_at.windows(2).all(|w| w[0] <= w[1]), "deeper cuts must save at least as much: {saved_at:?}");
    assert!(*saved_at.last().unwrap() > 0, "the deepest cut must spare the cloud real recompute");
}

#[test]
fn offline_feature_sweep_is_bitwise_identical_to_feature_serving() {
    // The acceptance bar for the offline "sending features" Table I row:
    // `run_inference_with_payload` in feature mode and feature-payload
    // *serving* at the same cut are one system — identical records on the
    // lossless f32 wire, and identical records *and* wire frames (modulo
    // the 1-byte payload tag) on the lossy int8 wire, because both paths
    // quantize each instance's activation on its own affine grid through
    // the same `mea_quant::wire` round trip.
    let (mut pipe, cfg, bundle) = trained_system();
    let mid = 0.5 * (pipe.entropy.mean_correct + pipe.entropy.mean_wrong) as f32;
    let policy = OffloadPolicy::EntropyThreshold(mid);

    let mut rng = Rng::new(11);
    let requests = trace_requests(&bundle.test, 3, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
    let layers = cloud_replicas(&mut pipe, &cfg, 1)[0].cut_layer_count();

    let serve_at = |pipe: &mut Pipeline, wire: FeatureWire, cut: usize| {
        let mut edges = split_serving_replicas(pipe, &cfg, 2);
        let mut clouds = cloud_replicas(pipe, &cfg, 2);
        let mut serve_cfg = ServeConfig::new(policy, 2, 2, 4);
        serve_cfg.payload = PayloadPlan::Features(FeatureConfig { wire, cut: CutSelection::Fixed(cut) });
        try_serve(&serve_cfg, &mut edges, &mut clouds, &requests).expect("valid configuration")
    };

    // Lossless wire, several cuts: offline sweep == serving, bitwise.
    for cut in [1usize, layers / 2, layers - 1] {
        let mut net = edge_replicas(&mut pipe, &cfg, 1);
        let mut cloud = cloud_replicas(&mut pipe, &cfg, 1);
        let (offline, stats) = run_inference_with_payload(
            &mut net[0],
            Some(&mut cloud[0]),
            &bundle.test,
            policy,
            16,
            SweepPayload::Features { cut },
        );
        let report = serve_at(&mut pipe, FeatureWire::F32, cut);
        assert_eq!(report.records, offline, "offline f32 feature sweep diverged from serving at cut {cut}");
        assert_eq!(stats.offloaded, report.stats.offloaded);
        assert!(stats.offloaded > 0, "nothing offloaded; the equivalence is vacuous");
        assert_eq!(stats.cut, cut);
    }

    // Int8 wire at the deepest cut: the two lossy paths flip the *same*
    // borderline predictions, and the measured bytes line up exactly
    // (serving frames carry one extra payload-tag byte per offload).
    let cut = layers - 1;
    let mut net = edge_replicas(&mut pipe, &cfg, 1);
    let mut cloud = cloud_replicas(&mut pipe, &cfg, 1);
    let (offline_q, q_stats) = run_inference_with_payload(
        &mut net[0],
        Some(&mut cloud[0]),
        &bundle.test,
        policy,
        16,
        SweepPayload::QuantFeatures { cut },
    );
    let report = serve_at(&mut pipe, FeatureWire::Int8, cut);
    assert_eq!(report.records, offline_q, "offline int8 feature sweep diverged from int8 serving");
    assert_eq!(
        report.stats.bytes_to_cloud,
        q_stats.upload_bytes + q_stats.offloaded as u64,
        "serving's int8 wire must be the offline codec frame plus one tag byte per offload"
    );
}

#[test]
fn batched_cloud_forward_is_bitwise_stable_across_batch_caps() {
    // Same trained system, saturating all-offload traffic: whatever batch
    // sizes the dynamic batcher happens to form, the predictions must be
    // identical — batching is a throughput knob, never an accuracy knob.
    let (mut pipe, cfg, bundle) = trained_system();
    let mut rng = Rng::new(4);
    let requests = trace_requests(&bundle.test, 3, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
    let mut baseline = None;
    for max_batch in [1usize, 2, 8] {
        let mut edges = serving_replicas(&mut pipe, &cfg, 1);
        let mut clouds = cloud_replicas(&mut pipe, &cfg, 1);
        let mut serve_cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, max_batch);
        serve_cfg.max_wait = std::time::Duration::from_millis(1);
        serve_cfg.queue_depth = 8;
        let report = try_serve(&serve_cfg, &mut edges, &mut clouds, &requests).expect("valid configuration");
        assert_eq!(report.stats.offloaded, report.stats.total);
        match &baseline {
            None => baseline = Some(report.records),
            Some(b) => assert_eq!(&report.records, b, "max_batch={max_batch} changed predictions"),
        }
    }
}
