//! Transport-conformance suite: every behavioural contract of the
//! [`Transport`] trait, asserted against EVERY implementation — the
//! deterministic modelled conduit, the real in-process byte pipe, and
//! (on unix) the loopback kernel socket. Each test body is generic over
//! `T: Transport`; the `#[test]` wrappers instantiate it per wire, so
//! the implementations can never drift apart on framing, ordering,
//! backpressure, or shutdown semantics.

use bytes::Bytes;
use mea_edgecloud::network::{
    DownlinkReceiver, ModelledTransport, PipeConfig, PipeTransport, RecvOutcome, RequestFrame, ResponseFrame,
    Transport, UplinkReceiver,
};
use mea_edgecloud::Payload;
use mea_tensor::{Rng, Tensor};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn modelled(lanes: usize, queue_depth: usize) -> ModelledTransport {
    ModelledTransport::new(lanes, queue_depth)
}

fn pipe(lanes: usize, buffer_bytes: usize) -> PipeTransport {
    PipeTransport::new(lanes, PipeConfig { buffer_bytes, ..PipeConfig::default() })
}

#[cfg(unix)]
fn uds(lanes: usize, window_bytes: usize) -> mea_edgecloud::UdsTransport {
    mea_edgecloud::UdsTransport::new(lanes, mea_edgecloud::UdsConfig { window_bytes })
}

fn request(req_id: u64, device: u32, seq: u64, payload: Bytes) -> RequestFrame {
    RequestFrame { req_id, device, seq, resume_layer: (req_id % 5) as u32, payload }
}

/// A tiny feature payload whose contents are a pure function of
/// `(device, seq)`, so corruption or cross-frame mixing is detectable.
fn tagged_payload(device: u32, seq: u64) -> Payload {
    let v = device as f32 * 1000.0 + seq as f32;
    Payload::Features { features: Tensor::zeros([2, 2]).map(|_| v) }
}

// ---------------------------------------------------------------------------
// Frame round-trip: every payload codec crosses bit-exactly.
// ---------------------------------------------------------------------------

fn check_round_trip<T: Transport>(t: T) {
    let mut rng = Rng::new(11);
    let feats = Tensor::randn([6, 3, 3], 1.0, &mut rng);
    let payloads = [
        Payload::RawImage { image: Tensor::randn([3, 8, 8], 1.0, &mut rng) },
        Payload::Features { features: feats.clone() },
        Payload::quantize_features(&feats),
    ];
    let mut up = t.take_uplink(0);
    for (i, p) in payloads.iter().enumerate() {
        let encoded = p.encode();
        let frame = request(i as u64, 7, i as u64, encoded.clone());
        let wire = frame.wire_bytes();
        t.send_request(0, frame).expect("lane open");
        let got = match up.recv(None) {
            RecvOutcome::Frame(f) => f,
            other => panic!("expected a frame, got {other:?}"),
        };
        assert_eq!(got.frame.req_id, i as u64);
        assert_eq!(got.frame.device, 7);
        assert_eq!(got.frame.resume_layer, (i % 5) as u32);
        assert_eq!(got.frame.wire_bytes(), wire, "wire size changed in flight");
        // The transport's contract is bit-exactness of the encoded bytes
        // (the image codec itself is lossy u8 quantisation, so decoded
        // equality is only promised for the feature codecs).
        assert_eq!(got.frame.payload.as_ref(), encoded.as_ref(), "payload {i} did not cross bit-exactly");
        let decoded = Payload::decode(got.frame.payload);
        assert_eq!(decoded.wire_size_bytes(), p.wire_size_bytes());
        if matches!(p, Payload::Features { .. } | Payload::QuantFeatures { .. }) {
            assert_eq!(&decoded, p, "feature payload {i} must round-trip losslessly");
        }
        assert!(got.received_at >= got.sent_at, "timestamps must be causally ordered");
    }
    // Responses ride the same contract on the downlink.
    let mut down = t.take_downlink(0);
    t.send_response(0, ResponseFrame { req_id: 3, prediction: 42 }).expect("lane open");
    match down.recv() {
        RecvOutcome::Frame(r) => assert_eq!(r.frame, ResponseFrame { req_id: 3, prediction: 42 }),
        other => panic!("expected a response, got {other:?}"),
    }
}

#[test]
fn modelled_round_trips_every_payload_codec() {
    check_round_trip(modelled(1, 4));
}

#[test]
fn pipe_round_trips_every_payload_codec() {
    check_round_trip(pipe(1, 64 * 1024));
}

#[cfg(unix)]
#[test]
fn uds_round_trips_every_payload_codec() {
    check_round_trip(uds(1, 64 * 1024));
}

// ---------------------------------------------------------------------------
// Multiplexing: concurrent senders interleave on one lane at frame
// granularity — nothing lost, nothing corrupted, per-sender order kept.
// ---------------------------------------------------------------------------

fn check_multiplexing<T: Transport>(t: T) {
    const SENDERS: u32 = 2;
    const PER_SENDER: u64 = 50;
    std::thread::scope(|s| {
        for device in 0..SENDERS {
            let t = &t;
            s.spawn(move || {
                for seq in 0..PER_SENDER {
                    let frame = request(
                        u64::from(device) * PER_SENDER + seq,
                        device,
                        seq,
                        tagged_payload(device, seq).encode(),
                    );
                    t.send_request(0, frame).expect("lane open");
                }
            });
        }
        let mut up = t.take_uplink(0);
        let mut next_seq = vec![0u64; SENDERS as usize];
        for _ in 0..(u64::from(SENDERS) * PER_SENDER) {
            let got = match up.recv(None) {
                RecvOutcome::Frame(f) => f,
                other => panic!("expected a frame, got {other:?}"),
            };
            let d = got.frame.device;
            assert_eq!(got.frame.seq, next_seq[d as usize], "sender {d} frames arrived out of order");
            next_seq[d as usize] += 1;
            assert_eq!(
                Payload::decode(got.frame.payload),
                tagged_payload(d, got.frame.seq),
                "frame from sender {d} was corrupted by interleaving"
            );
        }
        assert!(next_seq.iter().all(|&n| n == PER_SENDER), "some frames were lost");
    });
}

#[test]
fn modelled_multiplexes_concurrent_senders() {
    check_multiplexing(modelled(1, 4));
}

#[test]
fn pipe_multiplexes_concurrent_senders() {
    // A buffer smaller than one frame forces chunked writes, so frame
    // serialisation (not luck) is what keeps the stream uncorrupted.
    check_multiplexing(pipe(1, 48));
}

#[cfg(unix)]
#[test]
fn uds_multiplexes_concurrent_senders() {
    // A budget smaller than one frame serialises the lane to one frame
    // in flight, so budget waits (not luck) pace the interleaving.
    check_multiplexing(uds(1, 48));
}

// ---------------------------------------------------------------------------
// Backpressure: a bounded lane blocks the sender until the receiver
// drains; nothing is dropped.
// ---------------------------------------------------------------------------

fn check_backpressure<T: Transport>(t: T, stalled_after: usize) {
    let sent = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let t = &t;
        let sent = &sent;
        s.spawn(move || {
            for seq in 0..3u64 {
                t.send_request(0, request(seq, 0, seq, tagged_payload(0, seq).encode())).expect("lane open");
                sent.fetch_add(1, Ordering::SeqCst);
            }
        });
        // No receiver yet: the sender must wedge against the bound.
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(
            sent.load(Ordering::SeqCst),
            stalled_after,
            "bounded lane should block the sender after {stalled_after} sends"
        );
        // Draining un-wedges it and every frame arrives exactly once.
        let mut up = t.take_uplink(0);
        for seq in 0..3u64 {
            match up.recv(None) {
                RecvOutcome::Frame(f) => assert_eq!(f.frame.seq, seq),
                other => panic!("expected frame {seq}, got {other:?}"),
            }
        }
    });
    assert_eq!(sent.load(Ordering::SeqCst), 3, "all sends must complete after the drain");
}

#[test]
fn modelled_backpressure_blocks_the_sender() {
    // Queue depth 1: the first frame is accepted, the second blocks.
    check_backpressure(modelled(1, 1), 1);
}

#[test]
fn pipe_backpressure_blocks_the_sender() {
    // A 24-byte buffer cannot hold even one frame, so the very first
    // chunked write blocks mid-frame.
    check_backpressure(pipe(1, 24), 0);
}

#[cfg(unix)]
#[test]
fn uds_backpressure_blocks_the_sender() {
    // A 1-byte budget admits the first frame (idle-direction rule), then
    // stalls the second until the receiver decodes — deterministically
    // one frame in flight.
    check_backpressure(uds(1, 1), 1);
}

// ---------------------------------------------------------------------------
// Shutdown: close lets receivers drain in-flight frames before seeing
// Closed; sends after close (or after the receiver is gone) fail fast.
// ---------------------------------------------------------------------------

fn check_shutdown<T: Transport>(t: T) {
    let mut up = t.take_uplink(0);
    // An empty open lane times out rather than reporting closure.
    assert!(matches!(up.recv(Some(Duration::from_millis(5))), RecvOutcome::TimedOut));
    for seq in 0..2u64 {
        t.send_request(0, request(seq, 0, seq, tagged_payload(0, seq).encode())).expect("lane open");
    }
    t.close_requests();
    assert!(t.send_request(0, request(9, 0, 9, tagged_payload(0, 9).encode())).is_err(), "send after close");
    for seq in 0..2u64 {
        match up.recv(None) {
            RecvOutcome::Frame(f) => assert_eq!(f.frame.seq, seq, "in-flight frames must drain before Closed"),
            other => panic!("expected frame {seq}, got {other:?}"),
        }
    }
    assert!(matches!(up.recv(None), RecvOutcome::Closed));
    assert!(matches!(up.recv(Some(Duration::from_millis(1))), RecvOutcome::Closed), "closed stays closed");

    let mut down = t.take_downlink(0);
    t.send_response(0, ResponseFrame { req_id: 0, prediction: 1 }).expect("lane open");
    t.close_responses(0);
    assert!(t.send_response(0, ResponseFrame { req_id: 1, prediction: 2 }).is_err(), "send after close");
    assert!(matches!(down.recv(), RecvOutcome::Frame(r) if r.frame.req_id == 0));
    assert!(matches!(down.recv(), RecvOutcome::Closed));
}

#[test]
fn modelled_shutdown_drains_then_closes() {
    check_shutdown(modelled(1, 4));
}

#[test]
fn pipe_shutdown_drains_then_closes() {
    check_shutdown(pipe(1, 64 * 1024));
}

#[cfg(unix)]
#[test]
fn uds_shutdown_drains_then_closes() {
    check_shutdown(uds(1, 64 * 1024));
}

// ---------------------------------------------------------------------------
// Receiver drop: a consumer that dies (e.g. a panicking cloud worker)
// closes its lane, so senders fail instead of blocking forever.
// ---------------------------------------------------------------------------

fn check_receiver_drop<T: Transport>(t: T) {
    drop(t.take_uplink(0));
    assert!(
        t.send_request(0, request(0, 0, 0, tagged_payload(0, 0).encode())).is_err(),
        "send into a dropped uplink must fail, not wedge"
    );
    drop(t.take_downlink(0));
    assert!(t.send_response(0, ResponseFrame { req_id: 0, prediction: 0 }).is_err());
    // Other lanes are unaffected.
    let mut up1 = t.take_uplink(1);
    t.send_request(1, request(1, 1, 0, tagged_payload(1, 0).encode())).expect("lane 1 still open");
    assert!(matches!(up1.recv(None), RecvOutcome::Frame(_)));
}

#[test]
fn modelled_receiver_drop_closes_only_its_lane() {
    check_receiver_drop(modelled(2, 4));
}

#[test]
fn pipe_receiver_drop_closes_only_its_lane() {
    check_receiver_drop(pipe(2, 64 * 1024));
}

#[cfg(unix)]
#[test]
fn uds_receiver_drop_closes_only_its_lane() {
    check_receiver_drop(uds(2, 64 * 1024));
}
