//! # mea-quant
//!
//! Post-training int8 quantization for the MEANet reproduction's edge
//! networks.
//!
//! The paper's related work (§II-A) motivates quantized edge inference, and
//! its companion work (Long et al., *Conditionally deep hybrid neural
//! networks across edge and cloud*, reference \[43\]) builds exactly the
//! hybrid this crate enables: **low-precision layers at the edge, full
//! precision at the cloud**. This crate turns a trained `mea-nn` float
//! network into an int8 [`QNetwork`]:
//!
//! * [`qparams`] — scale/zero-point grids (affine per-tensor for
//!   activations, symmetric per-channel for weights);
//! * [`qtensor`] — the int8 tensor;
//! * [`observer`] — min-max and moving-average range calibration;
//! * [`kernels`] — integer im2col, int8 GEMM with i32 accumulation,
//!   requantization;
//! * [`qlayers`] — fused `conv+BN+ReLU`, depthwise conv, linear, pools,
//!   residual add;
//! * [`convert`] — the graph walker that fuses, calibrates and emits the
//!   quantized network;
//! * [`wire`] — the little-endian int8 byte codec quantized feature
//!   payloads travel in on the edge→cloud link.
//!
//! ```
//! use mea_nn::layers::{Activation, BatchNorm2d, Conv2d, GlobalAvgPool, Linear};
//! use mea_nn::{Layer, Mode, Sequential};
//! use mea_quant::quantize_sequential;
//! use mea_tensor::{Rng, Tensor};
//!
//! # fn main() -> Result<(), mea_quant::QuantError> {
//! let mut rng = Rng::new(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Conv2d::new(3, 8, 3, 1, 1, false, &mut rng)) as Box<dyn Layer>,
//!     Box::new(BatchNorm2d::new(8)),
//!     Box::new(Activation::relu()),
//!     Box::new(GlobalAvgPool::new()),
//!     Box::new(Linear::new(8, 10, &mut rng)),
//! ]);
//! let calibration = vec![Tensor::randn([4, 3, 8, 8], 1.0, &mut rng)];
//! let qnet = quantize_sequential(&mut net, &calibration)?;
//! let logits = qnet.forward(&Tensor::randn([1, 3, 8, 8], 1.0, &mut rng));
//! assert_eq!(logits.dims(), &[1, 10]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod convert;
pub mod error;
pub mod kernels;
pub mod observer;
pub mod qlayers;
pub mod qparams;
pub mod qtensor;
pub mod wire;

pub use convert::{quantize_segmented, quantize_sequential, QNetwork, QOp, QResidual};
pub use error::QuantError;
pub use observer::{MinMaxObserver, MovingAverageObserver};
pub use qparams::{QScheme, QuantParams};
pub use qtensor::QTensor;
