//! `ClassDict` — the hard-class label remapping of Algorithm 1 (step 3).
//!
//! The paper: *"Because the labels of hard classes are not likely to be
//! consecutive in the set of all classes C, we generate a new set of labels
//! exclusively for hard classes"*. The extension block is trained and
//! evaluated in this compact label space.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Bidirectional mapping between original labels and compact hard-class
/// labels `0..n_hard`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassDict {
    orig_to_hard: HashMap<usize, usize>,
    hard_to_orig: Vec<usize>,
}

impl ClassDict {
    /// Builds the dictionary exactly as Algorithm 1 does: iterate the hard
    /// classes in the given order, assigning consecutive new labels.
    ///
    /// # Panics
    ///
    /// Panics if `hard_classes` is empty or contains duplicates.
    pub fn new(hard_classes: &[usize]) -> Self {
        assert!(!hard_classes.is_empty(), "ClassDict needs at least one hard class");
        let mut orig_to_hard = HashMap::with_capacity(hard_classes.len());
        let mut hard_to_orig = Vec::with_capacity(hard_classes.len());
        for (new_label, &orig) in hard_classes.iter().enumerate() {
            let prev = orig_to_hard.insert(orig, new_label);
            assert!(prev.is_none(), "duplicate hard class {orig}");
            hard_to_orig.push(orig);
        }
        ClassDict { orig_to_hard, hard_to_orig }
    }

    /// Number of hard classes.
    pub fn len(&self) -> usize {
        self.hard_to_orig.len()
    }

    /// True if the dictionary is empty (never true for constructed dicts).
    pub fn is_empty(&self) -> bool {
        self.hard_to_orig.is_empty()
    }

    /// Compact label for an original label, or `None` if the class is easy.
    pub fn remap(&self, original: usize) -> Option<usize> {
        self.orig_to_hard.get(&original).copied()
    }

    /// True if `original` is one of the hard classes.
    pub fn contains(&self, original: usize) -> bool {
        self.orig_to_hard.contains_key(&original)
    }

    /// Original label for a compact hard label.
    ///
    /// # Panics
    ///
    /// Panics if `hard >= self.len()`.
    pub fn to_original(&self, hard: usize) -> usize {
        self.hard_to_orig[hard]
    }

    /// The hard classes in compact-label order.
    pub fn hard_classes(&self) -> &[usize] {
        &self.hard_to_orig
    }

    /// Remaps a label slice, keeping only hard-class instances; returns the
    /// kept indices and their new labels (Algorithm 1, step 5).
    pub fn select_and_remap(&self, labels: &[usize]) -> (Vec<usize>, Vec<usize>) {
        let mut indices = Vec::new();
        let mut remapped = Vec::new();
        for (i, &l) in labels.iter().enumerate() {
            if let Some(new) = self.remap(l) {
                indices.push(i);
                remapped.push(new);
            }
        }
        (indices, remapped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remap_round_trips() {
        let dict = ClassDict::new(&[7, 2, 9]);
        assert_eq!(dict.len(), 3);
        assert_eq!(dict.remap(7), Some(0));
        assert_eq!(dict.remap(2), Some(1));
        assert_eq!(dict.remap(9), Some(2));
        assert_eq!(dict.remap(3), None);
        for hard in 0..3 {
            assert_eq!(dict.remap(dict.to_original(hard)), Some(hard));
        }
    }

    #[test]
    fn select_and_remap_filters() {
        let dict = ClassDict::new(&[1, 3]);
        let labels = vec![0, 1, 2, 3, 1, 0];
        let (idx, new) = dict.select_and_remap(&labels);
        assert_eq!(idx, vec![1, 3, 4]);
        assert_eq!(new, vec![0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "duplicate hard class")]
    fn duplicates_rejected() {
        ClassDict::new(&[1, 1]);
    }

    #[test]
    fn contains_matches_remap() {
        let dict = ClassDict::new(&[4, 8]);
        for c in 0..10 {
            assert_eq!(dict.contains(c), dict.remap(c).is_some());
        }
    }
}
