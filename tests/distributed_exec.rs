//! The threaded edge→cloud pipeline must agree with local inference: the
//! payload codec and channel plumbing may not change predictions (for
//! lossless feature payloads) and must account every byte.

use mea_data::presets;
use mea_edgecloud::payload::Payload;
use mea_edgecloud::sim::run_threaded;
use mea_nn::layer::Mode;
use mea_nn::models::{resnet_cifar, CifarResNetConfig};
use mea_tensor::Rng;
use meanet::train::{train_backbone, TrainConfig};
use parking_lot::Mutex;

#[test]
fn threaded_cloud_matches_local_predictions_for_feature_payloads() {
    let bundle = presets::tiny(55);
    let mut rng = Rng::new(55);
    let mut arch = CifarResNetConfig::repro_scale(6);
    arch.input_hw = 8;
    let mut cloud = resnet_cifar(&arch, &mut rng);
    let _ = train_backbone(&mut cloud, &bundle.train, &TrainConfig::repro(4));

    // Local predictions.
    let mut local = Vec::new();
    for i in 0..bundle.test.len().min(12) {
        let img = bundle.test.images.slice_axis0(i, i + 1);
        local.push(cloud.forward(&img, Mode::Eval).argmax_rows()[0]);
    }

    // Remote predictions via the threaded pipeline with lossless f32
    // feature payloads (raw-image payloads quantise to 8 bits).
    let payloads: Vec<Payload> = (0..local.len())
        .map(|i| Payload::Features { features: bundle.test.images.slice_axis0(i, i + 1) })
        .collect();
    let expected_bytes: u64 = payloads.iter().map(|p| p.wire_size_bytes()).sum();
    let cloud = Mutex::new(cloud);
    let (remote, stats) =
        run_threaded(payloads, |p| cloud.lock().forward(&p.as_tensor(), Mode::Eval).argmax_rows()[0]);

    assert_eq!(remote, local, "wire transfer changed predictions");
    assert_eq!(stats.bytes_sent, expected_bytes, "byte accounting mismatch");
    assert_eq!(stats.payloads as usize, local.len());
}

#[test]
fn raw_payload_quantisation_rarely_flips_predictions() {
    let bundle = presets::tiny(56);
    let mut rng = Rng::new(56);
    let mut arch = CifarResNetConfig::repro_scale(6);
    arch.input_hw = 8;
    let mut cloud = resnet_cifar(&arch, &mut rng);
    let _ = train_backbone(&mut cloud, &bundle.train, &TrainConfig::repro(4));

    let n = bundle.test.len().min(16);
    let mut local = Vec::new();
    for i in 0..n {
        let img = bundle.test.images.slice_axis0(i, i + 1);
        local.push(cloud.forward(&img, Mode::Eval).argmax_rows()[0]);
    }
    let payloads: Vec<Payload> =
        (0..n).map(|i| Payload::RawImage { image: bundle.test.images.slice_axis0(i, i + 1) }).collect();
    let cloud = Mutex::new(cloud);
    let (remote, _) =
        run_threaded(payloads, |p| cloud.lock().forward(&p.as_tensor(), Mode::Eval).argmax_rows()[0]);
    let agree = remote.iter().zip(&local).filter(|(a, b)| a == b).count();
    assert!(agree * 4 >= n * 3, "8-bit quantisation flipped too many predictions: {agree}/{n}");
}
