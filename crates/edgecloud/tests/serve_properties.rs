//! Property-based tests on the serving runtime: per-device response
//! ordering under dynamic batching, record equivalence with the offline
//! sweep under arbitrary worker/batch configurations, and cut-point
//! invariance of feature-payload serving.

use mea_data::{presets, ClassDict};
use mea_edgecloud::device::DeviceProfile;
use mea_edgecloud::fleet::{ComputeTier, DeviceClass, FleetSpec};
use mea_edgecloud::governor::SlaTarget;
use mea_edgecloud::network::{LinkEstimate, LinkEstimator, NetworkLink};
use mea_edgecloud::partition::{CutPlanner, Objective, PartitionEnv};
use mea_edgecloud::serve::{
    trace_requests, try_serve, CloudIngress, ControlPlan, CutPlannerConfig, CutSelection, EdgeReplica,
    FeatureConfig, FeatureWire, Fleet, LinkChange, LinkFeedback, PayloadPlan, ServeConfig, RESPONSE_WIRE_BYTES,
};
use mea_edgecloud::traces::ArrivalModel;
use mea_nn::models::{resnet_cifar, CifarResNetConfig, SegmentedCnn};
use mea_tensor::Rng;
use meanet::infer::run_inference_with_policy;
use meanet::model::{AdaptivePlan, MeaNet, Merge, Variant};
use meanet::{DifficultyPredictor, ExitPoint, OffloadPolicy};
use proptest::prelude::*;
use std::time::Duration;

fn tiny_net(seed: u64) -> MeaNet {
    let mut rng = Rng::new(seed);
    let mut cfg = CifarResNetConfig::repro_scale(6);
    cfg.input_hw = 8;
    let backbone = resnet_cifar(&cfg, &mut rng);
    let mut net = MeaNet::from_backbone(
        backbone,
        Variant::FullBackbone { extension_channels: 8, extension_blocks: 1 },
        Merge::Sum,
        &mut rng,
    );
    net.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, ClassDict::new(&[0, 2, 4]), &mut rng);
    net
}

fn tiny_cloud(seed: u64) -> SegmentedCnn {
    let mut rng = Rng::new(seed);
    let mut cfg = CifarResNetConfig::repro_scale(6);
    cfg.input_hw = 8;
    cfg.channels = [16, 24, 32];
    resnet_cifar(&cfg, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Dynamic batching never reorders responses *per device*: within one
    /// device's stream, cloud completions come back in sequence order and
    /// local completions come back in sequence order, whatever the worker
    /// topology, batch cap or coalescing wait. (A local exit may overtake
    /// an earlier in-flight offload — that cross-exit interleaving is
    /// inherent to early-exit serving — but the cloud path itself is
    /// device-FIFO end to end.)
    #[test]
    fn dynamic_batching_preserves_per_device_order(
        devices in 1usize..5,
        edge_workers in 1usize..4,
        cloud_workers in 1usize..4,
        max_batch in 1usize..9,
        wait_us in 0u64..2000,
        threshold in 0.0f32..2.0,
    ) {
        let bundle = presets::tiny(70);
        let mut rng = Rng::new(5);
        let requests =
            trace_requests(&bundle.test, devices, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
        let mut edges: Vec<EdgeReplica> = (0..edge_workers).map(|_| EdgeReplica::new(tiny_net(21))).collect();
        let mut clouds: Vec<SegmentedCnn> = (0..cloud_workers).map(|_| tiny_cloud(22)).collect();
        let mut cfg = ServeConfig::new(
            OffloadPolicy::EntropyThreshold(threshold),
            edge_workers,
            cloud_workers,
            max_batch,
        );
        cfg.max_wait = Duration::from_micros(wait_us);
        let report = try_serve(&cfg, &mut edges, &mut clouds, &requests).expect("serves");
        prop_assert_eq!(report.completions.len(), requests.len());

        for d in 0..devices {
            let mut last_cloud_seq = None;
            let mut last_local_seq = None;
            for c in report.completions.iter().filter(|c| c.device == d) {
                let slot = if c.record.exit == ExitPoint::Cloud {
                    &mut last_cloud_seq
                } else {
                    &mut last_local_seq
                };
                if let Some(prev) = *slot {
                    prop_assert!(
                        c.seq > prev,
                        "device {} exit {:?}: seq {} completed after seq {}",
                        d, c.record.exit, c.seq, prev
                    );
                }
                *slot = Some(c.seq);
            }
        }
    }

    /// Whatever the configuration, the records equal the sequential
    /// offline sweep's — worker scheduling is invisible in the output.
    #[test]
    fn any_configuration_matches_the_offline_sweep(
        devices in 1usize..4,
        edge_workers in 1usize..4,
        cloud_workers in 1usize..3,
        max_batch in 1usize..6,
        batch_size in 1usize..17,
        threshold in 0.0f32..2.0,
    ) {
        let bundle = presets::tiny(71);
        let policy = OffloadPolicy::EntropyThreshold(threshold);
        let mut offline_net = tiny_net(23);
        let mut offline_cloud = tiny_cloud(24);
        let expected = run_inference_with_policy(
            &mut offline_net,
            Some(&mut offline_cloud),
            &bundle.test,
            policy,
            batch_size,
        );

        let mut rng = Rng::new(6);
        let requests =
            trace_requests(&bundle.test, devices, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
        let mut edges: Vec<EdgeReplica> = (0..edge_workers).map(|_| EdgeReplica::new(tiny_net(23))).collect();
        let mut clouds: Vec<SegmentedCnn> = (0..cloud_workers).map(|_| tiny_cloud(24)).collect();
        let cfg = ServeConfig::new(policy, edge_workers, cloud_workers, max_batch);
        let report = try_serve(&cfg, &mut edges, &mut clouds, &requests).expect("serves");
        prop_assert_eq!(report.records, expected);
    }

    /// Any cut index yields bitwise-identical cloud predictions: serving
    /// with a feature payload (lossless wire) at an arbitrary cut, under
    /// an arbitrary worker/batch topology, reproduces the offline sweep's
    /// records exactly — and saves the cloud exactly the prefix MACs.
    #[test]
    fn any_cut_yields_bitwise_identical_cloud_predictions(
        cut_pick in 0usize..1000,
        devices in 1usize..4,
        edge_workers in 1usize..3,
        cloud_workers in 1usize..3,
        max_batch in 1usize..6,
        threshold in 0.0f32..1.5,
    ) {
        let bundle = presets::tiny(79);
        let policy = OffloadPolicy::EntropyThreshold(threshold);
        let mut offline_net = tiny_net(25);
        let mut offline_cloud = tiny_cloud(26);
        let expected =
            run_inference_with_policy(&mut offline_net, Some(&mut offline_cloud), &bundle.test, policy, 8);

        let layers = tiny_cloud(26).cut_layer_count();
        let cut = cut_pick % layers;
        let mut rng = Rng::new(7);
        let requests =
            trace_requests(&bundle.test, devices, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
        let mut edges: Vec<EdgeReplica> = (0..edge_workers)
            .map(|_| EdgeReplica::with_cloud_prefix(tiny_net(25), tiny_cloud(26)))
            .collect();
        let mut clouds: Vec<SegmentedCnn> = (0..cloud_workers).map(|_| tiny_cloud(26)).collect();
        let mut cfg = ServeConfig::new(policy, edge_workers, cloud_workers, max_batch);
        cfg.payload = PayloadPlan::Features(FeatureConfig {
            wire: FeatureWire::F32,
            cut: CutSelection::Fixed(cut),
        });
        let report = try_serve(&cfg, &mut edges, &mut clouds, &requests).expect("serves");
        prop_assert_eq!(report.records, expected, "cut {} diverged", cut);
        prop_assert_eq!(report.stats.final_cuts, Some(vec![cut]));
        // MAC conservation: executed + saved = offloads x full forward.
        let total_macs: u64 = tiny_cloud(26).total_macs();
        prop_assert_eq!(
            report.stats.cloud_macs + report.stats.cloud_macs_saved,
            report.stats.offloaded as u64 * total_macs
        );
    }

    /// The exchange law of closed-loop planning: degrading the *measured*
    /// link (any factor >= 1) can never move the planned serving cut to a
    /// larger upload — congestion only ever shrinks what crosses the
    /// wire. (The cut index itself need not be monotone: a shallow cut
    /// with a small upload may legitimately beat a deep cut with a fat
    /// activation.)
    #[test]
    fn measured_degradation_never_grows_the_planned_upload(
        rate in 0.05f64..500.0,
        factor in 1.0f64..256.0,
        edge_rate in 1e7f64..1e12,
        cloud_rate in 1e9f64..1e13,
        samples in 1u64..128,
    ) {
        let cloud_net = tiny_cloud(26);
        let in_elems: u64 = cloud_net.in_shape.iter().map(|&d| d as u64).product();
        let env = PartitionEnv {
            edge: DeviceProfile::new("edge", 10.0, edge_rate),
            cloud: DeviceProfile::new("cloud", 200.0, cloud_rate),
            link: NetworkLink::wifi(rate).with_rtt(0.001),
            bytes_per_elem: 4,
            raw_input_bytes: 4 * in_elems,
            response_bytes: RESPONSE_WIRE_BYTES,
        };
        let mut planner = CutPlanner::from_network(&cloud_net, env, Objective::Latency, 1);
        planner.set_prior_samples(0.0); // isolate the measured path
        let edge = DeviceProfile::new("edge", 10.0, edge_rate);
        let nominal = LinkEstimate { up_mbps: rate, down_mbps: rate, rtt_s: 0.001, samples };
        let degraded = LinkEstimate { up_mbps: rate / factor, down_mbps: rate / factor, ..nominal };
        let before = planner.plan_for_measured(&edge, Some(&nominal));
        let after = planner.plan_for_measured(&edge, Some(&degraded));
        prop_assert!(
            after.upload_bytes <= before.upload_bytes,
            "degradation x{} grew the upload: {:?} -> {:?}", factor, before, after
        );
        // And a measured link identical to the static prior is a no-op.
        let static_plan = planner.plan_for(&edge);
        prop_assert_eq!(before.cut, static_plan.cut);
    }

    /// EWMA telemetry recovers a stationary link's true rates exactly
    /// (observations are size-invariant), and after a mid-stream rate
    /// change converges geometrically onto the new rate.
    #[test]
    fn link_estimator_converges_to_the_true_rate(
        up in 0.1f64..1000.0,
        down in 0.1f64..1000.0,
        rtt in 0.0f64..0.05,
        alpha in 0.2f64..1.0,
        sizes in proptest::collection::vec(1u64..100_000, 4..24),
    ) {
        let link = NetworkLink::wifi(up).with_rtt(rtt).with_download(down);
        let mut est = LinkEstimator::new(1, alpha);
        for &bytes in &sizes {
            est.observe(0, bytes, link.upload_time_s(bytes), bytes, link.download_time_s(bytes), link.rtt_s);
        }
        let e = est.estimate(0).expect("observed");
        prop_assert!((e.up_mbps - up).abs() / up < 1e-9, "stationary up {} vs {}", e.up_mbps, up);
        prop_assert!((e.down_mbps - down).abs() / down < 1e-9);
        prop_assert!((e.rtt_s - rtt).abs() < 1e-12);
        // Halve the link; after 24 more observations the estimate must
        // sit within 5% of the new rate for any alpha >= 0.2
        // (residual weight (1-alpha)^24 < 0.005).
        let slow = NetworkLink::wifi(up / 2.0).with_rtt(rtt).with_download(down / 2.0);
        for &bytes in sizes.iter().cycle().take(24) {
            est.observe(0, bytes, slow.upload_time_s(bytes), bytes, slow.download_time_s(bytes), slow.rtt_s);
        }
        let e = est.estimate(0).expect("observed");
        let target = up / 2.0;
        prop_assert!(
            (e.up_mbps - target).abs() / target < 0.05,
            "after degradation: {} vs {}", e.up_mbps, target
        );
    }

    /// Closed-loop serving under a mid-trace link degradation: whatever
    /// the feedback cadence and smoothing, the records stay bitwise
    /// identical to the open-loop run (the cut is a pure cost knob under
    /// the lossless wire), replan telemetry is reported, and the final
    /// planned upload is never larger than the open-loop one.
    #[test]
    fn degraded_link_feedback_replans_without_touching_predictions(
        replan_every in 1u64..7,
        alpha in 0.3f64..1.0,
        after_batches in 4u64..12,
        threshold in 0.2f32..1.2,
    ) {
        let bundle = presets::tiny(83);
        let nominal = NetworkLink::wifi(100.0).with_rtt(0.0002);
        let degraded = NetworkLink::wifi(0.5).with_rtt(0.0002);
        let edge = DeviceProfile::new("edge", 10.0, 5e8);
        let run = |feedback: Option<LinkFeedback>| {
            let mut edges =
                vec![EdgeReplica::with_cloud_prefix(tiny_net(27), tiny_cloud(28))];
            let mut clouds: Vec<SegmentedCnn> = vec![tiny_cloud(28)];
            let mut cfg = ServeConfig::new(OffloadPolicy::EntropyThreshold(threshold), 1, 1, 1);
            let planner = CutPlannerConfig {
                classes: vec![edge.clone()],
                cloud: DeviceProfile::new("cloud", 200.0, 1e12),
                objective: Objective::Latency,
                feedback: None,
            };
            match feedback {
                Some(fb) => {
                    cfg.control = Some(ControlPlan::ClosedLoop {
                        planner,
                        feedback: fb,
                        wire: FeatureWire::F32,
                        controller: None,
                    });
                }
                None => {
                    cfg.payload = PayloadPlan::Features(FeatureConfig {
                        wire: FeatureWire::F32,
                        cut: CutSelection::Planned(planner),
                    });
                }
            }
            cfg.link = Some(nominal);
            cfg.link_schedule = vec![LinkChange { after_batches, link: degraded }];
            let mut rng = Rng::new(9);
            let requests =
                trace_requests(&bundle.test, 1, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
            try_serve(&cfg, &mut edges, &mut clouds, &requests).expect("serves")
        };
        let closed = run(Some(LinkFeedback { alpha, prior_samples: 0.0, replan_every }));
        let open = run(None);
        prop_assert_eq!(&closed.records, &open.records, "feedback leaked into predictions");
        prop_assert_eq!(open.stats.cut_replans, 0);
        let ests = closed.stats.link_estimates.as_ref().expect("feedback reports estimates");
        if closed.stats.offloaded > 0 {
            let est = ests[0].expect("class observed");
            prop_assert_eq!(est.samples, closed.stats.offloaded as u64);
        }
        // The closed-loop final cut uploads no more than the open-loop one.
        let cloud_net = tiny_cloud(28);
        let profiles = mea_edgecloud::partition::profile_network(&cloud_net);
        let in_elems: u64 = cloud_net.in_shape.iter().map(|&d| d as u64).product();
        let upload =
            |cut: usize| if cut == 0 { 4 * in_elems } else { 4 * profiles[cut - 1].out_elems };
        let closed_cut = closed.stats.final_cuts.as_ref().expect("planned")[0];
        let open_cut = open.stats.final_cuts.as_ref().expect("planned")[0];
        prop_assert!(
            upload(closed_cut) <= upload(open_cut),
            "feedback grew the upload: open cut {} -> closed cut {}", open_cut, closed_cut
        );
    }

    /// Heterogeneity never breaks ordering: whatever the class mix
    /// (random tiers), the explicit device pins, the worker topology or
    /// the difficulty predictor, each device's stream stays FIFO per exit
    /// lane and the per-class breakdown partitions the totals exactly.
    #[test]
    fn heterogeneous_fleets_preserve_per_device_order(
        devices in 1usize..5,
        edge_workers in 1usize..4,
        cloud_workers in 1usize..3,
        max_batch in 1usize..6,
        tiers in proptest::collection::vec(0usize..3, 1..4),
        pins in proptest::collection::vec(0usize..4, 0..4),
        use_difficulty in any::<bool>(),
        threshold in 0.0f32..2.0,
    ) {
        let bundle = presets::tiny(90);
        let base = DeviceProfile::new("edge", 10.0, 1e9);
        let classes: Vec<DeviceClass> = tiers
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let tier = [ComputeTier::High, ComputeTier::Medium, ComputeTier::Low][t];
                DeviceClass::new(format!("c{i}"), base.clone(), tier)
            })
            .collect();
        let class_count = classes.len();
        let mut spec = FleetSpec::round_robin(classes);
        for (device, &class) in pins.iter().enumerate() {
            spec = spec.assign(device, class % class_count);
        }
        let mut rng = Rng::new(8);
        let requests =
            trace_requests(&bundle.test, devices, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
        let mut builder = ServeConfig::builder(OffloadPolicy::EntropyThreshold(threshold))
            .edge_workers(edge_workers)
            .cloud_workers(cloud_workers)
            .max_batch(max_batch)
            .fleet(spec);
        if use_difficulty {
            let mut calibration = tiny_net(29);
            builder = builder
                .difficulty(DifficultyPredictor::calibrate(&mut calibration, &bundle.train.images, 8));
        }
        let cfg = builder.build().expect("valid config");
        let edges: Vec<EdgeReplica> = (0..edge_workers).map(|_| EdgeReplica::new(tiny_net(29))).collect();
        let clouds: Vec<SegmentedCnn> = (0..cloud_workers).map(|_| tiny_cloud(30)).collect();
        let mut fleet = Fleet::new(cfg, edges, clouds).expect("consistent replicas");
        let report = fleet.serve(&requests).expect("serves");
        prop_assert_eq!(report.completions.len(), requests.len());

        let served = report.stats.per_class_served.as_ref().expect("fleet stats");
        let offload = report.stats.per_class_offload.as_ref().expect("fleet stats");
        prop_assert_eq!(served.iter().sum::<usize>(), report.stats.total);
        prop_assert_eq!(offload.iter().sum::<usize>(), report.stats.offloaded);

        for d in 0..devices {
            let mut last_cloud_seq = None;
            let mut last_local_seq = None;
            for c in report.completions.iter().filter(|c| c.device == d) {
                let slot = if c.record.exit == ExitPoint::Cloud {
                    &mut last_cloud_seq
                } else {
                    &mut last_local_seq
                };
                if let Some(prev) = *slot {
                    prop_assert!(
                        c.seq > prev,
                        "device {} exit {:?}: seq {} completed after seq {}",
                        d, c.record.exit, c.seq, prev
                    );
                }
                *slot = Some(c.seq);
            }
        }
    }

    /// The sharded work-stealing ingress is a pure scheduling knob:
    /// whatever the shard count (= cloud workers), batch cap, straggler
    /// wait or threshold, the served records are identical to the
    /// single-queue reference path, steal accounting only ever appears on
    /// the sharded side, and the per-shard batch counts partition the
    /// batch total in both modes.
    #[test]
    fn sharded_ingress_is_record_identical_to_single_queue(
        devices in 1usize..5,
        edge_workers in 1usize..4,
        cloud_workers in 1usize..5,
        max_batch in 1usize..9,
        wait_us in 0u64..1500,
        threshold in 0.0f32..2.0,
    ) {
        let bundle = presets::tiny(95);
        let mut rng = Rng::new(11);
        let requests =
            trace_requests(&bundle.test, devices, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
        let run = |ingress: CloudIngress| {
            let mut edges: Vec<EdgeReplica> =
                (0..edge_workers).map(|_| EdgeReplica::new(tiny_net(33))).collect();
            let mut clouds: Vec<SegmentedCnn> = (0..cloud_workers).map(|_| tiny_cloud(34)).collect();
            let cfg = ServeConfig::builder(OffloadPolicy::EntropyThreshold(threshold))
                .edge_workers(edge_workers)
                .cloud_workers(cloud_workers)
                .max_batch(max_batch)
                .max_wait(Duration::from_micros(wait_us))
                .ingress(ingress)
                .build()
                .expect("valid config");
            try_serve(&cfg, &mut edges, &mut clouds, &requests).expect("serves")
        };
        let sharded = run(CloudIngress::Sharded);
        let single = run(CloudIngress::SingleQueue);
        prop_assert_eq!(&sharded.records, &single.records, "ingress changed the served records");
        prop_assert_eq!(sharded.stats.offloaded, single.stats.offloaded);
        prop_assert_eq!(single.stats.steals, 0);
        prop_assert_eq!(single.stats.max_queue_depth, 0);
        for stats in [&sharded.stats, &single.stats] {
            prop_assert_eq!(stats.per_shard_batches.len(), cloud_workers);
            prop_assert_eq!(stats.per_shard_batches.iter().sum::<u64>(), stats.cloud_batches);
        }
    }

    /// Per-device FIFO per exit lane survives work stealing under a
    /// deliberately skewed population: every device id is a multiple of
    /// the cloud worker count, so every frame lands on shard 0 and any
    /// parallelism the other workers contribute comes entirely from
    /// steals. The completion stream must still be sequence-ordered per
    /// device and exit lane, and the records identical to the offline
    /// sweep.
    #[test]
    fn work_stealing_preserves_per_device_fifo_under_skew(
        device_count in 1usize..4,
        cloud_workers in 2usize..5,
        max_batch in 1usize..5,
        threshold in 0.0f32..2.0,
    ) {
        let bundle = presets::tiny(96);
        let policy = OffloadPolicy::EntropyThreshold(threshold);
        let mut rng = Rng::new(12);
        let mut requests =
            trace_requests(&bundle.test, device_count, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
        // Skew: device d -> d * cloud_workers keeps ids distinct while
        // pinning every sticky lane index to 0.
        for r in &mut requests {
            r.device *= cloud_workers;
        }
        let mut edges = vec![EdgeReplica::new(tiny_net(35))];
        let mut clouds: Vec<SegmentedCnn> = (0..cloud_workers).map(|_| tiny_cloud(36)).collect();
        let cfg = ServeConfig::builder(policy)
            .edge_workers(1)
            .cloud_workers(cloud_workers)
            .max_batch(max_batch)
            .queue_depth(8)
            .link(NetworkLink::wifi(200.0).with_rtt(0.0005))
            .build()
            .expect("valid config");
        let report = try_serve(&cfg, &mut edges, &mut clouds, &requests).expect("serves");
        prop_assert_eq!(report.completions.len(), requests.len());
        for d in (0..device_count).map(|d| d * cloud_workers) {
            let mut last_cloud_seq = None;
            let mut last_local_seq = None;
            for c in report.completions.iter().filter(|c| c.device == d) {
                let slot = if c.record.exit == ExitPoint::Cloud {
                    &mut last_cloud_seq
                } else {
                    &mut last_local_seq
                };
                if let Some(prev) = *slot {
                    prop_assert!(
                        c.seq > prev,
                        "device {} exit {:?}: seq {} completed after seq {}",
                        d, c.record.exit, c.seq, prev
                    );
                }
                *slot = Some(c.seq);
            }
        }
        let mut net = tiny_net(35);
        let mut cloud = tiny_cloud(36);
        let expected = run_inference_with_policy(&mut net, Some(&mut cloud), &bundle.test, policy, 8);
        prop_assert_eq!(report.records, expected, "skewed stealing run diverged from the sweep");
    }

    /// The identity embedding of the old API into the new one: a fleet of
    /// ONE High-tier class (scale factor 1.0, no link prior, no pins) is
    /// record-identical — cuts, bytes and all — to the legacy homogeneous
    /// `CutPlannerConfig::classes` path, for any topology, link rate and
    /// threshold.
    #[test]
    fn identity_fleet_is_record_identical_to_the_homogeneous_path(
        devices in 1usize..4,
        edge_workers in 1usize..3,
        cloud_workers in 1usize..3,
        max_batch in 1usize..6,
        rate in 0.5f64..200.0,
        threshold in 0.0f32..1.5,
    ) {
        let bundle = presets::tiny(91);
        let edge = DeviceProfile::new("edge", 10.0, 5e8);
        let link = NetworkLink::wifi(rate).with_rtt(0.001);
        let policy = OffloadPolicy::EntropyThreshold(threshold);
        let mut rng = Rng::new(10);
        let requests =
            trace_requests(&bundle.test, devices, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
        let planned = |classes: Vec<DeviceProfile>| PayloadPlan::Features(FeatureConfig {
            wire: FeatureWire::F32,
            cut: CutSelection::Planned(CutPlannerConfig {
                classes,
                cloud: DeviceProfile::new("cloud", 200.0, 1e12),
                objective: Objective::Latency,
                feedback: None,
            }),
        });
        let build_replicas = || {
            let edges: Vec<EdgeReplica> = (0..edge_workers)
                .map(|_| EdgeReplica::with_cloud_prefix(tiny_net(31), tiny_cloud(32)))
                .collect();
            let clouds: Vec<SegmentedCnn> = (0..cloud_workers).map(|_| tiny_cloud(32)).collect();
            (edges, clouds)
        };

        let mut legacy_cfg = ServeConfig::new(policy, edge_workers, cloud_workers, max_batch);
        legacy_cfg.payload = planned(vec![edge.clone()]);
        legacy_cfg.link = Some(link);
        let (mut edges, mut clouds) = build_replicas();
        let legacy = try_serve(&legacy_cfg, &mut edges, &mut clouds, &requests).expect("serves");

        let spec = FleetSpec::uniform(DeviceClass::new("edge", edge, ComputeTier::High));
        let fleet_cfg = ServeConfig::builder(policy)
            .edge_workers(edge_workers)
            .cloud_workers(cloud_workers)
            .max_batch(max_batch)
            .payload(planned(Vec::new()))
            .link(link)
            .fleet(spec)
            .build()
            .expect("valid config");
        let (fleet_edges, fleet_clouds) = build_replicas();
        let mut fleet = Fleet::new(fleet_cfg, fleet_edges, fleet_clouds).expect("consistent replicas");
        let report = fleet.serve(&requests).expect("serves");
        prop_assert_eq!(&report.records, &legacy.records, "identity fleet diverged from the legacy path");
        prop_assert_eq!(report.stats.final_cuts, legacy.stats.final_cuts);
        prop_assert_eq!(report.stats.bytes_to_cloud, legacy.stats.bytes_to_cloud);
        prop_assert_eq!(report.stats.offloaded, legacy.stats.offloaded);
    }

    /// The identity embedding of the scalar cut into placement planning:
    /// a coop group with a SINGLE member pools no extra throughput, so
    /// whatever the topology, WAN rate, peer-link rate, compute tier or
    /// control plan (open-loop planned, closed-loop feedback, governed),
    /// the planner must emit the same two-stage placements as a fleet
    /// with no coop group at all — records, cuts, placements and bytes
    /// all identical, with zero peer hops on the wire.
    #[test]
    fn single_member_coop_group_is_record_identical_to_solo_planning(
        devices in 1usize..4,
        edge_workers in 1usize..3,
        cloud_workers in 1usize..3,
        max_batch in 1usize..6,
        rate in 0.5f64..200.0,
        peer_rate in 1.0f64..500.0,
        tier_pick in 0usize..3,
        control_pick in 0usize..3,
        threshold in 0.0f32..1.5,
    ) {
        let bundle = presets::tiny(99);
        let edge = DeviceProfile::new("edge", 10.0, 5e8);
        let link = NetworkLink::wifi(rate).with_rtt(0.001);
        let policy = OffloadPolicy::EntropyThreshold(threshold);
        let tier = [ComputeTier::High, ComputeTier::Medium, ComputeTier::Low][tier_pick];
        let mut rng = Rng::new(15);
        let requests =
            trace_requests(&bundle.test, devices, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
        let planner = || CutPlannerConfig {
            classes: Vec::new(), // the fleet spec supplies the class profiles
            cloud: DeviceProfile::new("cloud", 200.0, 1e12),
            objective: Objective::Latency,
            feedback: None,
        };
        let run = |coop: Option<(usize, NetworkLink)>| {
            let mut class = DeviceClass::new("edge", edge.clone(), tier);
            if let Some((members, peer_link)) = coop {
                class = class.coop_group(members, peer_link);
            }
            let mut builder = ServeConfig::builder(policy)
                .edge_workers(edge_workers)
                .cloud_workers(cloud_workers)
                .max_batch(max_batch)
                .link(link)
                .fleet(FleetSpec::uniform(class));
            builder = match control_pick {
                0 => builder.payload(PayloadPlan::Features(FeatureConfig {
                    wire: FeatureWire::F32,
                    cut: CutSelection::Planned(planner()),
                })),
                1 => builder.control(ControlPlan::ClosedLoop {
                    planner: planner(),
                    feedback: LinkFeedback::default(),
                    wire: FeatureWire::F32,
                    controller: None,
                }),
                // A one-minute p95 budget no tiny trace can violate: the
                // governor plans but never escalates.
                _ => builder.control(ControlPlan::Governed(SlaTarget::new(60_000.0, 0.80))),
            };
            let cfg = builder.build().expect("valid config");
            let edges: Vec<EdgeReplica> = (0..edge_workers)
                .map(|_| EdgeReplica::with_cloud_prefix(tiny_net(45), tiny_cloud(46)))
                .collect();
            let clouds: Vec<SegmentedCnn> = (0..cloud_workers).map(|_| tiny_cloud(46)).collect();
            let mut fleet = Fleet::new(cfg, edges, clouds).expect("consistent replicas");
            fleet.serve(&requests).expect("serves")
        };
        let solo = run(None);
        let single = run(Some((1, NetworkLink::wifi(peer_rate).with_rtt(0.0002))));
        prop_assert_eq!(&single.records, &solo.records, "a single-member coop group changed the records");
        prop_assert_eq!(&single.stats.final_cuts, &solo.stats.final_cuts);
        prop_assert_eq!(&single.stats.placements, &solo.stats.placements);
        prop_assert_eq!(single.stats.bytes_to_cloud, solo.stats.bytes_to_cloud);
        prop_assert_eq!(single.stats.offloaded, solo.stats.offloaded);
        prop_assert_eq!(single.stats.peer_hops, 0, "a degenerate pool must never ship a peer hop");
        prop_assert_eq!(single.stats.peer_bytes, 0);
        let placements = single.stats.placements.as_ref().expect("planned placements");
        prop_assert!(
            placements.iter().all(mea_edgecloud::PlacementPlan::is_two_stage),
            "single-member pool must stay two-stage: {:?}",
            placements
        );
    }

    /// An unreachable SLA degrades gracefully: whatever the topology or
    /// routing policy, the governor escalates its ladder without ever
    /// panicking, every request still completes, and — once enough
    /// decision epochs have fired — the violating windows are reported
    /// in the stats rather than swallowed.
    #[test]
    fn governed_unreachable_sla_degrades_gracefully(
        edge_workers in 1usize..3,
        cloud_workers in 1usize..3,
        max_batch in 1usize..5,
        always in any::<bool>(),
        threshold in 0.2f32..1.2,
    ) {
        let bundle = presets::tiny(97);
        let policy =
            if always { OffloadPolicy::Always } else { OffloadPolicy::EntropyThreshold(threshold) };
        let mut rng = Rng::new(13);
        let requests =
            trace_requests(&bundle.test, 2, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
        let mut edges: Vec<EdgeReplica> = (0..edge_workers)
            .map(|_| EdgeReplica::with_cloud_prefix(tiny_net(41), tiny_cloud(42)))
            .collect();
        let mut clouds: Vec<SegmentedCnn> = (0..cloud_workers).map(|_| tiny_cloud(42)).collect();
        let mut cfg = ServeConfig::new(policy, edge_workers, cloud_workers, max_batch);
        cfg.link = Some(NetworkLink::wifi(1.0).with_rtt(0.002));
        // A 1 µs p95 budget: no cut, wire or beta can reach it.
        cfg.control = Some(ControlPlan::Governed(SlaTarget::new(1e-3, 0.90)));
        let report = try_serve(&cfg, &mut edges, &mut clouds, &requests).expect("serves");
        prop_assert_eq!(report.completions.len(), requests.len());
        let trajectory =
            report.stats.control_trajectory.as_ref().expect("governed runs report their trajectory");
        prop_assert!(!trajectory.is_empty(), "trajectory always holds the initial operating point");
        // Three epochs' worth of batches guarantees at least one judged
        // window; under a 1 µs budget every judged window violates.
        if report.stats.cloud_batches >= 24 {
            prop_assert!(
                report.stats.sla_violations > 0,
                "an unreachable SLA must report violating windows ({} cloud batches, 0 violations)",
                report.stats.cloud_batches
            );
        }
    }

    /// A generous SLA is invisible: a governed run whose budget nothing
    /// ever violates takes the exact open-loop decision path, so its
    /// records, cuts and bytes are identical to the equivalent
    /// `ControlPlan::ClosedLoop` run and its counters stay zero.
    #[test]
    fn governed_generous_sla_is_record_identical_to_closed_loop(
        devices in 1usize..4,
        edge_workers in 1usize..3,
        cloud_workers in 1usize..3,
        max_batch in 1usize..6,
        threshold in 0.2f32..1.2,
    ) {
        let bundle = presets::tiny(98);
        let policy = OffloadPolicy::EntropyThreshold(threshold);
        let mut rng = Rng::new(14);
        let requests =
            trace_requests(&bundle.test, devices, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
        let run = |control: ControlPlan| {
            let mut edges: Vec<EdgeReplica> = (0..edge_workers)
                .map(|_| EdgeReplica::with_cloud_prefix(tiny_net(43), tiny_cloud(44)))
                .collect();
            let mut clouds: Vec<SegmentedCnn> = (0..cloud_workers).map(|_| tiny_cloud(44)).collect();
            let mut cfg = ServeConfig::new(policy, edge_workers, cloud_workers, max_batch);
            cfg.link = Some(NetworkLink::wifi(50.0).with_rtt(0.001));
            cfg.control = Some(control);
            try_serve(&cfg, &mut edges, &mut clouds, &requests).expect("serves")
        };
        // A one-minute p95 budget no tiny trace can violate.
        let governed = run(ControlPlan::Governed(SlaTarget::new(60_000.0, 0.80)));
        // The exact plan Governed normalizes to, minus the governor.
        let open = run(ControlPlan::ClosedLoop {
            planner: CutPlannerConfig {
                classes: vec![DeviceProfile::edge_gpu_cifar()],
                cloud: DeviceProfile::cloud_accelerator(),
                objective: Objective::Latency,
                feedback: None,
            },
            feedback: LinkFeedback::default(),
            wire: FeatureWire::F32,
            controller: None,
        });
        prop_assert_eq!(&governed.records, &open.records, "an idle governor leaked into the records");
        prop_assert_eq!(governed.stats.final_cuts, open.stats.final_cuts);
        prop_assert_eq!(governed.stats.bytes_to_cloud, open.stats.bytes_to_cloud);
        prop_assert_eq!(governed.stats.sla_violations, 0);
        prop_assert_eq!(governed.stats.governor_decisions, 0);
        let trajectory =
            governed.stats.control_trajectory.as_ref().expect("governed runs report their trajectory");
        prop_assert_eq!(trajectory.len(), 1, "no violation, no decision: only the initial point");
        prop_assert_eq!(open.stats.control_trajectory, None);
    }
}
