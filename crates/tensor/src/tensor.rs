//! The dense row-major `f32` tensor at the heart of the substrate.

use crate::error::TensorError;
use crate::rng::Rng;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, heap-allocated `f32` tensor.
///
/// The reproduction trains small CNNs, so the design favours simplicity over
/// zero-copy views: slicing a batch copies data. All arithmetic helpers check
/// shapes and panic with a descriptive message on mismatch (a mismatch is a
/// bug in layer code, not a runtime condition to recover from).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    // ---------------------------------------------------------------- ctors

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor { data: vec![0.0; shape.numel()], shape }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Tensor { data: vec![value; shape.numel()], shape }
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the shape's element count, or [`TensorError::InvalidShape`] for a
    /// degenerate shape.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims)?;
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch { expected: shape.numel(), got: data.len() });
        }
        Ok(Tensor { data, shape })
    }

    /// Tensor with i.i.d. normal entries `N(0, std²)`.
    pub fn randn(shape: impl Into<Shape>, std: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| rng.normal_with(0.0, std)).collect();
        Tensor { data, shape }
    }

    /// Tensor with i.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| rng.uniform_range(lo, hi)).collect();
        Tensor { data, shape }
    }

    // ------------------------------------------------------------ accessors

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    // -------------------------------------------------------------- reshape

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(mut self, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims)?;
        if shape.numel() != self.data.len() {
            return Err(TensorError::LengthMismatch { expected: shape.numel(), got: self.data.len() });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose2d(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose2d requires a matrix, got {}", self.shape);
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros([n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }

    // ------------------------------------------------------ batch utilities

    /// Copies rows `[start, end)` along axis 0 into a new tensor.
    ///
    /// For an `[N, ...]` tensor this extracts a sub-batch.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` or `end > dims()[0]`.
    pub fn slice_axis0(&self, start: usize, end: usize) -> Tensor {
        let n = self.shape.dim(0);
        assert!(start < end && end <= n, "invalid axis-0 slice [{start}, {end}) of {n}");
        let row = self.numel() / n;
        let data = self.data[start * row..end * row].to_vec();
        let mut dims = self.dims().to_vec();
        dims[0] = end - start;
        Tensor { data, shape: Shape::new(&dims).expect("valid slice shape") }
    }

    /// Gathers the given axis-0 indices into a new tensor (with repetition
    /// allowed). Used to materialise dataset subsets such as the hard-class
    /// training set.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or `indices` is empty.
    pub fn gather_axis0(&self, indices: &[usize]) -> Tensor {
        assert!(!indices.is_empty(), "gather_axis0 with no indices");
        let n = self.shape.dim(0);
        let row = self.numel() / n;
        let mut data = Vec::with_capacity(indices.len() * row);
        for &i in indices {
            assert!(i < n, "gather index {i} out of bounds for axis of size {n}");
            data.extend_from_slice(&self.data[i * row..(i + 1) * row]);
        }
        let mut dims = self.dims().to_vec();
        dims[0] = indices.len();
        Tensor { data, shape: Shape::new(&dims).expect("valid gather shape") }
    }

    /// Concatenates tensors along axis 0. All shapes must agree on the other
    /// axes.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or trailing shapes disagree.
    pub fn concat_axis0(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_axis0 with no inputs");
        let tail = &parts[0].dims()[1..];
        let mut total = 0;
        for p in parts {
            assert_eq!(&p.dims()[1..], tail, "concat_axis0 shape mismatch");
            total += p.dims()[0];
        }
        let mut data = Vec::with_capacity(total * tail.iter().product::<usize>());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        let mut dims = vec![total];
        dims.extend_from_slice(tail);
        Tensor { data, shape: Shape::new(&dims).expect("valid concat shape") }
    }

    /// Concatenates two `[N, C, H, W]` tensors along the channel axis.
    /// Used by the MEANet `Concat` feature-merge mode.
    ///
    /// # Panics
    ///
    /// Panics if the tensors are not 4-D or disagree on `N`, `H` or `W`.
    pub fn concat_channels(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.shape.rank(), 4, "concat_channels expects NCHW, got {}", a.shape);
        assert_eq!(b.shape.rank(), 4, "concat_channels expects NCHW, got {}", b.shape);
        let (n, ca, h, w) = (a.dims()[0], a.dims()[1], a.dims()[2], a.dims()[3]);
        let cb = b.dims()[1];
        assert_eq!(
            (n, h, w),
            (b.dims()[0], b.dims()[2], b.dims()[3]),
            "concat_channels N/H/W mismatch: {} vs {}",
            a.shape,
            b.shape
        );
        let mut out = Tensor::zeros([n, ca + cb, h, w]);
        let plane = h * w;
        for i in 0..n {
            let dst = &mut out.data[i * (ca + cb) * plane..(i + 1) * (ca + cb) * plane];
            dst[..ca * plane].copy_from_slice(&a.data[i * ca * plane..(i + 1) * ca * plane]);
            dst[ca * plane..].copy_from_slice(&b.data[i * cb * plane..(i + 1) * cb * plane]);
        }
        out
    }

    // ------------------------------------------------------------ pointwise

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Tensor {
        Tensor { data: self.data.iter().map(|&x| f(x)).collect::<Vec<_>>(), shape: self.shape.clone() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise sum, returning a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch: {} vs {}", self.shape, other.shape);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Element-wise `self += alpha * other` (AXPY).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch: {} vs {}", self.shape, other.shape);
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Element-wise combination of two equally shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_with(&self, other: &Tensor, mut f: impl FnMut(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_with shape mismatch: {} vs {}", self.shape, other.shape);
        Tensor {
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Sets every element to zero (gradient reset).
    pub fn fill(&mut self, value: f32) {
        for x in &mut self.data {
            *x = value;
        }
    }

    // ----------------------------------------------------------- reductions

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        self.sum() / self.numel() as f64
    }

    /// Maximum element.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element in each row of a 2-D tensor (ties go to
    /// the first occurrence).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.rank(), 2, "argmax_rows requires a matrix, got {}", self.shape);
        let n = self.shape.dim(1);
        self.data
            .chunks_exact(n)
            .map(|row| {
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// The `i`-th row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.shape.rank(), 2, "row() requires a matrix, got {}", self.shape);
        let n = self.shape.dim(1);
        &self.data[i * n..(i + 1) * n]
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        let preview: Vec<String> = self.data.iter().take(8).map(|x| format!("{x:.4}")).collect();
        write!(f, "{}", preview.join(", "))?;
        if self.numel() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]),
            Err(TensorError::LengthMismatch { expected: 6, got: 5 })
        ));
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(&[0, 0]), 1.0);
        assert_eq!(i.at(&[1, 2]), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.clone().reshape(&[4]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let tt = t.transpose2d().transpose2d();
        assert_eq!(t, tt);
        assert_eq!(t.transpose2d().at(&[2, 1]), t.at(&[1, 2]));
    }

    #[test]
    fn slice_and_gather_axis0() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[4, 3]).unwrap();
        let s = t.slice_axis0(1, 3);
        assert_eq!(s.dims(), &[2, 3]);
        assert_eq!(s.as_slice(), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let g = t.gather_axis0(&[3, 0, 3]);
        assert_eq!(g.dims(), &[3, 3]);
        assert_eq!(g.row(0), &[9.0, 10.0, 11.0]);
        assert_eq!(g.row(1), &[0.0, 1.0, 2.0]);
        assert_eq!(g.row(2), &[9.0, 10.0, 11.0]);
    }

    #[test]
    fn concat_axis0_stacks() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).unwrap();
        let c = Tensor::concat_axis0(&[&a, &b]);
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_channels_interleaves_per_image() {
        // two images, 1 channel each side, 1x2 spatial
        let a = Tensor::from_vec(vec![1.0, 2.0, 5.0, 6.0], &[2, 1, 1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 7.0, 8.0], &[2, 1, 1, 2]).unwrap();
        let c = Tensor::concat_channels(&a, &b);
        assert_eq!(c.dims(), &[2, 2, 1, 2]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn argmax_rows_ties_to_first() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.1, 0.2, 0.2], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows(), vec![1, 1]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::ones([2, 2]);
        let b = Tensor::full([2, 2], 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[2.0; 4]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[4.0; 4]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_assign_panics_on_mismatch() {
        let mut a = Tensor::ones([2, 2]);
        let b = Tensor::ones([4]);
        a.add_assign(&b);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = Rng::new(10);
        let mut r2 = Rng::new(10);
        let a = Tensor::randn([3, 3], 1.0, &mut r1);
        let b = Tensor::randn([3, 3], 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::zeros([2, 2]);
        assert!(t.to_string().contains("Tensor"));
    }
}
