//! Error type shared by fallible tensor constructors and reshapes.

use std::error::Error;
use std::fmt;

/// Error returned by fallible tensor operations.
///
/// Hot-path kernels (matmul, conv) panic on shape mismatch instead, because a
/// mismatch there is a programming error in the layer code, not a recoverable
/// condition; constructors and user-facing reshapes return this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data.
    LengthMismatch {
        /// Elements implied by the requested shape.
        expected: usize,
        /// Elements actually provided.
        got: usize,
    },
    /// Two tensors were expected to share a shape but do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// A shape was structurally invalid (for example, zero dimensions).
    InvalidShape {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, got } => {
                write!(f, "shape expects {expected} elements but {got} were provided")
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch between {left:?} and {right:?}")
            }
            TensorError::InvalidShape { reason } => write!(f, "invalid shape: {reason}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::LengthMismatch { expected: 4, got: 3 };
        assert!(e.to_string().contains("4"));
        assert!(e.to_string().contains("3"));
        let e = TensorError::ShapeMismatch { left: vec![2, 2], right: vec![3] };
        assert!(e.to_string().contains("[2, 2]"));
        let e = TensorError::InvalidShape { reason: "empty".into() };
        assert!(e.to_string().contains("empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
