//! Multi-device fleet simulation: many edge devices sharing one cloud.
//!
//! The paper's introduction motivates early exits with exactly this
//! pressure: *"the large amount of IoT devices would put significant
//! pressure on the cloud server to respond"*. This module quantifies that
//! claim. Each device runs the [`crate::sim`] pipeline (its own edge GPU
//! and radio), while the cloud is a shared pool of `cloud_servers` FIFO
//! execution slots. Offloaded jobs queue when all slots are busy, so cloud
//! latency degrades as the fleet grows or the offload fraction β rises —
//! and recovers when MEANet keeps more inference at the edge.
//!
//! The simulation is a deterministic virtual-clock model: identical inputs
//! produce identical reports.

use crate::device::DeviceProfile;
use crate::energy::EnergyReport;
use crate::network::NetworkLink;
use meanet::ExitPoint;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Static parameters of a fleet simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Edge device profile (all devices identical).
    pub edge: DeviceProfile,
    /// Cloud device profile (per server slot).
    pub cloud: DeviceProfile,
    /// Radio link per device (independent radios).
    pub link: NetworkLink,
    /// Parallel execution slots at the cloud.
    pub cloud_servers: usize,
    /// MACs of the main block (every instance pays this at its device).
    pub macs_main: u64,
    /// Extra MACs of the adaptive + extension path.
    pub macs_extension_extra: u64,
    /// MACs of the cloud network per offloaded instance.
    pub macs_cloud: u64,
    /// Upload payload bytes per offloaded instance.
    pub payload_bytes: u64,
    /// Per-device inter-arrival time of frames (s).
    pub arrival_interval_s: f64,
}

/// Aggregate results of a fleet simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Number of devices simulated.
    pub devices: usize,
    /// Total instances across the fleet.
    pub instances: usize,
    /// Mean end-to-end latency across all instances (s).
    pub mean_latency_s: f64,
    /// Median latency (s).
    pub p50_latency_s: f64,
    /// 95th-percentile latency (s).
    pub p95_latency_s: f64,
    /// 99th-percentile latency (s).
    pub p99_latency_s: f64,
    /// Completion time of the last instance (s).
    pub makespan_s: f64,
    /// Mean time offloaded jobs spent waiting for a free cloud slot (s).
    pub cloud_wait_mean_s: f64,
    /// Worst-case cloud queueing delay (s).
    pub cloud_wait_max_s: f64,
    /// Busy time across slots divided by `servers × makespan`.
    pub cloud_utilization: f64,
    /// Fleet-wide edge energy (compute + communication).
    pub energy: EnergyReport,
}

/// A job that reached the cloud ingress queue.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CloudJob {
    device: usize,
    index: usize,
    ready_s: f64,
}

/// Runs the fleet simulation with the fixed per-device frame interval of
/// `cfg.arrival_interval_s`. `routes[d]` is the per-instance exit sequence
/// of device `d` (e.g. from Algorithm-2 records); devices may have
/// different instance counts.
///
/// # Panics
///
/// Panics if `routes` is empty, any device has no instances, or
/// `cfg.cloud_servers == 0`.
pub fn simulate_fleet(cfg: &FleetConfig, routes: &[Vec<ExitPoint>]) -> FleetReport {
    let arrivals: Vec<Vec<f64>> =
        routes.iter().map(|r| (0..r.len()).map(|i| i as f64 * cfg.arrival_interval_s).collect()).collect();
    simulate_fleet_with_arrivals(cfg, routes, &arrivals)
}

/// [`simulate_fleet`] with explicit per-device arrival times (e.g. from
/// [`crate::traces::ArrivalModel`]): `arrivals[d][i]` is when instance `i`
/// reaches device `d`. `cfg.arrival_interval_s` is ignored.
///
/// # Panics
///
/// Panics if `routes` is empty, any device has no instances,
/// `cfg.cloud_servers == 0`, or any arrival sequence has the wrong length
/// or decreases.
pub fn simulate_fleet_with_arrivals(
    cfg: &FleetConfig,
    routes: &[Vec<ExitPoint>],
    arrivals: &[Vec<f64>],
) -> FleetReport {
    assert!(!routes.is_empty(), "no devices to simulate");
    assert!(routes.iter().all(|r| !r.is_empty()), "every device needs at least one instance");
    assert!(cfg.cloud_servers > 0, "need at least one cloud server");
    assert_eq!(routes.len(), arrivals.len(), "one arrival trace per device");
    for (d, (r, a)) in routes.iter().zip(arrivals).enumerate() {
        assert_eq!(r.len(), a.len(), "device {d}: {} routes but {} arrivals", r.len(), a.len());
        assert!(a.windows(2).all(|w| w[1] >= w[0]), "device {d}: arrival times must be non-decreasing");
    }

    let t_main = cfg.edge.latency_s(cfg.macs_main);
    let t_ext = cfg.edge.latency_s(cfg.macs_extension_extra);
    let t_up = cfg.link.upload_time_s(cfg.payload_bytes);
    let t_cloud = cfg.cloud.latency_s(cfg.macs_cloud);
    let half_rtt = cfg.link.rtt_s / 2.0;

    let mut energy = EnergyReport::default();
    // completion[d][i]: set for edge exits now, cloud exits after queueing.
    let mut completion: Vec<Vec<f64>> = routes.iter().map(|r| vec![0.0; r.len()]).collect();
    let mut cloud_jobs: Vec<CloudJob> = Vec::new();

    for (d, dev_routes) in routes.iter().enumerate() {
        let mut edge_free = 0.0f64;
        let mut radio_free = 0.0f64;
        for (i, route) in dev_routes.iter().enumerate() {
            let arrival = arrivals[d][i];
            let start_edge = edge_free.max(arrival);
            let done_main = start_edge + t_main;
            energy.compute_j += cfg.edge.compute_energy_j(cfg.macs_main);
            match route {
                ExitPoint::Main => {
                    edge_free = done_main;
                    completion[d][i] = done_main;
                }
                ExitPoint::Extension => {
                    let done = done_main + t_ext;
                    energy.compute_j += cfg.edge.compute_energy_j(cfg.macs_extension_extra);
                    edge_free = done;
                    completion[d][i] = done;
                }
                ExitPoint::Cloud => {
                    edge_free = done_main;
                    let start_up = radio_free.max(done_main);
                    let uploaded = start_up + t_up;
                    radio_free = uploaded;
                    energy.communication_j += cfg.link.upload_energy_j(cfg.payload_bytes);
                    cloud_jobs.push(CloudJob { device: d, index: i, ready_s: uploaded + half_rtt });
                }
            }
        }
    }

    // Shared cloud: jobs are served FIFO in ready order across the fleet.
    cloud_jobs.sort_by(|a, b| {
        a.ready_s
            .partial_cmp(&b.ready_s)
            .expect("finite times")
            .then(a.device.cmp(&b.device))
            .then(a.index.cmp(&b.index))
    });
    let mut servers: BinaryHeap<Reverse<OrderedF64>> =
        (0..cfg.cloud_servers).map(|_| Reverse(OrderedF64(0.0))).collect();
    let mut wait_sum = 0.0f64;
    let mut wait_max = 0.0f64;
    let mut busy = 0.0f64;
    let n_cloud = cloud_jobs.len();
    for job in &cloud_jobs {
        let Reverse(OrderedF64(free)) = servers.pop().expect("non-empty server pool");
        let start = free.max(job.ready_s);
        let wait = start - job.ready_s;
        wait_sum += wait;
        wait_max = wait_max.max(wait);
        let finish = start + t_cloud;
        busy += t_cloud;
        servers.push(Reverse(OrderedF64(finish)));
        completion[job.device][job.index] = finish + half_rtt;
    }

    let mut latencies: Vec<f64> = Vec::new();
    let mut makespan = 0.0f64;
    for d in 0..routes.len() {
        for i in 0..routes[d].len() {
            latencies.push(completion[d][i] - arrivals[d][i]);
            makespan = makespan.max(completion[d][i]);
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let pct = |p: f64| latencies[((latencies.len() as f64 * p) as usize).min(latencies.len() - 1)];
    let instances = latencies.len();

    FleetReport {
        devices: routes.len(),
        instances,
        mean_latency_s: latencies.iter().sum::<f64>() / instances as f64,
        p50_latency_s: pct(0.50),
        p95_latency_s: pct(0.95),
        p99_latency_s: pct(0.99),
        makespan_s: makespan,
        cloud_wait_mean_s: if n_cloud == 0 { 0.0 } else { wait_sum / n_cloud as f64 },
        cloud_wait_max_s: wait_max,
        cloud_utilization: if makespan > 0.0 { busy / (cfg.cloud_servers as f64 * makespan) } else { 0.0 },
        energy,
    }
}

/// Total-order wrapper for finite f64 times in the server heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite simulation times")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, SimConfig};

    fn cfg(servers: usize) -> FleetConfig {
        FleetConfig {
            edge: DeviceProfile::new("edge", 10.0, 1e9),
            cloud: DeviceProfile::new("cloud", 100.0, 1e10),
            link: NetworkLink::wifi(8.0).with_rtt(0.01),
            cloud_servers: servers,
            macs_main: 1_000_000,
            macs_extension_extra: 500_000,
            macs_cloud: 10_000_000,
            payload_bytes: 1000,
            arrival_interval_s: 0.002,
        }
    }

    fn mixed_routes(n: usize) -> Vec<ExitPoint> {
        (0..n)
            .map(|i| match i % 3 {
                0 => ExitPoint::Main,
                1 => ExitPoint::Extension,
                _ => ExitPoint::Cloud,
            })
            .collect()
    }

    #[test]
    fn single_device_matches_pipeline_simulator() {
        // With one device and one cloud server, the fleet model must agree
        // with the single-pipeline simulator (same FIFO disciplines).
        let f = cfg(1);
        let routes = mixed_routes(12);
        let fleet = simulate_fleet(&f, std::slice::from_ref(&routes));
        let single = simulate(
            &SimConfig {
                edge: f.edge.clone(),
                cloud: f.cloud.clone(),
                link: f.link,
                macs_main: f.macs_main,
                macs_extension_extra: f.macs_extension_extra,
                macs_cloud: f.macs_cloud,
                payload_bytes: f.payload_bytes,
                arrival_interval_s: f.arrival_interval_s,
            },
            &routes,
        );
        assert!((fleet.mean_latency_s - single.mean_latency_s).abs() < 1e-12);
        assert!((fleet.makespan_s - single.makespan_s).abs() < 1e-12);
        assert!((fleet.energy.total_j() - single.energy.total_j()).abs() < 1e-12);
    }

    #[test]
    fn growing_the_fleet_congests_the_cloud() {
        let f = cfg(1);
        let routes_small: Vec<Vec<ExitPoint>> = (0..2).map(|_| vec![ExitPoint::Cloud; 10]).collect();
        let routes_big: Vec<Vec<ExitPoint>> = (0..16).map(|_| vec![ExitPoint::Cloud; 10]).collect();
        let small = simulate_fleet(&f, &routes_small);
        let big = simulate_fleet(&f, &routes_big);
        assert!(
            big.cloud_wait_mean_s > small.cloud_wait_mean_s,
            "16 devices must queue more than 2: {} vs {}",
            big.cloud_wait_mean_s,
            small.cloud_wait_mean_s
        );
        assert!(big.p95_latency_s > small.p95_latency_s);
    }

    #[test]
    fn more_servers_relieve_contention() {
        let routes: Vec<Vec<ExitPoint>> = (0..12).map(|_| vec![ExitPoint::Cloud; 8]).collect();
        let one = simulate_fleet(&cfg(1), &routes);
        let eight = simulate_fleet(&cfg(8), &routes);
        assert!(eight.cloud_wait_mean_s < one.cloud_wait_mean_s);
        assert!(eight.mean_latency_s < one.mean_latency_s);
    }

    #[test]
    fn edge_exits_are_immune_to_fleet_size() {
        let routes_a: Vec<Vec<ExitPoint>> = (0..1).map(|_| vec![ExitPoint::Main; 10]).collect();
        let routes_b: Vec<Vec<ExitPoint>> = (0..32).map(|_| vec![ExitPoint::Main; 10]).collect();
        let a = simulate_fleet(&cfg(1), &routes_a);
        let b = simulate_fleet(&cfg(1), &routes_b);
        assert!(
            (a.mean_latency_s - b.mean_latency_s).abs() < 1e-12,
            "edge-only latency must not depend on fleet size"
        );
        assert_eq!(b.cloud_utilization, 0.0);
        assert_eq!(b.cloud_wait_max_s, 0.0);
    }

    #[test]
    fn early_exits_relieve_the_cloud() {
        // Same fleet, two policies: offload everything vs offload a third.
        let all_cloud: Vec<Vec<ExitPoint>> = (0..8).map(|_| vec![ExitPoint::Cloud; 9]).collect();
        let meanet: Vec<Vec<ExitPoint>> = (0..8).map(|_| mixed_routes(9)).collect();
        let heavy = simulate_fleet(&cfg(1), &all_cloud);
        let light = simulate_fleet(&cfg(1), &meanet);
        assert!(light.cloud_wait_mean_s < heavy.cloud_wait_mean_s);
        assert!(light.mean_latency_s < heavy.mean_latency_s);
        assert!(light.energy.communication_j < heavy.energy.communication_j);
    }

    #[test]
    fn deterministic_across_runs() {
        let routes: Vec<Vec<ExitPoint>> = (0..5).map(|d| mixed_routes(7 + d)).collect();
        let a = simulate_fleet(&cfg(2), &routes);
        let b = simulate_fleet(&cfg(2), &routes);
        assert_eq!(a, b);
    }

    #[test]
    fn percentiles_are_ordered() {
        let routes: Vec<Vec<ExitPoint>> = (0..6).map(|_| mixed_routes(20)).collect();
        let r = simulate_fleet(&cfg(2), &routes);
        assert!(r.p50_latency_s <= r.p95_latency_s);
        assert!(r.p95_latency_s <= r.p99_latency_s);
        assert!(r.p99_latency_s <= r.makespan_s + 1e-12);
        assert!(r.cloud_utilization > 0.0 && r.cloud_utilization <= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one cloud server")]
    fn zero_servers_rejected() {
        let mut f = cfg(1);
        f.cloud_servers = 0;
        let _ = simulate_fleet(&f, &[vec![ExitPoint::Main]]);
    }

    #[test]
    fn explicit_uniform_arrivals_match_the_interval_path() {
        let f = cfg(2);
        let routes: Vec<Vec<ExitPoint>> = (0..3).map(|_| mixed_routes(9)).collect();
        let arrivals: Vec<Vec<f64>> =
            routes.iter().map(|r| (0..r.len()).map(|i| i as f64 * f.arrival_interval_s).collect()).collect();
        let a = simulate_fleet(&f, &routes);
        let b = simulate_fleet_with_arrivals(&f, &routes, &arrivals);
        assert_eq!(a, b);
    }

    #[test]
    fn bursty_arrivals_inflate_tail_latency_at_equal_mean_rate() {
        use crate::traces::ArrivalModel;
        use mea_tensor::Rng;
        let f = cfg(1);
        let n = 60;
        let routes: Vec<Vec<ExitPoint>> = (0..4).map(|_| vec![ExitPoint::Cloud; n]).collect();
        let uniform = ArrivalModel::Uniform { interval_s: 0.004 };
        // Same mean interval (3·0 + 0.016)/4 = 0.004 s, but 4-deep bursts.
        let bursty = ArrivalModel::Bursty { burst_len: 4, intra_s: 0.0, gap_s: 0.016 };
        assert!((uniform.mean_interval_s() - bursty.mean_interval_s()).abs() < 1e-12);
        let mut rng = Rng::new(0);
        let ua: Vec<Vec<f64>> = (0..4).map(|_| uniform.generate(n, &mut rng)).collect();
        let ba: Vec<Vec<f64>> = (0..4).map(|_| bursty.generate(n, &mut rng)).collect();
        let u = simulate_fleet_with_arrivals(&f, &routes, &ua);
        let b = simulate_fleet_with_arrivals(&f, &routes, &ba);
        assert!(
            b.p95_latency_s > u.p95_latency_s,
            "bursts must hurt the tail: {} vs {}",
            b.p95_latency_s,
            u.p95_latency_s
        );
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_arrivals_rejected() {
        let f = cfg(1);
        let _ = simulate_fleet_with_arrivals(&f, &[vec![ExitPoint::Main; 2]], &[vec![1.0, 0.5]]);
    }
}
