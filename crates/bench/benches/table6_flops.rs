//! Table VI: MACs and parameters, fixed vs trained, at true paper scale.
//! Anchors: ResNet32 backbone ≈ 0.48M params; MobileNetV2 fixed ≈ 3.5M;
//! ResNet18 fixed ≈ 11.2M (+0.5M exit).

use mea_bench::experiments::tables;

fn main() {
    let (table, rows) = tables::table6_flops();
    println!("== Table VI: computations and parameters (millions) ==\n{table}");
    let find = |s: &str| rows.iter().find(|r| r.label.contains(s)).expect("row");
    let r32a = find("ResNet32 A");
    // Model A's fixed side = stem+stage1 (~0.03M) plus its deliberately
    // spatial fresh exit (AvgPool 2x2 -> Flatten -> FC 4096x100 ~= 0.41M;
    // see MeaNet::from_backbone). The MACs split is the meaningful frozen
    // cost: it must be a small fraction of model B's full-backbone MACs.
    assert!((0.3e6..0.6e6).contains(&(r32a.fixed_params as f64)), "ResNet32A fixed params");
    let r32b = find("ResNet32 B");
    assert!(
        r32a.fixed_macs * 2 < r32b.fixed_macs,
        "model A must freeze well under half of model B's per-image MACs"
    );
    let mob = find("MobileNetV2");
    assert!((3.0e6..4.2e6).contains(&(mob.fixed_params as f64)), "MobileNetV2 fixed params");
    // The generic adaptive block mirrors every backbone segment with dense
    // 3x3 convs, so MobileNet's 320->1280 expansion segment alone costs
    // ~3.7M trained params — far above the paper's ~1.1M claim for this
    // row. Upper-bound the current defect (lightening is tracked in
    // ROADMAP.md; the planned ~1.1M result still clears the sanity floor).
    assert!(
        (0.5e6..8.0e6).contains(&(mob.trained_params as f64)),
        "MobileNetV2 B trained params outside sanity bounds"
    );
    let r18 = find("ResNet18");
    assert!((10.5e6..12.5e6).contains(&(r18.fixed_params as f64)), "ResNet18 fixed params");
    assert!(r18.trained_params > 5_000_000, "ResNet18 B extension is parameter-heavy");
}
