//! Tensor shapes: dimension lists with element counting and stride helpers.

use crate::error::TensorError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a [`crate::Tensor`]: an ordered list of dimension sizes.
///
/// Shapes are cheap to clone and compare. Dimension sizes of zero are
/// rejected by [`Shape::new`] — empty tensors never appear in the MEANet
/// pipeline and permitting them would push degenerate-case handling into
/// every kernel.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension sizes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if `dims` is empty or any
    /// dimension is zero.
    pub fn new(dims: &[usize]) -> Result<Self, TensorError> {
        if dims.is_empty() {
            return Err(TensorError::InvalidShape { reason: "shape has no dimensions".into() });
        }
        if dims.contains(&0) {
            return Err(TensorError::InvalidShape { reason: format!("zero-sized dimension in {dims:?}") });
        }
        Ok(Shape(dims.to_vec()))
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank {} != shape rank {}", index.len(), self.rank());
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &s)) in index.iter().zip(strides.iter()).enumerate() {
            assert!(i < self.0[axis], "index {i} out of bounds for axis {axis} of size {}", self.0[axis]);
            off += i * s;
        }
        off
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims).expect("invalid shape")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims).expect("invalid shape")
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims).expect("invalid shape")
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]).unwrap();
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(Shape::new(&[]).is_err());
        assert!(Shape::new(&[2, 0, 3]).is_err());
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]).unwrap();
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_matches_manual_computation() {
        let s = Shape::new(&[2, 3, 4]).unwrap();
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_panics_out_of_bounds() {
        let s = Shape::new(&[2, 2]).unwrap();
        s.offset(&[2, 0]);
    }

    #[test]
    fn display_shows_dims() {
        let s = Shape::from([4, 5]);
        assert_eq!(s.to_string(), "[4, 5]");
    }
}
