//! Cloud-offload policies.
//!
//! The paper's Algorithm 2 offloads an instance when its main-exit entropy
//! exceeds a threshold picked from the validation range `(µ_correct,
//! µ_wrong)` (§III-C). That rule is one member of a family: this module
//! abstracts the decision so alternatives can be compared under identical
//! routing (the `ablation_policies` bench):
//!
//! * [`OffloadPolicy::EntropyThreshold`] — the paper's rule;
//! * [`OffloadPolicy::ConfidenceMargin`] — offload when the gap between
//!   the top-1 and top-2 softmax scores is small (a margin-based
//!   uncertainty measure, common in active learning);
//! * [`OffloadPolicy::Budgeted`] — offload *exactly* a target fraction β,
//!   by thresholding entropy at the validation-set quantile. This is what
//!   a deployment with a communication budget actually wants: the paper's
//!   threshold only controls β implicitly;
//! * [`OffloadPolicy::Never`] / [`OffloadPolicy::Always`] — the edge-only
//!   and cloud-only endpoints of Figs. 7–8.

use serde::{Deserialize, Serialize};

/// A rule deciding, from main-exit statistics, whether an instance is
/// "complex" and should be classified by the cloud.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OffloadPolicy {
    /// Offload when prediction entropy exceeds the threshold (the paper's
    /// rule; threshold chosen in `(µ_correct, µ_wrong)`).
    EntropyThreshold(f32),
    /// Offload when `p(top1) − p(top2)` falls below the margin.
    ConfidenceMargin(f32),
    /// Offload when entropy exceeds a quantile threshold calibrated with
    /// [`OffloadPolicy::budgeted_from_validation`] to hit a target β.
    Budgeted {
        /// The calibrated entropy threshold.
        threshold: f32,
    },
    /// Edge-only: never offload.
    Never,
    /// Cloud-only: always offload.
    Always,
}

impl OffloadPolicy {
    /// Calibrates a [`OffloadPolicy::Budgeted`] policy so that a fraction
    /// `beta` of instances with the *highest* entropies is offloaded,
    /// using validation-set entropies as the reference distribution.
    ///
    /// # Panics
    ///
    /// Panics if `entropies` is empty or `beta` is outside `[0, 1]`.
    pub fn budgeted_from_validation(entropies: &[f32], beta: f64) -> OffloadPolicy {
        assert!(!entropies.is_empty(), "cannot calibrate a budget on no data");
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1], got {beta}");
        if beta <= 0.0 {
            return OffloadPolicy::Budgeted { threshold: f32::INFINITY };
        }
        if beta >= 1.0 {
            return OffloadPolicy::Budgeted { threshold: f32::NEG_INFINITY };
        }
        let mut sorted: Vec<f32> = entropies.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite entropies"));
        // Instances strictly above the (1-beta) quantile are offloaded.
        let idx = (((sorted.len() as f64) * (1.0 - beta)).ceil() as usize).min(sorted.len()) - 1;
        OffloadPolicy::Budgeted { threshold: sorted[idx] }
    }

    /// Decides whether to offload an instance given its main-exit softmax
    /// row and entropy.
    ///
    /// # Panics
    ///
    /// Panics if `probs` has fewer than two classes (a margin needs two).
    pub fn should_offload(&self, probs: &[f32], entropy: f32) -> bool {
        match *self {
            OffloadPolicy::EntropyThreshold(t) => entropy > t,
            OffloadPolicy::ConfidenceMargin(m) => {
                assert!(probs.len() >= 2, "margin policy needs at least two classes");
                let (top1, top2) = top_two(probs);
                (top1 - top2) < m
            }
            OffloadPolicy::Budgeted { threshold } => entropy > threshold,
            OffloadPolicy::Never => false,
            OffloadPolicy::Always => true,
        }
    }

    /// True when the policy can never offload (lets callers skip loading a
    /// cloud model).
    pub fn is_edge_only(&self) -> bool {
        match *self {
            OffloadPolicy::Never => true,
            OffloadPolicy::EntropyThreshold(t) => t == f32::INFINITY,
            OffloadPolicy::Budgeted { threshold } => threshold == f32::INFINITY,
            _ => false,
        }
    }
}

/// The two largest values of a slice.
fn top_two(xs: &[f32]) -> (f32, f32) {
    let mut top1 = f32::MIN;
    let mut top2 = f32::MIN;
    for &x in xs {
        if x > top1 {
            top2 = top1;
            top1 = x;
        } else if x > top2 {
            top2 = x;
        }
    }
    (top1, top2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_threshold_matches_paper_rule() {
        let p = OffloadPolicy::EntropyThreshold(1.0);
        assert!(p.should_offload(&[0.5, 0.5], 1.5));
        assert!(!p.should_offload(&[0.9, 0.1], 0.3));
    }

    #[test]
    fn margin_fires_on_close_calls() {
        let p = OffloadPolicy::ConfidenceMargin(0.2);
        assert!(p.should_offload(&[0.41, 0.39, 0.2], 0.0), "top-2 gap 0.02 < 0.2");
        assert!(!p.should_offload(&[0.8, 0.1, 0.1], 0.0), "top-2 gap 0.7 > 0.2");
    }

    #[test]
    fn wider_margin_offloads_superset() {
        let rows = [[0.6f32, 0.4], [0.55, 0.45], [0.9, 0.1]];
        let narrow = OffloadPolicy::ConfidenceMargin(0.15);
        let wide = OffloadPolicy::ConfidenceMargin(0.5);
        for row in &rows {
            if narrow.should_offload(row, 0.0) {
                assert!(wide.should_offload(row, 0.0), "wider margin must contain the narrow set");
            }
        }
    }

    #[test]
    fn budget_hits_target_fraction_on_reference_distribution() {
        let entropies: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        for beta in [0.1, 0.25, 0.5, 0.9] {
            let p = OffloadPolicy::budgeted_from_validation(&entropies, beta);
            let offloaded = entropies.iter().filter(|&&e| p.should_offload(&[1.0, 0.0], e)).count();
            let got = offloaded as f64 / entropies.len() as f64;
            assert!((got - beta).abs() <= 0.02, "beta {beta}: offloaded {got} (threshold {p:?})");
        }
    }

    #[test]
    fn budget_extremes() {
        let entropies = vec![0.1, 0.5, 0.9];
        let none = OffloadPolicy::budgeted_from_validation(&entropies, 0.0);
        assert!(entropies.iter().all(|&e| !none.should_offload(&[1.0, 0.0], e)));
        assert!(none.is_edge_only());
        let all = OffloadPolicy::budgeted_from_validation(&entropies, 1.0);
        assert!(entropies.iter().all(|&e| all.should_offload(&[1.0, 0.0], e)));
    }

    #[test]
    fn never_and_always() {
        assert!(!OffloadPolicy::Never.should_offload(&[0.5, 0.5], 100.0));
        assert!(OffloadPolicy::Always.should_offload(&[1.0, 0.0], 0.0));
        assert!(OffloadPolicy::Never.is_edge_only());
        assert!(!OffloadPolicy::Always.is_edge_only());
    }

    #[test]
    fn top_two_handles_duplicates() {
        assert_eq!(top_two(&[0.5, 0.5]), (0.5, 0.5));
        assert_eq!(top_two(&[0.7, 0.1, 0.2]), (0.7, 0.2));
    }
}
