//! Offload payloads: what actually crosses the edge→cloud link.
//!
//! The paper compares sending **raw images** (pixels, 1 byte per channel
//! sample — how it sizes CIFAR at 32·32·3 bytes) against sending
//! **intermediate features** (f32 maps, which for small images are *larger*
//! than the raw data — the paper's argument for sending raw CIFAR images).
//!
//! A compact binary codec (length-prefixed shape + little-endian payload)
//! over [`bytes`] makes the transfer concrete for the threaded simulator.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mea_quant::{wire, QTensor, QuantParams};
use mea_tensor::Tensor;

/// A payload travelling from the edge to the cloud.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A raw image, quantised to 1 byte per sample (as captured by the
    /// sensor; this is how the paper sizes communication).
    RawImage {
        /// Image tensor `[C, H, W]` (or a batch `[N, C, H, W]`).
        image: Tensor,
    },
    /// Intermediate feature maps in `f32`.
    Features {
        /// Feature tensor.
        features: Tensor,
    },
    /// Intermediate feature maps quantised to int8 through the `mea-quant`
    /// wire codec: 1 byte per element plus a small parameter header, so a
    /// deep-cut activation can undercut even the raw-image upload — the
    /// answer to the paper's "f32 features are bigger than small images"
    /// objection to sending features.
    QuantFeatures {
        /// Quantised feature tensor.
        features: QTensor,
    },
}

impl Payload {
    /// Quantises an f32 feature tensor onto the int8 wire grid (affine
    /// per-tensor parameters from the tensor's own range).
    pub fn quantize_features(features: &Tensor) -> Payload {
        let params = QuantParams::affine_from_range(features.min(), features.max());
        Payload::QuantFeatures { features: QTensor::quantize(features, params) }
    }

    /// Size on the wire in bytes: 1 byte/sample for raw images, 4 for f32
    /// features, plus the shape header; quantised features carry the
    /// `mea_quant::wire` frame (1 byte/element plus parameter header).
    pub fn wire_size_bytes(&self) -> u64 {
        match self {
            Payload::RawImage { image } => header_len(image) + image.numel() as u64,
            Payload::Features { features } => header_len(features) + 4 * features.numel() as u64,
            Payload::QuantFeatures { features } => 1 + wire::encoded_len(features),
        }
    }

    /// Encodes into a byte buffer (tag, rank, dims, data).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size_bytes() as usize + 1);
        match self {
            Payload::RawImage { image } => {
                buf.put_u8(0);
                put_header(&mut buf, image);
                // Quantise [-2, 2] → u8, mirroring a sensor's 8-bit output.
                for &v in image.as_slice() {
                    let q = ((v + 2.0) / 4.0 * 255.0).clamp(0.0, 255.0) as u8;
                    buf.put_u8(q);
                }
            }
            Payload::Features { features } => {
                buf.put_u8(1);
                put_header(&mut buf, features);
                for &v in features.as_slice() {
                    buf.put_f32_le(v);
                }
            }
            Payload::QuantFeatures { features } => {
                buf.put_u8(2);
                let mut frame = Vec::new();
                wire::encode_into(features, &mut frame);
                buf.put_slice(&frame);
            }
        }
        buf.freeze()
    }

    /// Decodes a payload produced by [`Payload::encode`].
    ///
    /// # Panics
    ///
    /// Panics on a malformed buffer (wrong tag, truncated data).
    pub fn decode(mut buf: Bytes) -> Payload {
        let tag = buf.get_u8();
        if tag == 2 {
            let (features, _) = wire::decode(&buf);
            return Payload::QuantFeatures { features };
        }
        let rank = buf.get_u8() as usize;
        let dims: Vec<usize> = (0..rank).map(|_| buf.get_u32_le() as usize).collect();
        let numel: usize = dims.iter().product();
        match tag {
            0 => {
                let data: Vec<f32> = (0..numel).map(|_| (buf.get_u8() as f32 / 255.0) * 4.0 - 2.0).collect();
                Payload::RawImage { image: Tensor::from_vec(data, &dims).expect("decoded shape") }
            }
            1 => {
                let data: Vec<f32> = (0..numel).map(|_| buf.get_f32_le()).collect();
                Payload::Features { features: Tensor::from_vec(data, &dims).expect("decoded shape") }
            }
            t => panic!("unknown payload tag {t}"),
        }
    }

    /// The f32 tensor the cloud computes on, consuming the payload —
    /// dequantises int8 features, hands f32 variants over without a copy
    /// (the serving runtime's cloud workers decode every offloaded
    /// payload on the hot path).
    pub fn into_tensor(self) -> Tensor {
        match self {
            Payload::RawImage { image } => image,
            Payload::Features { features } => features,
            Payload::QuantFeatures { features } => features.dequantize(),
        }
    }

    /// The f32 tensor the cloud computes on. This clones (and for int8
    /// features dequantises) the payload — prefer
    /// [`Payload::into_tensor`] when the payload can be consumed.
    pub fn to_tensor(&self) -> Tensor {
        self.clone().into_tensor()
    }
}

fn put_header(buf: &mut BytesMut, t: &Tensor) {
    buf.put_u8(t.shape().rank() as u8);
    for &d in t.dims() {
        buf.put_u32_le(d as u32);
    }
}

fn header_len(t: &Tensor) -> u64 {
    2 + 4 * t.shape().rank() as u64
}

/// Wire size of a raw image with the paper's 1-byte-per-sample accounting
/// and *no* header — the exact quantity in Table VII (`32·32·3` bytes for
/// CIFAR, `224·224·3` for ImageNet).
pub fn paper_raw_image_bytes(c: usize, h: usize, w: usize) -> u64 {
    (c * h * w) as u64
}

/// Wire size of an f32 feature map without header (`4` bytes per element).
pub fn paper_feature_bytes(elems: usize) -> u64 {
    4 * elems as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_tensor::Rng;

    #[test]
    fn encode_decode_features_round_trips() {
        let mut rng = Rng::new(0);
        let t = Tensor::randn([2, 3, 4, 4], 1.0, &mut rng);
        let p = Payload::Features { features: t.clone() };
        let decoded = Payload::decode(p.encode());
        match decoded {
            Payload::Features { features } => assert_eq!(features, t),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn raw_image_round_trip_is_lossy_but_close() {
        let mut rng = Rng::new(1);
        let t = Tensor::randn([3, 8, 8], 0.5, &mut rng);
        let p = Payload::RawImage { image: t.clone() };
        let d = Payload::decode(p.encode()).into_tensor();
        assert_eq!(d.dims(), t.dims());
        for (a, b) in d.as_slice().iter().zip(t.as_slice()) {
            assert!((a - b).abs() < 4.0 / 255.0 + 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn quantised_features_round_trip_exactly_and_dequantise_close() {
        let mut rng = Rng::new(5);
        let t = Tensor::randn([1, 4, 4, 4], 1.0, &mut rng);
        let p = Payload::quantize_features(&t);
        let decoded = Payload::decode(p.encode());
        assert_eq!(decoded, p, "int8 wire round trip must be bit-exact");
        let d = decoded.into_tensor();
        assert_eq!(d.dims(), t.dims());
        let half_scale = match &p {
            Payload::QuantFeatures { features } => features.params().scale(0) / 2.0 + 1e-6,
            _ => unreachable!(),
        };
        for (a, b) in d.as_slice().iter().zip(t.as_slice()) {
            assert!((a - b).abs() <= half_scale, "{a} vs {b}");
        }
    }

    #[test]
    fn quantised_features_undercut_raw_image_at_a_bottleneck() {
        // The whole point of the int8 feature wire: a deep activation with
        // fewer elements than the image beats the 1-byte-per-pixel upload.
        let image = Tensor::zeros([3, 8, 8]); // 192 pixels
        let deep = Tensor::rand_uniform([32, 2, 2], -1.0, 1.0, &mut Rng::new(6)); // 128 elements
        let raw = Payload::RawImage { image };
        let q = Payload::quantize_features(&deep);
        assert!(
            q.wire_size_bytes() < raw.wire_size_bytes(),
            "{} vs {}",
            q.wire_size_bytes(),
            raw.wire_size_bytes()
        );
        // While the f32 encoding of the same activation is far bigger.
        let f = Payload::Features { features: deep };
        assert!(f.wire_size_bytes() > 2 * raw.wire_size_bytes());
    }

    #[test]
    fn cifar_features_larger_than_raw_but_imagenet_opposite() {
        // The paper's observation: for CIFAR-sized images the features are
        // usually bigger than the raw image; for ImageNet the raw image can
        // be bigger.
        let cifar_raw = paper_raw_image_bytes(3, 32, 32); // 3072
        let cifar_feat = paper_feature_bytes(64 * 8 * 8); // f32 64ch 8x8 = 16384
        assert!(cifar_feat > cifar_raw);
        let inet_raw = paper_raw_image_bytes(3, 224, 224); // 150528
        let inet_feat = paper_feature_bytes(512 * 7 * 7); // 100352
        assert!(inet_raw > inet_feat);
    }

    #[test]
    fn wire_size_matches_encoding_length() {
        let t = Tensor::ones([3, 4, 4]);
        for p in [Payload::RawImage { image: t.clone() }, Payload::Features { features: t }] {
            assert_eq!(p.encode().len() as u64, p.wire_size_bytes());
        }
    }
}
