//! The [`Layer`] trait: explicit forward/backward with per-layer caches.

use mea_tensor::Tensor;

/// Whether a forward pass should cache intermediates for a later backward
/// pass (and use batch statistics in normalisation layers).
///
/// Frozen blocks of a MEANet always run in [`Mode::Eval`]; this is what
/// eliminates their activation/gradient memory in blockwise training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: cache intermediates, use batch statistics.
    Train,
    /// Inference / frozen: no caches, use running statistics.
    Eval,
}

impl Mode {
    /// True in [`Mode::Train`].
    pub fn is_train(self) -> bool {
        matches!(self, Mode::Train)
    }
}

/// A learnable parameter: value plus gradient accumulator.
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter values.
    pub value: Tensor,
    /// Gradient of the loss with respect to [`Param::value`], accumulated by
    /// `backward` and cleared by [`Param::zero_grad`].
    pub grad: Tensor,
}

impl Param {
    /// Wraps a tensor as a parameter with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param { value, grad }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

/// A differentiable network component.
///
/// The contract between `forward` and `backward`:
///
/// * `backward` may only be called after a `forward` with [`Mode::Train`] on
///   the same input batch; implementations panic otherwise.
/// * `backward` receives the gradient of the loss with respect to the
///   layer's *output* and returns the gradient with respect to its *input*,
///   accumulating parameter gradients into its [`Param`]s along the way.
pub trait Layer: std::fmt::Debug + Send {
    /// Computes the layer output.
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor;

    /// Backpropagates `grad_out`, returning the gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Panics if no training-mode forward preceded this call.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every learnable parameter in a deterministic order.
    /// Parameter-free layers use the default empty implementation.
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    /// Visits every non-learnable state buffer (batch-norm running
    /// statistics) in a deterministic order. Layers without buffers use
    /// the default empty implementation. Containers must forward to their
    /// children so that state-dict capture sees the whole model.
    fn visit_buffers(&mut self, _f: &mut dyn FnMut(&mut Vec<f32>)) {}

    /// Total number of scalar learnable parameters.
    fn param_count(&self) -> usize;

    /// Multiply-adds needed for one *single-image* forward pass given an
    /// input of shape `[C, H, W]` (batch dimension excluded), together with
    /// the output shape. Pointwise layers cost zero MACs by the ptflops
    /// convention used in the paper's Table VI.
    fn macs(&self, in_shape: &[usize]) -> (u64, Vec<usize>);

    /// Short human-readable layer name for summaries.
    fn name(&self) -> &'static str;

    /// Per-image activation elements produced by this layer (used by the
    /// training-memory model of Fig. 6). Defaults to the output size implied
    /// by [`Layer::macs`].
    fn activation_elems(&self, in_shape: &[usize]) -> u64 {
        let (_, out) = self.macs(in_shape);
        out.iter().product::<usize>() as u64
    }

    /// Drops cached activations (after an optimisation step, or to shrink a
    /// model kept only for inference).
    fn clear_cache(&mut self) {}

    /// Type-erased view for downcasting, used by graph walkers that need to
    /// recognise concrete layers (the post-training quantizer, the DNN
    /// partitioner, the state-dict serializer).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable counterpart of [`Layer::as_any`].
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Clears the gradients of every parameter in `layer`.
pub fn zero_grads(layer: &mut dyn Layer) {
    layer.visit_params(&mut |p| p.zero_grad());
}

/// Collects the total parameter count reachable through `visit_params`
/// (sanity helper for tests; should equal [`Layer::param_count`]).
pub fn visited_param_count(layer: &mut dyn Layer) -> usize {
    let mut n = 0;
    layer.visit_params(&mut |p| n += p.numel());
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_zero_grad_clears() {
        let mut p = Param::new(Tensor::ones([2, 2]));
        p.grad.fill(3.0);
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0; 4]);
        assert_eq!(p.numel(), 4);
    }

    #[test]
    fn mode_predicates() {
        assert!(Mode::Train.is_train());
        assert!(!Mode::Eval.is_train());
    }
}
