//! Continual edge adaptation with episodic replay.
//!
//! Paper §III-A closes with: *"In the real environment, the edge can
//! collect new samples that have a different distribution. To avoid
//! overfitting and catastrophic forgetting on the new samples, we suggest
//! using both the new samples and samples from the dataset for training."*
//!
//! This module makes that suggestion concrete: a bounded [`ReplayBuffer`]
//! keeps a uniform sample of previously seen hard-class instances
//! (reservoir sampling, as in episodic-memory continual learning), and
//! [`train_edge_continual`] adapts the extension/adaptive blocks on a mix
//! of freshly collected data and replayed memories. Since only the edge
//! blocks move, the main block's knowledge of easy classes can never
//! degrade — forgetting is confined to, and measurable on, the hard
//! classes.

use crate::model::MeaNet;
use crate::train::{train_edge_blocks, EpochStats, TrainConfig};
use mea_data::Dataset;
use mea_nn::layer::Mode;
use mea_tensor::{ops, Rng, Tensor};
use serde::{Deserialize, Serialize};

/// A bounded episodic memory of labelled instances, kept uniform over
/// everything ever observed via reservoir sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    image_dims: Option<Vec<usize>>, // [C, H, W], learned on first observe
    data: Vec<f32>,                 // len() * elems
    labels: Vec<usize>,
    num_classes: usize,
    seen: usize,
}

impl ReplayBuffer {
    /// An empty buffer holding at most `capacity` instances with labels in
    /// `0..num_classes`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, num_classes: usize) -> Self {
        assert!(capacity > 0, "replay buffer needs capacity");
        ReplayBuffer { capacity, image_dims: None, data: Vec::new(), labels: Vec::new(), num_classes, seen: 0 }
    }

    /// Instances currently held.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when nothing has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Total instances ever observed (≥ [`ReplayBuffer::len`]).
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Streams a dataset through the reservoir: each instance lands in the
    /// buffer with probability `capacity / seen`, keeping the buffer a
    /// uniform sample of the whole stream.
    ///
    /// # Panics
    ///
    /// Panics if the dataset's image shape or class count disagrees with
    /// earlier observations.
    pub fn observe(&mut self, data: &Dataset, rng: &mut Rng) {
        assert_eq!(data.num_classes, self.num_classes, "class-space mismatch");
        let dims = data.images.dims()[1..].to_vec();
        match &self.image_dims {
            None => self.image_dims = Some(dims.clone()),
            Some(d) => assert_eq!(d, &dims, "image shape changed between observations"),
        }
        let elems: usize = dims.iter().product();
        let src = data.images.as_slice();
        for i in 0..data.len() {
            self.seen += 1;
            let row = &src[i * elems..(i + 1) * elems];
            if self.labels.len() < self.capacity {
                self.data.extend_from_slice(row);
                self.labels.push(data.labels[i]);
            } else {
                let j = rng.below(self.seen);
                if j < self.capacity {
                    self.data[j * elems..(j + 1) * elems].copy_from_slice(row);
                    self.labels[j] = data.labels[i];
                }
            }
        }
    }

    /// Draws `k` instances uniformly without replacement.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty or `k` exceeds its length.
    pub fn sample(&self, k: usize, rng: &mut Rng) -> Dataset {
        assert!(!self.is_empty(), "cannot sample an empty replay buffer");
        assert!(k > 0 && k <= self.len(), "sample size {k} out of range 1..={}", self.len());
        let idx = rng.sample_indices(self.len(), k);
        self.as_dataset().subset(&idx)
    }

    /// Views the whole buffer as a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn as_dataset(&self) -> Dataset {
        assert!(!self.is_empty(), "empty replay buffer");
        let dims = self.image_dims.as_ref().expect("dims set when non-empty");
        let mut shape = vec![self.labels.len()];
        shape.extend_from_slice(dims);
        let images = Tensor::from_vec(self.data.clone(), &shape).expect("buffer internally consistent");
        Dataset::new(images, self.labels.clone(), self.num_classes)
    }
}

/// Result of one adaptation round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptationStats {
    /// Per-epoch statistics of the mixed-data training.
    pub epochs: Vec<EpochStats>,
    /// New instances in the mix.
    pub new_instances: usize,
    /// Replayed instances in the mix.
    pub replayed_instances: usize,
}

/// Adapts the edge blocks to newly collected hard-class data, mixing in
/// `replay_ratio × |new|` replayed instances (capped by the buffer size)
/// exactly as the paper suggests. The buffer then absorbs the new data.
///
/// `new_data` must use remapped hard-class labels (see
/// [`crate::train::build_hard_dataset`]). `replay_ratio = 0` reproduces
/// naive fine-tuning.
///
/// # Panics
///
/// Panics if edge blocks are not attached or label spaces disagree.
pub fn train_edge_continual(
    net: &mut MeaNet,
    new_data: &Dataset,
    buffer: &mut ReplayBuffer,
    replay_ratio: f64,
    cfg: &TrainConfig,
    rng: &mut Rng,
) -> AdaptationStats {
    assert!(replay_ratio >= 0.0, "replay ratio must be non-negative");
    let want = ((new_data.len() as f64) * replay_ratio).round() as usize;
    let k = want.min(buffer.len());
    let mixed = if k > 0 {
        let replay = buffer.sample(k, rng);
        let images = Tensor::concat_axis0(&[&new_data.images, &replay.images]);
        let mut labels = new_data.labels.clone();
        labels.extend_from_slice(&replay.labels);
        Dataset::new(images, labels, new_data.num_classes)
    } else {
        new_data.clone()
    };
    let epochs = train_edge_blocks(net, &mixed, cfg);
    buffer.observe(new_data, rng);
    AdaptationStats { epochs, new_instances: new_data.len(), replayed_instances: k }
}

/// Accuracy of the extension exit alone on remapped hard-class data — the
/// metric that exposes catastrophic forgetting of hard classes.
pub fn extension_accuracy(net: &mut MeaNet, hard_data: &Dataset, batch_size: usize) -> f64 {
    let n_hard = net.hard_dict().expect("edge blocks not attached").len();
    assert_eq!(hard_data.num_classes, n_hard, "hard dataset must use remapped labels");
    let mut correct = 0usize;
    for (images, labels) in hard_data.batches(batch_size) {
        let features = net.main_features(&images, Mode::Eval);
        let logits = net.extension_logits(&images, &features, Mode::Eval);
        let preds = ops::softmax_rows(&logits).argmax_rows();
        correct += preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    }
    correct as f64 / hard_data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AdaptivePlan, Merge, Variant};
    use crate::train::{build_hard_dataset, train_backbone, TrainConfig};
    use mea_data::{presets, ClassDict};
    use mea_nn::models::{resnet_cifar, CifarResNetConfig};

    #[test]
    fn reservoir_respects_capacity_and_tracks_seen() {
        let bundle = presets::tiny(50);
        let mut buf = ReplayBuffer::new(10, 6);
        let mut rng = Rng::new(0);
        buf.observe(&bundle.train, &mut rng);
        assert_eq!(buf.len(), 10);
        assert_eq!(buf.seen(), bundle.train.len());
        buf.observe(&bundle.test, &mut rng);
        assert_eq!(buf.len(), 10);
        assert_eq!(buf.seen(), bundle.train.len() + bundle.test.len());
    }

    #[test]
    fn reservoir_is_roughly_uniform_over_the_stream() {
        // Stream 60 instances of class 0 then 60 of class 1 through a
        // 30-slot reservoir: the final mix should be near 50/50, not
        // dominated by the most recent chunk.
        let images = Tensor::zeros([60, 1, 2, 2]);
        let a = Dataset::new(images.clone(), vec![0; 60], 2);
        let b = Dataset::new(images, vec![1; 60], 2);
        let mut counts = [0usize; 2];
        for seed in 0..20 {
            let mut buf = ReplayBuffer::new(30, 2);
            let mut rng = Rng::new(seed);
            buf.observe(&a, &mut rng);
            buf.observe(&b, &mut rng);
            for &l in &buf.as_dataset().labels {
                counts[l] += 1;
            }
        }
        let frac0 = counts[0] as f64 / (counts[0] + counts[1]) as f64;
        assert!((frac0 - 0.5).abs() < 0.12, "reservoir is biased: class-0 fraction {frac0}");
    }

    #[test]
    fn sample_draws_without_replacement() {
        let images = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[4, 1, 2, 2]).unwrap();
        let data = Dataset::new(images, vec![0, 1, 0, 1], 2);
        let mut buf = ReplayBuffer::new(4, 2);
        let mut rng = Rng::new(1);
        buf.observe(&data, &mut rng);
        let s = buf.sample(4, &mut rng);
        let mut firsts: Vec<i64> = s.images.as_slice().chunks(4).map(|c| c[0] as i64).collect();
        firsts.sort_unstable();
        assert_eq!(firsts, vec![0, 4, 8, 12], "each instance drawn at most once");
    }

    /// Full forgetting scenario: adapt to a single hard class with and
    /// without replay; replay must retain more accuracy on the original
    /// hard test set.
    #[test]
    fn replay_mitigates_catastrophic_forgetting() {
        let bundle = presets::tiny(51);
        let mut rng = Rng::new(2);
        let mut cfg = CifarResNetConfig::repro_scale(6);
        cfg.input_hw = 8;
        let mut backbone = resnet_cifar(&cfg, &mut rng);
        let _ = train_backbone(&mut backbone, &bundle.train, &TrainConfig::repro(4));
        let dict = ClassDict::new(&[0, 2, 4]);

        // Both runs adapt the *same* starting model: clone the trained
        // backbone through a state dict.
        let sd = mea_nn::StateDict::from_cnn(&mut backbone);
        let make_net = |rng: &mut Rng| {
            let mut cfg2 = CifarResNetConfig::repro_scale(6);
            cfg2.input_hw = 8;
            let mut b = resnet_cifar(&cfg2, rng);
            sd.apply_to_cnn(&mut b).unwrap();
            let mut net = MeaNet::from_backbone(
                b,
                Variant::FullBackbone { extension_channels: 16, extension_blocks: 1 },
                Merge::Sum,
                &mut Rng::new(99),
            );
            net.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, dict.clone(), &mut Rng::new(100));
            net
        };

        let hard_train = build_hard_dataset(&bundle.train, &dict);
        let hard_test = build_hard_dataset(&bundle.test, &dict);
        let tc = TrainConfig::repro(5);

        // Phase 1 (both nets identical): learn all hard classes.
        let mut with_replay = make_net(&mut Rng::new(3));
        let mut without_replay = make_net(&mut Rng::new(3));
        let _ = train_edge_blocks(&mut with_replay, &hard_train, &tc);
        let _ = train_edge_blocks(&mut without_replay, &hard_train, &tc);

        // Environment shift: only remapped class 0 is collected now.
        let only_class0 = {
            let keep: Vec<usize> = (0..hard_train.len()).filter(|&i| hard_train.labels[i] == 0).collect();
            hard_train.subset(&keep)
        };
        let mut buffer = ReplayBuffer::new(hard_train.len(), dict.len());
        buffer.observe(&hard_train, &mut Rng::new(4));

        let adapt_cfg = TrainConfig::repro(8);
        let mut rng_a = Rng::new(5);
        let stats = train_edge_continual(&mut with_replay, &only_class0, &mut buffer, 2.0, &adapt_cfg, &mut rng_a);
        assert!(stats.replayed_instances > 0, "replay must actually mix in old data");
        let mut empty = ReplayBuffer::new(8, dict.len());
        let mut rng_b = Rng::new(5);
        let _ = train_edge_continual(&mut without_replay, &only_class0, &mut empty, 2.0, &adapt_cfg, &mut rng_b);

        let acc_with = extension_accuracy(&mut with_replay, &hard_test, 8);
        let acc_without = extension_accuracy(&mut without_replay, &hard_test, 8);
        assert!(
            acc_with > acc_without,
            "replay ({acc_with}) must retain more hard-class accuracy than naive fine-tuning ({acc_without})"
        );
    }

    #[test]
    fn zero_ratio_reduces_to_fine_tuning() {
        let bundle = presets::tiny(52);
        let mut rng = Rng::new(6);
        let mut cfg = CifarResNetConfig::repro_scale(6);
        cfg.input_hw = 8;
        let mut backbone = resnet_cifar(&cfg, &mut rng);
        let _ = train_backbone(&mut backbone, &bundle.train, &TrainConfig::repro(2));
        let dict = ClassDict::new(&[1, 3]);
        let mut net = MeaNet::from_backbone(
            backbone,
            Variant::FullBackbone { extension_channels: 8, extension_blocks: 1 },
            Merge::Sum,
            &mut rng,
        );
        net.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, dict.clone(), &mut rng);
        let hard = build_hard_dataset(&bundle.train, &dict);
        let mut buffer = ReplayBuffer::new(4, dict.len());
        buffer.observe(&hard, &mut rng);
        let stats = train_edge_continual(&mut net, &hard, &mut buffer, 0.0, &TrainConfig::repro(1), &mut rng);
        assert_eq!(stats.replayed_instances, 0);
        assert_eq!(stats.new_instances, hard.len());
    }

    #[test]
    #[should_panic(expected = "image shape changed")]
    fn shape_drift_is_rejected() {
        let mut buf = ReplayBuffer::new(4, 2);
        let mut rng = Rng::new(7);
        let a = Dataset::new(Tensor::zeros([2, 1, 2, 2]), vec![0, 1], 2);
        let b = Dataset::new(Tensor::zeros([2, 1, 3, 3]), vec![0, 1], 2);
        buf.observe(&a, &mut rng);
        buf.observe(&b, &mut rng);
    }
}
