//! No-op `Serialize`/`Deserialize` derives for the vendored `serde` stub.
//!
//! The vendored `serde` crate provides blanket impls of its marker traits,
//! so the derives have nothing to generate — they only need to exist so
//! `#[derive(Serialize, Deserialize)]` attributes in the sources compile.

use proc_macro::TokenStream;

/// Accepts the annotated item and emits nothing: `serde::Serialize` is a
/// blanket-implemented marker trait in the vendored stub.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the annotated item and emits nothing: `serde::Deserialize` is a
/// blanket-implemented marker trait in the vendored stub.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
