//! Edge-tier execution: the per-class cut/placement table, policy state,
//! the edge worker loop and the offload path to the cloud tier.

use super::*;

/// An instance travelling from the dispatcher to an edge worker.
#[derive(Debug)]
pub(crate) struct EdgeJob<'a> {
    pub(crate) req_id: usize,
    pub(crate) req: &'a ServeRequest,
    pub(crate) due: Instant,
}

/// An offloaded request parked on the edge side of the transport until
/// its [`ResponseFrame`] returns: everything needed to finish the record
/// that does not cross the wire.
#[derive(Debug)]
pub(crate) struct PendingEntry {
    pub(crate) pending: PendingCloud,
    pub(crate) device: usize,
    pub(crate) seq: usize,
    pub(crate) due: Instant,
    /// Per-device offload index assigned by the (single) edge worker that
    /// owns the device's stream — the key the [`ReorderGate`] releases
    /// completions in, so per-device FIFO survives work stealing.
    pub(crate) cloud_idx: u64,
}

/// Bytes and hops shipped between cooperating edge devices, counted by
/// every peer stage an edge worker executes. Lives next to the cloud
/// byte counters in `serve_core` and surfaces as
/// [`ServeStats::peer_bytes`] / [`ServeStats::peer_hops`].
#[derive(Debug, Default)]
pub(crate) struct PeerTelemetry {
    pub(crate) bytes: AtomicU64,
    pub(crate) hops: AtomicU64,
}

/// The live placement table of feature-payload serving: the current
/// [`PlacementPlan`] per device class, plus the planner that re-derives
/// it when β moves or the measured-link telemetry says the wire changed.
/// The legacy scalar cut is the two-stage special case
/// ([`PlacementPlan::two_stage`]).
#[derive(Debug)]
pub(crate) struct CutTable {
    /// None for `CutSelection::Fixed` / `CutSelection::Placement` (the
    /// table never changes).
    pub(crate) planner: Option<(CutPlanner, Vec<DeviceProfile>)>,
    /// The fleet spec the table is indexed by (the configured one, or the
    /// legacy-compatible implicit spec).
    pub(crate) spec: FleetSpec,
    /// Per-class static radio priors (all None without a fleet spec).
    pub(crate) links: Vec<Option<NetworkLink>>,
    pub(crate) placements: Vec<PlacementPlan>,
    /// Per-class cooperative peer pools (all None without coop groups in
    /// the fleet spec) — held so every replan rescores peer hops too.
    pub(crate) pools: Vec<Option<PeerPool>>,
    /// The feature wire each class currently ships offloads on: the
    /// configured wire everywhere until a governor moves a class up its
    /// ladder.
    pub(crate) wires: Vec<FeatureWire>,
    /// What the planner minimises (the governor wraps this base objective
    /// in its SLA constraint for escalated classes).
    pub(crate) objective: Objective,
    pub(crate) replans: u64,
    /// The closed-loop configuration; None plans open-loop.
    pub(crate) feedback: Option<LinkFeedback>,
    /// Per-class EWMA link telemetry (present exactly when `feedback` is).
    pub(crate) estimator: Option<LinkEstimator>,
    /// Cloud batches observed by the feedback loop so far.
    pub(crate) observed_batches: u64,
}

impl CutTable {
    pub(crate) fn placement_for(&self, device: usize) -> PlacementPlan {
        class_placement(&self.placements, &self.spec, device)
    }

    pub(crate) fn wire_for(&self, device: usize) -> FeatureWire {
        self.wires[self.spec.class_of(device)]
    }

    /// Re-derives the per-class placements under the planner's current β
    /// and whatever telemetry has accumulated; counts a replan only when
    /// a plan actually changes. Two-stage plans compare equal exactly
    /// when their final cuts do, so the legacy replan counts are
    /// preserved for pool-free fleets.
    pub(crate) fn replan(&mut self) {
        let Some((planner, classes)) = &self.planner else { return };
        let costs = match &self.estimator {
            Some(est) => {
                planner.plan_placements_measured_with_links(classes, &self.links, &est.estimates(), &self.pools)
            }
            None => planner.plan_placements_with_links(classes, &self.links, &self.pools),
        };
        let new_placements: Vec<PlacementPlan> = costs.into_iter().map(|c| c.plan).collect();
        if new_placements != self.placements {
            self.placements = new_placements;
            self.replans += 1;
        }
    }

    /// The governed counterpart of [`CutTable::replan`]: classes the
    /// governor has escalated (`constrained[k]`) plan against the
    /// SLA-constrained objective
    /// ([`CutPlanner::plan_placement_for_sla_with_link`] — fewest WAN
    /// upload bytes among the placements that fit the p95 budget), while
    /// unescalated classes keep the base objective, so a healthy class is
    /// planned bit-identically to the open-loop path.
    pub(crate) fn replan_governed(&mut self, sla: &SlaObjective, constrained: &[bool]) {
        let Some((planner, classes)) = &self.planner else { return };
        let estimates =
            self.estimator.as_ref().map(LinkEstimator::estimates).unwrap_or_else(|| vec![None; classes.len()]);
        let new_placements: Vec<PlacementPlan> = classes
            .iter()
            .enumerate()
            .map(|(k, edge)| {
                let link = self.links[k];
                let measured = estimates[k].as_ref();
                let pool = self.pools[k].as_ref();
                if constrained[k] {
                    planner.plan_placement_for_sla_with_link(edge, link.as_ref(), measured, sla, pool).0.plan
                } else {
                    planner.plan_placement_for_measured_with_link(edge, link.as_ref(), measured, pool).plan
                }
            })
            .collect();
        if new_placements != self.placements {
            self.placements = new_placements;
            self.replans += 1;
        }
    }
}

/// The single definition of device→class placement lookup, shared by the
/// locked and lock-free edge paths. The spec resolves the class (its
/// explicit assignment, or the legacy `device % classes` convention).
pub(crate) fn class_placement(placements: &[PlacementPlan], spec: &FleetSpec, device: usize) -> PlacementPlan {
    placements[spec.class_of(device)].clone()
}

/// The fleet spec serving actually runs under: the configured one, or —
/// for `ServeConfig::fleet: None` — an implicit legacy-compatible spec
/// (round-robin over the planner's device classes at [`ComputeTier::High`],
/// which scales nothing, so every lookup reduces to `device % classes`;
/// one uniform class outside planned-cut mode).
pub(crate) fn implicit_spec(cfg: &ServeConfig) -> FleetSpec {
    if let Some(spec) = &cfg.fleet {
        return spec.clone();
    }
    if let PayloadPlan::Features(fc) = &cfg.payload {
        if let CutSelection::Planned(pc) = &fc.cut {
            return FleetSpec::round_robin(
                pc.classes
                    .iter()
                    .map(|p| DeviceClass::new(p.name.clone(), p.clone(), ComputeTier::High))
                    .collect(),
            );
        }
    }
    FleetSpec::uniform(DeviceClass::new("edge", DeviceProfile::edge_gpu_cifar(), ComputeTier::High))
}

/// Window size of the β controller the governor synthesises when its β
/// rung first fires without a configured [`ControllerConfig`] (governed
/// plans never configure one — β belongs to the governor).
pub(crate) const GOVERNOR_CONTROLLER_WINDOW: usize = 32;

/// The governor's live state inside [`PolicyState`]: the decision core
/// plus the per-class latency windows the collectors feed and the
/// decision trajectory the stats report.
pub(crate) struct GovernorState {
    pub(crate) governor: Governor,
    /// Per-class end-to-end latency, cumulative + current decision
    /// window, fed by every completion (local and cloud).
    pub(crate) latency: Vec<WindowedQuantiles>,
    /// Epochs that actually moved the (β, cut, wire) operating point.
    pub(crate) decisions: u64,
    /// The initial operating point plus one entry per decision.
    pub(crate) trajectory: Vec<ControlPoint>,
}

/// Shared (mutexed) routing policy state: the engine all edge workers
/// consult, plus the controller feedback loop, the live cut table and —
/// under [`ControlPlan::Governed`] — the SLA governor.
pub(crate) struct PolicyState {
    pub(crate) engine: RoutingEngine,
    pub(crate) controller: Option<ThresholdController>,
    pub(crate) window: usize,
    pub(crate) seen: usize,
    pub(crate) offloaded: usize,
    /// Lifetime routing counts (never reset): the achieved offload
    /// fraction the governor seeds its β rung from.
    pub(crate) seen_total: u64,
    pub(crate) offloaded_total: u64,
    /// The configured routing policy — what the governor synthesises a β
    /// controller from when its β rung first fires.
    pub(crate) base_policy: OffloadPolicy,
    pub(crate) cuts: Option<CutTable>,
    pub(crate) governor: Option<GovernorState>,
}

impl PolicyState {
    pub(crate) fn new(
        cfg: &ServeConfig,
        cloud_available: bool,
        cuts: Option<CutTable>,
        governor: Option<GovernorConfig>,
    ) -> PolicyState {
        let (policy, controller, window) = match cfg.controller {
            Some(cc) => {
                assert!(cc.window > 0, "controller window must be non-empty");
                (OffloadPolicy::EntropyThreshold(cc.controller.threshold()), Some(cc.controller), cc.window)
            }
            None => (cfg.policy, None, 0),
        };
        let governor = governor.map(|config| {
            let table = cuts.as_ref().expect("a governed plan always builds a planned cut table");
            let classes = table.placements.len();
            GovernorState {
                governor: Governor::new(config, classes),
                latency: vec![WindowedQuantiles::for_latency(); classes],
                decisions: 0,
                // Seed the trajectory with the initial operating point so
                // `last()` is always the final (β, placement, wire) per
                // class.
                trajectory: vec![ControlPoint {
                    after_batches: 0,
                    beta_target: None,
                    cuts: table.placements.iter().map(PlacementPlan::final_cut).collect(),
                    placements: table.placements.clone(),
                    wires: table.wires.clone(),
                }],
            }
        });
        PolicyState {
            engine: RoutingEngine::new(policy, cloud_available),
            controller,
            window,
            seen: 0,
            offloaded: 0,
            seen_total: 0,
            offloaded_total: 0,
            base_policy: cfg.policy,
            cuts,
            governor,
        }
    }

    /// Feeds one routing decision back into the controller; when a window
    /// fills, the threshold (and the engine's policy) is retuned and —
    /// since the offload fraction just moved — the cut planner re-plans
    /// the per-class cuts under the new contention (and whatever link
    /// telemetry has accumulated).
    pub(crate) fn observe(&mut self, offloaded: bool) {
        self.seen_total += 1;
        self.offloaded_total += u64::from(offloaded);
        let Some(ctrl) = &mut self.controller else { return };
        self.seen += 1;
        self.offloaded += usize::from(offloaded);
        if self.seen == self.window {
            let achieved = self.offloaded as f64 / self.seen as f64;
            let t = ctrl.observe_window(self.offloaded, self.seen);
            self.engine.set_policy(OffloadPolicy::EntropyThreshold(t));
            self.seen = 0;
            self.offloaded = 0;
            if let Some(table) = &mut self.cuts {
                if let Some((planner, _)) = &mut table.planner {
                    planner.set_beta(achieved);
                    // A governed cut table replans only at the governor's
                    // own epochs, with its per-class constraints.
                    if self.governor.is_none() {
                        table.replan();
                    }
                }
            }
        }
    }

    /// Records one completion's end-to-end latency into `class`'s live
    /// quantile window. No-op without a governor.
    pub(crate) fn record_latency(&mut self, class: usize, latency_s: f64) {
        if let Some(gv) = &mut self.governor {
            gv.latency[class].record(latency_s);
        }
    }

    /// Feeds one served cloud batch's link telemetry into the estimator
    /// (one observation per device class present in the batch) and, every
    /// [`LinkFeedback::replan_every`] batches, replans the cuts from the
    /// measured rates — through the governor's decision epoch when one is
    /// configured. No-op without a closed-loop cut table.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn observe_link(
        &mut self,
        devices: &[usize],
        up_bytes: u64,
        up_s: f64,
        down_bytes: u64,
        down_s: f64,
        rtt_s: f64,
    ) {
        let due = {
            let Some(table) = &mut self.cuts else { return };
            let Some(fb) = table.feedback else { return };
            let spec = &table.spec;
            let Some(est) = &mut table.estimator else { return };
            let mut seen = vec![false; est.class_count()];
            for &d in devices {
                let class = spec.class_of(d);
                if !seen[class] {
                    seen[class] = true;
                    est.observe(class, up_bytes, up_s, down_bytes, down_s, rtt_s);
                }
            }
            table.observed_batches += 1;
            table.observed_batches % fb.replan_every == 0
        };
        if !due {
            return;
        }
        if self.governor.is_some() {
            self.governor_epoch();
        } else if let Some(table) = &mut self.cuts {
            table.replan();
        }
    }

    /// One governor decision epoch (every [`LinkFeedback::replan_every`]
    /// cloud batches): judge each class's live latency window against the
    /// SLA (escalating violators one ladder rung), roll the windows, then
    /// apply the ladder — per-class wires, an SLA-constrained replan for
    /// escalated classes, and the β target through a (synthesised)
    /// threshold controller. Counts a decision only when the joint
    /// (β, cut, wire) point actually moved.
    pub(crate) fn governor_epoch(&mut self) {
        let (Some(gv), Some(table)) = (self.governor.as_mut(), self.cuts.as_mut()) else { return };
        let achieved =
            if self.seen_total == 0 { 0.0 } else { self.offloaded_total as f64 / self.seen_total as f64 };
        let classes = table.placements.len();
        for class in 0..classes {
            let w = &mut gv.latency[class];
            gv.governor.observe_window(class, w.window_quantile(0.95), w.window_count(), achieved);
            // Each epoch judges only the evidence gathered since the
            // last one: close the window either way.
            w.roll();
        }
        for class in 0..classes {
            table.wires[class] = gv.governor.wire(class);
        }
        let constrained: Vec<bool> = (0..classes).map(|c| gv.governor.sla_constrained(c)).collect();
        if constrained.iter().any(|&c| c) {
            let sla = gv.governor.sla_objective(table.objective);
            table.replan_governed(&sla, &constrained);
        } else {
            // No class escalated yet: plan exactly like the open-loop
            // path, so a generous SLA serves record-identically to it.
            table.replan();
        }
        if let Some(beta) = gv.governor.beta_target() {
            match &mut self.controller {
                Some(ctrl) => ctrl.set_target_beta(beta),
                // The β rung binds entropy-threshold routing only: the
                // governor synthesises an integral controller steering
                // the configured threshold toward the lowered target.
                // Other policies leave routing untouched (the rung is
                // inert, never a panic).
                None => {
                    if let OffloadPolicy::EntropyThreshold(t0) = self.base_policy {
                        self.controller = Some(ThresholdController::new(t0, beta, 2.0, (0.0, 3.0)));
                        self.window = GOVERNOR_CONTROLLER_WINDOW;
                        self.seen = 0;
                        self.offloaded = 0;
                    }
                }
            }
        }
        let point = ControlPoint {
            after_batches: table.observed_batches,
            beta_target: gv.governor.beta_target(),
            cuts: table.placements.iter().map(PlacementPlan::final_cut).collect(),
            placements: table.placements.clone(),
            wires: table.wires.clone(),
        };
        let last = gv.trajectory.last().expect("trajectory seeded with the initial operating point");
        let moved = last.beta_target != point.beta_target
            || last.placements != point.placements
            || last.wires != point.wires;
        if moved {
            gv.decisions += 1;
            gv.trajectory.push(point);
        }
    }
}

/// Derives the initial cut table (and its planner) from the payload plan
/// and the resolved fleet spec.
pub(crate) fn build_cut_table(
    cfg: &ServeConfig,
    edges: &[EdgeReplica],
    requests: &[ServeRequest],
    spec: &FleetSpec,
) -> Option<CutTable> {
    let PayloadPlan::Features(fc) = &cfg.payload else { return None };
    let prefix = edges
        .first()
        .and_then(|e| e.cloud_prefix.as_ref())
        .expect("feature-payload serving requires cloud-prefix replicas on every edge worker");
    let cut_layers = prefix.cut_layer_count();
    match &fc.cut {
        CutSelection::Fixed(k) => {
            assert!(*k < cut_layers, "fixed cut {k} out of range (cloud network has {cut_layers} cut layers)");
            Some(CutTable {
                planner: None,
                spec: spec.clone(),
                links: vec![None; spec.class_count()],
                placements: vec![PlacementPlan::two_stage(*k, cut_layers); spec.class_count()],
                pools: vec![None; spec.class_count()],
                wires: vec![fc.wire; spec.class_count()],
                objective: Objective::Latency,
                replans: 0,
                feedback: None,
                estimator: None,
                observed_batches: 0,
            })
        }
        CutSelection::Placement(plan) => {
            // Shape checked in `validate_serve` (layer coverage + final
            // cut range); the forced plan applies to every class.
            Some(CutTable {
                planner: None,
                spec: spec.clone(),
                links: vec![None; spec.class_count()],
                placements: vec![plan.clone(); spec.class_count()],
                pools: vec![None; spec.class_count()],
                wires: vec![fc.wire; spec.class_count()],
                objective: Objective::Latency,
                replans: 0,
                feedback: None,
                estimator: None,
                observed_batches: 0,
            })
        }
        CutSelection::Planned(pc) => {
            // With a fleet the planner's classes are the spec's effective
            // (tier-scaled) profiles and its per-class radio priors;
            // without one, the legacy explicit class list plans against
            // the shared link only.
            let (classes, links) = if cfg.fleet.is_some() {
                (spec.effective_profiles(), spec.link_priors())
            } else {
                (pc.classes.clone(), vec![None; pc.classes.len()])
            };
            assert!(!classes.is_empty(), "planned cut selection needs at least one device class");
            let link = cfg.link.expect("planned cut selection requires a link model (ServeConfig::link)");
            let in_elems: u64 = prefix.in_shape.iter().map(|&d| d as u64).product();
            let env = PartitionEnv {
                edge: classes[0].clone(),
                cloud: pc.cloud.clone(),
                link,
                bytes_per_elem: fc.wire.bytes_per_elem(),
                raw_input_bytes: fc.wire.bytes_per_elem() * in_elems,
                response_bytes: RESPONSE_WIRE_BYTES,
            };
            // Contention counts the *distinct* devices sharing the
            // uplink: a trace from devices {0, 7} is two streams, not
            // eight (ids may be sparse — device numbering is opaque).
            let streams = requests.iter().map(|r| r.device).collect::<std::collections::BTreeSet<_>>().len();
            let mut planner = CutPlanner::from_network(prefix, env, pc.objective, streams.max(1));
            if let Some(cc) = &cfg.controller {
                planner.set_beta(cc.controller.target_beta());
            }
            let estimator = pc.feedback.map(|fb| {
                assert!(fb.replan_every > 0, "feedback must replan after a positive number of batches");
                planner.set_prior_samples(fb.prior_samples);
                LinkEstimator::new(classes.len(), fb.alpha)
            });
            // Cooperative peer pools exist only through a fleet spec's
            // coop groups; the legacy class list plans solo.
            let pools = if cfg.fleet.is_some() { spec.peer_pools() } else { vec![None; classes.len()] };
            let placements: Vec<PlacementPlan> =
                planner.plan_placements_with_links(&classes, &links, &pools).into_iter().map(|c| c.plan).collect();
            let wires = vec![fc.wire; placements.len()];
            Some(CutTable {
                planner: Some((planner, classes)),
                spec: spec.clone(),
                links,
                placements,
                pools,
                wires,
                objective: pc.objective,
                replans: 0,
                feedback: pc.feedback,
                estimator,
                observed_batches: 0,
            })
        }
    }
}

/// Ships one request toward the cloud tier: executes the device class's
/// [`PlacementPlan`] stage by stage — local prefix layers on this
/// replica, peer stages shipped to a cooperating edge device over the
/// lossless f32 peer wire (paying the modelled coop link in real wall
/// time; the peer runs a bitwise-identical prefix replica, so the hop
/// cannot change a value) — then encodes the final-cut activation (or
/// the raw image) straight from the borrowed tensor, parks the pending
/// record, and puts the frame on the device's sticky lane. `cloud_idx`
/// is the device's offload sequence number, the key the [`ReorderGate`]
/// releases the completion in. Returns `false` when the cloud tier is
/// gone (uplink dropped) — the caller stops quietly and the join in
/// `serve_core` surfaces whatever panic killed it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn offload_to_cloud<T: Transport>(
    cfg: &ServeConfig,
    spec: &FleetSpec,
    cloud_prefix: &mut Option<SegmentedCnn>,
    job: &EdgeJob<'_>,
    placement: Option<(PlacementPlan, FeatureWire)>,
    parked: PendingCloud,
    cloud_idx: u64,
    transport: &T,
    pending: &Mutex<Vec<Option<PendingEntry>>>,
    grids: Option<&ActivationGrids>,
    peer: &PeerTelemetry,
) -> bool {
    let req = job.req;
    let (payload, resume) = match &cfg.payload {
        PayloadPlan::Image(WireFormat::Float32) => (Payload::encode_features(&req.image), 0),
        PayloadPlan::Image(WireFormat::Quantised8Bit) => (Payload::encode_raw_image(&req.image), 0),
        PayloadPlan::Features(_) => {
            let (plan, wire) = placement.expect("feature mode builds a placement table");
            let prefix = cloud_prefix.as_mut().expect("validated in try_serve()");
            let mut act = req.image.clone();
            let mut resume = 0;
            for stage in plan.stages() {
                let (from, to) = stage.layer_range;
                match stage.executor {
                    StageExecutor::Cloud => {
                        resume = from;
                        break;
                    }
                    StageExecutor::Local => {
                        if to > from {
                            act = prefix.forward_range(&act, from, to, Mode::Eval);
                        }
                    }
                    StageExecutor::Peer(class) => {
                        if to > from {
                            // The peer hop is always the lossless f32
                            // feature codec, whatever the WAN wire: a
                            // lossy intra-edge hop would compound with
                            // the cloud hop's quantiser and break the
                            // cut-is-a-pure-cost-knob invariant.
                            let bytes = Payload::encode_features(&act);
                            peer.bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
                            peer.hops.fetch_add(1, Ordering::Relaxed);
                            // Pay the coop link (upload + half RTT) in
                            // real wall time, like the modelled WAN. A
                            // forced placement naming a class without a
                            // coop group ships on a free wire rather
                            // than panicking mid-serve.
                            if let Some(group) = spec.classes()[class].coop {
                                let leg = group.link.uplink_leg_s(bytes.len() as u64);
                                std::thread::sleep(Duration::from_secs_f64(leg));
                            }
                            act = Payload::decode(bytes).into_tensor();
                            act = prefix.forward_range(&act, from, to, Mode::Eval);
                        }
                    }
                }
            }
            let payload = match wire {
                FeatureWire::F32 => Payload::encode_features(&act),
                FeatureWire::Int8 => Payload::encode_quantized_features(&act),
                FeatureWire::PerChannelInt8 => Payload::encode_grid_features(
                    &act,
                    resume,
                    grids.expect("per-channel int8 serving calibrates grids at setup"),
                ),
            };
            (payload, resume)
        }
    };
    let frame = RequestFrame {
        req_id: job.req_id as u64,
        device: req.device as u32,
        seq: req.seq as u64,
        resume_layer: resume as u32,
        payload,
    };
    // Park the pending record BEFORE the frame leaves: the response can
    // race back on another thread.
    pending.lock()[job.req_id] = Some(PendingEntry {
        pending: parked.resume_at(resume),
        device: req.device,
        seq: req.seq,
        due: job.due,
        cloud_idx,
    });
    transport.send_request(spec.sticky_index(req.device, transport.lanes()), frame).is_ok()
}

/// Edge worker loop: route each request through the shared engine,
/// finish main/extension exits locally, ship cloud exits as
/// [`RequestFrame`]s up the sticky transport lane — as images, or as
/// cut-layer activations of the local cloud-prefix replica in
/// feature-payload mode.
///
/// With a [`DifficultyPredictor`] configured the engine is consulted
/// difficulty-first: predicted-hard inputs pre-commit to the cloud
/// without evaluating the main exit (counted in `skipped`), and
/// predicted-easy inputs settle locally without the offload policy ever
/// seeing them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn edge_worker<T: Transport>(
    cfg: &ServeConfig,
    spec: &FleetSpec,
    replica: &mut EdgeReplica,
    rx: Receiver<EdgeJob<'_>>,
    transport: &T,
    pending: &Mutex<Vec<Option<PendingEntry>>>,
    done_tx: Sender<Completion>,
    shared: &Mutex<PolicyState>,
    skipped: &AtomicUsize,
    grids: Option<&ActivationGrids>,
    peer: &PeerTelemetry,
) {
    let EdgeReplica { net, cloud_prefix } = replica;
    // The wire offloads ship on when the cut table is static (a governor
    // moves it per class through the table instead).
    let static_wire = match &cfg.payload {
        PayloadPlan::Features(fc) => fc.wire,
        _ => FeatureWire::F32,
    };
    // Without a controller, measured-link feedback or a governor neither
    // the policy nor the cut table ever changes: take private copies once
    // and keep the hot path lock-free. With any loop active, the lock
    // serves the current threshold, cuts and wires, and feeds the window
    // back. (A governor always rides measured-link feedback, so governed
    // serving always takes the locked path.)
    let (static_engine, static_placements, governed): (Option<RoutingEngine>, Option<Vec<PlacementPlan>>, bool) = {
        let st = shared.lock();
        let cuts_move = st.cuts.as_ref().is_some_and(|t| t.feedback.is_some());
        if st.controller.is_none() && !cuts_move {
            (Some(st.engine), st.cuts.as_ref().map(|t| t.placements.clone()), st.governor.is_some())
        } else {
            (None, None, st.governor.is_some())
        }
    };
    // Per-device offload sequence numbers. Exactly one edge worker owns
    // each device's stream (device-sticky dispatch), so a thread-local
    // counter is the authoritative offload order the [`ReorderGate`]
    // releases completions in.
    let mut cloud_seq: HashMap<usize, u64> = HashMap::new();
    let mut next_cloud_idx = |device: usize| {
        let slot = cloud_seq.entry(device).or_insert(0);
        let idx = *slot;
        *slot += 1;
        idx
    };
    while let Ok(job) = rx.recv() {
        let req = job.req;
        let difficulty = cfg.difficulty.as_ref().map(|p| (p, p.predict(&req.image)));
        // Pre-commit: a predicted-hard input ships to the cloud without
        // the main exit ever running. The parked record carries the
        // predictor's entropy estimate and the PRECOMMITTED sentinel
        // instead of main-exit values.
        if let Some((predictor, Difficulty::Hard)) = difficulty {
            let wants = match &static_engine {
                Some(engine) => engine.wants_precommit(Difficulty::Hard),
                None => shared.lock().engine.wants_precommit(Difficulty::Hard),
            };
            if wants {
                let placement = match &static_engine {
                    Some(_) => static_placements
                        .as_ref()
                        .map(|plans| (class_placement(plans, spec, req.device), static_wire)),
                    None => {
                        let mut st = shared.lock();
                        st.observe(true);
                        st.cuts.as_ref().map(|t| (t.placement_for(req.device), t.wire_for(req.device)))
                    }
                };
                skipped.fetch_add(1, Ordering::Relaxed);
                let parked = PendingCloud::precommit(req.truth, predictor.predict_entropy(&req.image));
                let idx = next_cloud_idx(req.device);
                if !offload_to_cloud(
                    cfg,
                    spec,
                    cloud_prefix,
                    &job,
                    placement,
                    parked,
                    idx,
                    transport,
                    pending,
                    grids,
                    peer,
                ) {
                    return;
                }
                continue;
            }
        }
        let main = RoutingEngine::evaluate_main(net, &req.image);
        // A predicted-easy input settles locally: the plan picks main or
        // extension exit, never the cloud.
        let local_only = matches!(difficulty, Some((_, Difficulty::Easy)));
        let (route, placement) = match &static_engine {
            Some(engine) => {
                let plan = if local_only { engine.plan_local(net, &main) } else { engine.plan(net, &main) };
                let placement = static_placements
                    .as_ref()
                    .map(|plans| (class_placement(plans, spec, req.device), static_wire));
                (plan.routes[0], placement)
            }
            None => {
                let mut st = shared.lock();
                let plan = if local_only { st.engine.plan_local(net, &main) } else { st.engine.plan(net, &main) };
                let route = plan.routes[0];
                st.observe(route == ExitPoint::Cloud);
                (route, st.cuts.as_ref().map(|t| (t.placement_for(req.device), t.wire_for(req.device))))
            }
        };
        match route {
            ExitPoint::Cloud => {
                let parked = PendingCloud::from_main(net, &main, 0, req.truth);
                let idx = next_cloud_idx(req.device);
                if !offload_to_cloud(
                    cfg,
                    spec,
                    cloud_prefix,
                    &job,
                    placement,
                    parked,
                    idx,
                    transport,
                    pending,
                    grids,
                    peer,
                ) {
                    return;
                }
            }
            exit => {
                let prediction = match exit {
                    ExitPoint::Extension => RoutingEngine::finish_extension(net, &req.image, &main, &[0])[0],
                    _ => main.preds[0],
                };
                let record = RoutingEngine::local_record(net, &main, 0, exit, prediction, req.truth);
                let completion = Completion {
                    req_id: job.req_id,
                    device: req.device,
                    seq: req.seq,
                    record,
                    latency_s: job.due.elapsed().as_secs_f64(),
                };
                // Local completions count toward the governor's live
                // latency windows too — the SLA covers every request,
                // not just offloads.
                if governed {
                    shared.lock().record_latency(spec.class_of(req.device), completion.latency_s);
                }
                done_tx.send(completion).expect("collector alive");
            }
        }
    }
}
