//! Quickstart: train a MEANet on a tiny synthetic dataset and run
//! complexity-aware inference, end to end, in under a minute.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use mea_data::presets;
use meanet::pipeline::{BackboneChoice, Pipeline, PipelineConfig};
use meanet::stats::ExitStats;

fn main() {
    // 1. A six-class synthetic dataset with built-in hard classes.
    let bundle = presets::tiny(42);
    println!(
        "dataset: {} train / {} test instances, {} classes",
        bundle.train.len(),
        bundle.test.len(),
        bundle.train.num_classes
    );

    // 2. Configure the distributed system: model B MEANet at the edge,
    //    deeper ResNet at the cloud.
    let mut cfg = PipelineConfig::repro_resnet_b(6, 8, 42);
    if let BackboneChoice::CifarResNet(ref mut c) = cfg.backbone {
        c.input_hw = 8; // the tiny preset uses 8x8 images
    }
    if let Some(BackboneChoice::CifarResNet(ref mut c)) = cfg.cloud {
        c.input_hw = 8;
    }

    // 3. Algorithm 1: cloud pretraining, hard-class selection, blockwise
    //    edge training.
    let mut pipe = Pipeline::run(&cfg, &bundle.train);
    println!("hard classes (lowest validation precision first): {:?}", pipe.hard_classes);
    println!(
        "entropy threshold range (mu_correct, mu_wrong) = ({:.3}, {:.3})",
        pipe.entropy.mean_correct, pipe.entropy.mean_wrong
    );

    // 4. Algorithm 2, edge-only: early exits at the main block for easy
    //    classes, extension block for hard ones.
    let dict = pipe.net.hard_dict().expect("pipeline trains edge blocks").clone();
    let records = pipe.infer_edge_only(&bundle.test, 8);
    let stats = ExitStats::from_records(&records, &dict);
    println!(
        "edge-only:   accuracy {:.1}%, exits main/extension = {}/{}",
        100.0 * stats.accuracy,
        stats.main_exits,
        stats.extension_exits
    );

    // 5. Algorithm 2 with the cloud: complex (high-entropy) instances are
    //    offloaded.
    let threshold = pipe.entropy.suggested_threshold() as f32;
    let records = pipe.infer_distributed(&bundle.test, threshold, 8);
    let stats = ExitStats::from_records(&records, &dict);
    println!(
        "edge-cloud:  accuracy {:.1}%, {:.1}% of instances sent to the cloud (threshold {threshold:.3})",
        100.0 * stats.accuracy,
        100.0 * stats.cloud_fraction()
    );
}
