//! Wire codec for quantized tensors: the 8-bit feature format offloaded
//! activations travel in.
//!
//! The paper flags that f32 feature maps are often *larger* than the raw
//! image for small inputs — the reason it ships pixels. Quantizing the
//! activation to int8 removes that 4× penalty, so a deep partition cut
//! can beat the raw-image upload on bytes *and* spare the cloud the
//! prefix recompute. This module fixes the byte layout (everything
//! little-endian):
//!
//! | field       | size                | meaning                              |
//! |-------------|---------------------|--------------------------------------|
//! | scheme      | 1 byte              | 0 affine, 1 symmetric, 2 per-channel |
//! | channels    | 4 bytes (u32)       | parameter channel count `n`          |
//! | scales      | 4·`n` bytes (f32)   | one per channel                      |
//! | zero points | 4·`n` bytes (i32)   | one per channel                      |
//! | rank        | 1 byte              | tensor rank `r`                      |
//! | dims        | 4·`r` bytes (u32)   | dimension sizes                      |
//! | data        | `numel` bytes (i8)  | the quantized elements               |
//!
//! For a per-tensor activation the header is 14 + 4·`r` bytes (one more
//! for the payload tag when framed inside `mea_edgecloud`'s `Payload`) —
//! noise next to the 4× payload shrink on anything bigger than a few
//! dozen elements.

use crate::qparams::{QScheme, QuantParams};
use crate::qtensor::QTensor;
use mea_tensor::Tensor;

/// Ships one f32 activation across the int8 wire end-to-end: quantize on
/// the affine per-tensor grid (parameters from the tensor's own range),
/// encode the frame, decode it back, and dequantize — returning exactly
/// the tensor the receiving side computes on, plus the frame's length in
/// bytes.
///
/// This is the single primitive both offload paths share: the serving
/// runtime's `Payload::QuantFeatures` and the offline sweep's
/// quantized-feature mode produce bitwise-identical activations because
/// they both reduce to this round trip (the codec is exact, so the only
/// loss is the quantization grid itself).
pub fn ship_affine(t: &Tensor) -> (Tensor, u64) {
    let q = QTensor::quantize(t, QuantParams::affine_from_range(t.min(), t.max()));
    let buf = encode(&q);
    let (back, consumed) = decode(&buf);
    debug_assert_eq!(consumed, buf.len(), "wire frame decoded short");
    (back.dequantize(), buf.len() as u64)
}

/// Bytes [`encode`] produces for `t` (header + one byte per element).
pub fn encoded_len(t: &QTensor) -> u64 {
    let n = t.params().channels() as u64;
    // scheme (1) + channel count (4) + scales/zero-points (8n) + rank (1)
    // + dims (4r) + data (numel).
    6 + 8 * n + 4 * t.dims().len() as u64 + t.numel() as u64
}

/// Encodes a quantized tensor, appending to `out`.
pub fn encode_into(t: &QTensor, out: &mut Vec<u8>) {
    out.reserve(encoded_len(t) as usize);
    let scheme = match t.params().scheme() {
        QScheme::AffinePerTensor => 0u8,
        QScheme::SymmetricPerTensor => 1,
        QScheme::SymmetricPerChannel => 2,
    };
    out.push(scheme);
    let n = t.params().channels();
    out.extend_from_slice(&(n as u32).to_le_bytes());
    for c in 0..n {
        out.extend_from_slice(&t.params().scale(c).to_le_bytes());
    }
    for c in 0..n {
        out.extend_from_slice(&t.params().zero_point(c).to_le_bytes());
    }
    out.push(t.dims().len() as u8);
    for &d in t.dims() {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    out.extend(t.as_slice().iter().map(|&q| q as u8));
}

/// Encodes a quantized tensor into a fresh buffer.
pub fn encode(t: &QTensor) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(t, &mut out);
    out
}

/// Decodes a buffer produced by [`encode`], returning the tensor and the
/// number of bytes consumed (so the codec can be embedded in a larger
/// frame).
///
/// # Panics
///
/// Panics on a malformed buffer: unknown scheme tag, truncated data, or
/// parameter parts [`QuantParams::from_parts`] rejects.
pub fn decode(buf: &[u8]) -> (QTensor, usize) {
    let mut pos = 0usize;
    let mut take = |n: usize| {
        let s = buf.get(pos..pos + n).expect("truncated quantized-tensor wire buffer");
        pos += n;
        s
    };
    let scheme = match take(1)[0] {
        0 => QScheme::AffinePerTensor,
        1 => QScheme::SymmetricPerTensor,
        2 => QScheme::SymmetricPerChannel,
        t => panic!("unknown quantization scheme tag {t}"),
    };
    let n = u32::from_le_bytes(take(4).try_into().unwrap()) as usize;
    let scales: Vec<f32> = (0..n).map(|_| f32::from_le_bytes(take(4).try_into().unwrap())).collect();
    let zero_points: Vec<i32> = (0..n).map(|_| i32::from_le_bytes(take(4).try_into().unwrap())).collect();
    let rank = take(1)[0] as usize;
    let dims: Vec<usize> = (0..rank).map(|_| u32::from_le_bytes(take(4).try_into().unwrap()) as usize).collect();
    let numel: usize = dims.iter().product();
    let data: Vec<i8> = take(numel).iter().map(|&b| b as i8).collect();
    let t = QTensor::from_parts(data, dims, QuantParams::from_parts(scheme, scales, zero_points));
    (t, pos)
}

/// Bytes [`encode_indexed_into`] produces for `t`: rank (1) + dims (4·r)
/// + data (numel). No parameter block — the grid travels out of band.
pub fn indexed_encoded_len(t: &QTensor) -> u64 {
    1 + 4 * t.dims().len() as u64 + t.numel() as u64
}

/// Encodes a quantized tensor **without its parameters**, appending to
/// `out`. The receiving side must already hold the same [`QuantParams`]
/// (a calibrated grid shared out of band) and pass them to
/// [`decode_indexed`]. This is what makes a per-channel activation frame
/// *smaller* than a per-tensor one: the per-channel scale table — 8 bytes
/// per channel on the self-describing wire — is hoisted out of every
/// frame entirely.
pub fn encode_indexed_into(t: &QTensor, out: &mut Vec<u8>) {
    out.reserve(indexed_encoded_len(t) as usize);
    out.push(t.dims().len() as u8);
    for &d in t.dims() {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    out.extend(t.as_slice().iter().map(|&q| q as u8));
}

/// Decodes a buffer produced by [`encode_indexed_into`] against an
/// out-of-band parameter grid, returning the tensor and the bytes
/// consumed. The result is bitwise-identical to the [`QTensor`] that was
/// encoded, provided `params` is the same grid the sender used.
///
/// # Panics
///
/// Panics on a truncated buffer, or if `params` is per-channel and its
/// channel count differs from the frame's leading dimension.
pub fn decode_indexed(buf: &[u8], params: &QuantParams) -> (QTensor, usize) {
    let mut pos = 0usize;
    let mut take = |n: usize| {
        let s = buf.get(pos..pos + n).expect("truncated indexed quantized-tensor wire buffer");
        pos += n;
        s
    };
    let rank = take(1)[0] as usize;
    let dims: Vec<usize> = (0..rank).map(|_| u32::from_le_bytes(take(4).try_into().unwrap()) as usize).collect();
    let numel: usize = dims.iter().product();
    let data: Vec<i8> = take(numel).iter().map(|&b| b as i8).collect();
    if params.scheme() == QScheme::SymmetricPerChannel {
        assert_eq!(
            params.channels(),
            dims.first().copied().unwrap_or(0),
            "indexed frame's channel axis does not match the shared grid"
        );
    }
    (QTensor::from_parts(data, dims, params.clone()), pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_tensor::{Rng, Tensor};

    fn sample(seed: u64) -> QTensor {
        let mut rng = Rng::new(seed);
        let t = Tensor::randn([2, 3, 4, 4], 1.0, &mut rng);
        QTensor::quantize(&t, QuantParams::affine_from_range(t.min(), t.max()))
    }

    #[test]
    fn round_trip_is_lossless() {
        let q = sample(0);
        let buf = encode(&q);
        assert_eq!(buf.len() as u64, encoded_len(&q));
        let (back, consumed) = decode(&buf);
        assert_eq!(consumed, buf.len());
        assert_eq!(back, q, "int8 wire round trip must be exact");
        assert_eq!(back.dequantize(), q.dequantize());
    }

    #[test]
    fn per_channel_round_trips() {
        let t = Tensor::from_vec(vec![0.01, -0.02, 10.0, -8.0], &[2, 2]).unwrap();
        let q = QTensor::quantize_per_channel(&t, QuantParams::symmetric_per_channel(&[0.02, 10.0]));
        let (back, _) = decode(&encode(&q));
        assert_eq!(back, q);
    }

    #[test]
    fn embedded_decode_reports_consumed_bytes() {
        let q = sample(1);
        let mut framed = encode(&q);
        framed.extend_from_slice(&[0xAB; 7]); // trailing frame bytes
        let (back, consumed) = decode(&framed);
        assert_eq!(back, q);
        assert_eq!(consumed, framed.len() - 7);
    }

    #[test]
    fn wire_is_4x_smaller_than_f32_plus_header() {
        let q = sample(2);
        let f32_bytes = 4 * q.numel() as u64;
        assert!(encoded_len(&q) < f32_bytes / 2, "int8 wire should crush the f32 encoding");
    }

    #[test]
    fn ship_affine_matches_manual_round_trip() {
        let mut rng = Rng::new(4);
        let t = Tensor::randn([1, 3, 5, 5], 1.0, &mut rng);
        let (shipped, bytes) = ship_affine(&t);
        // Same grid, same frame: shipping is exactly quantize → dequantize.
        let q = QTensor::quantize(&t, QuantParams::affine_from_range(t.min(), t.max()));
        assert_eq!(shipped, q.dequantize());
        assert_eq!(bytes, encoded_len(&q));
        assert_eq!(shipped.dims(), t.dims());
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_buffer_rejected() {
        let q = sample(3);
        let buf = encode(&q);
        let _ = decode(&buf[..buf.len() - 1]);
    }

    #[test]
    fn indexed_round_trip_is_exact_per_channel() {
        let mut rng = Rng::new(5);
        let t = Tensor::randn([6, 3, 4], 1.0, &mut rng);
        let absmax: Vec<f32> =
            t.as_slice().chunks(12).map(|c| c.iter().fold(0.0f32, |m, &x| m.max(x.abs()))).collect();
        let params = QuantParams::symmetric_per_channel(&absmax);
        let q = QTensor::quantize_per_channel(&t, params.clone());
        let mut buf = Vec::new();
        encode_indexed_into(&q, &mut buf);
        assert_eq!(buf.len() as u64, indexed_encoded_len(&q));
        let (back, consumed) = decode_indexed(&buf, &params);
        assert_eq!(consumed, buf.len());
        assert_eq!(back, q, "indexed wire round trip must be exact");
    }

    #[test]
    fn indexed_frame_is_smaller_than_self_describing_frame() {
        // The whole point of the out-of-band grid: a per-channel frame
        // drops 5 + 8n header bytes relative to the self-describing wire.
        let t = Tensor::from_vec(vec![0.01, -0.02, 10.0, -8.0], &[2, 2]).unwrap();
        let q = QTensor::quantize_per_channel(&t, QuantParams::symmetric_per_channel(&[0.02, 10.0]));
        assert_eq!(indexed_encoded_len(&q) + 5 + 8 * 2, encoded_len(&q));
    }

    #[test]
    #[should_panic(expected = "does not match the shared grid")]
    fn indexed_decode_rejects_mismatched_grid() {
        let t = Tensor::from_vec(vec![0.01, -0.02, 10.0, -8.0], &[2, 2]).unwrap();
        let params = QuantParams::symmetric_per_channel(&[0.02, 10.0]);
        let q = QTensor::quantize_per_channel(&t, params);
        let mut buf = Vec::new();
        encode_indexed_into(&q, &mut buf);
        let wrong = QuantParams::symmetric_per_channel(&[0.02, 10.0, 1.0]);
        let _ = decode_indexed(&buf, &wrong);
    }

    #[test]
    #[should_panic(expected = "truncated indexed")]
    fn indexed_truncated_buffer_rejected() {
        let q = sample(6);
        let mut buf = Vec::new();
        encode_indexed_into(&q, &mut buf);
        let _ = decode_indexed(&buf[..buf.len() - 1], q.params());
    }
}
