//! Cross-crate integration: the full Algorithm 1 deployment over a real
//! inter-thread byte channel — cloud trains, serializes and "uploads";
//! edge downloads, restores, and trains its local blocks.

use mea_data::{presets, ClassDict};
use mea_nn::layer::Mode;
use mea_nn::models::{resnet_cifar, CifarResNetConfig};
use mea_nn::{StateDict, StateDictError};
use mea_tensor::{Rng, Tensor};
use meanet::model::{AdaptivePlan, MeaNet, Merge, Variant};
use meanet::train::{build_hard_dataset, train_backbone, train_edge_blocks, TrainConfig};
use std::sync::mpsc;
use std::thread;

fn arch() -> CifarResNetConfig {
    let mut cfg = CifarResNetConfig::repro_scale(6);
    cfg.input_hw = 8;
    cfg
}

fn assemble(seed: u64) -> MeaNet {
    let mut rng = Rng::new(seed);
    MeaNet::from_backbone(
        resnet_cifar(&arch(), &mut rng),
        Variant::FullBackbone { extension_channels: 16, extension_blocks: 1 },
        Merge::Sum,
        &mut rng,
    )
}

#[test]
fn cloud_to_edge_download_over_a_channel() {
    let bundle = presets::tiny(70);
    let dict = ClassDict::new(&[0, 2, 4]);
    let (tx, rx) = mpsc::channel::<Vec<u8>>();

    // Cloud thread: train the backbone, assemble the MEANet, upload the
    // main block + exit as MEAW bytes, and report reference logits.
    let train = bundle.train.clone();
    let cloud = thread::spawn(move || {
        let mut rng = Rng::new(70);
        let mut backbone = resnet_cifar(&arch(), &mut rng);
        let _ = train_backbone(&mut backbone, &train, &TrainConfig::repro(6));
        let mut net = MeaNet::from_backbone(
            backbone,
            Variant::FullBackbone { extension_channels: 16, extension_blocks: 1 },
            Merge::Sum,
            &mut rng,
        );
        let wire = net.main_state_dict().encode();
        tx.send(wire.to_vec()).expect("edge is listening");
        // Reference logits for a fixed probe so the edge can verify.
        let probe = Tensor::randn([2, 3, 8, 8], 1.0, &mut Rng::new(71));
        net.main_logits(&probe, Mode::Eval)
    });

    // Edge side: receive, decode, restore into a blank model.
    let bytes = rx.recv().expect("download arrives");
    let dict_bytes_len = bytes.len();
    let downloaded = StateDict::decode(bytes::Bytes::from(bytes)).expect("clean channel");
    let mut edge = assemble(9999);
    edge.load_main_state_dict(&downloaded).expect("architectures match");

    let reference = cloud.join().expect("cloud thread finished");
    let probe = Tensor::randn([2, 3, 8, 8], 1.0, &mut Rng::new(71));
    let local = edge.main_logits(&probe, Mode::Eval);
    assert_eq!(local, reference, "edge model must replicate the cloud's logits bit-for-bit");
    assert!(dict_bytes_len > 1000, "sanity: a real model crossed the wire");

    // The edge then trains its blocks locally on hard-class data only.
    edge.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, dict.clone(), &mut Rng::new(72));
    let hard = build_hard_dataset(&bundle.train, &dict);
    let stats = train_edge_blocks(&mut edge, &hard, &TrainConfig::repro(6));
    assert!(
        stats.last().unwrap().accuracy > stats.first().unwrap().accuracy - 0.05,
        "local edge training regressed: {stats:?}"
    );
}

#[test]
fn corrupted_download_is_rejected_and_model_untouched() {
    let mut net = assemble(80);
    let good = net.main_state_dict();
    let mut bytes = good.encode().to_vec();
    bytes.truncate(bytes.len() / 2);
    assert_eq!(StateDict::decode(bytes::Bytes::from(bytes)).unwrap_err(), StateDictError::Truncated);

    // Loading a dict from a *different* architecture must fail cleanly.
    let mut big_cfg = arch();
    big_cfg.channels = [16, 24, 32];
    let mut rng = Rng::new(81);
    let other = MeaNet::from_backbone(
        resnet_cifar(&big_cfg, &mut rng),
        Variant::FullBackbone { extension_channels: 16, extension_blocks: 1 },
        Merge::Sum,
        &mut rng,
    );
    let mut other = other;
    let foreign = other.main_state_dict();
    let probe = Tensor::randn([1, 3, 8, 8], 1.0, &mut Rng::new(82));
    let before = net.main_logits(&probe, Mode::Eval);
    assert!(net.load_main_state_dict(&foreign).is_err());
    let after = net.main_logits(&probe, Mode::Eval);
    assert_eq!(before, after, "failed load must leave the model unchanged");
}
