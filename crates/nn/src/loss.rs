//! Softmax cross-entropy loss, fused with its gradient.

use mea_tensor::{ops, Tensor};

/// Softmax cross-entropy over integer class labels.
///
/// `forward` returns the mean loss, the gradient with respect to the logits
/// (already divided by the batch size) and the softmax probabilities — the
/// probabilities are exactly what the MEANet inference engine needs for
/// confidence and entropy, so they are exposed instead of recomputed.
#[derive(Debug, Default, Clone, Copy)]
pub struct CrossEntropyLoss;

/// Result of a cross-entropy evaluation.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean negative log-likelihood across the batch.
    pub loss: f64,
    /// Gradient of the mean loss w.r.t. the logits, `[N, K]`.
    pub grad: Tensor,
    /// Softmax probabilities, `[N, K]`.
    pub probs: Tensor,
}

impl CrossEntropyLoss {
    /// Creates the loss. Stateless; exists for API symmetry.
    pub fn new() -> Self {
        CrossEntropyLoss
    }

    /// Evaluates loss, gradient and probabilities for `logits: [N, K]` and
    /// `labels` (length `N`, each `< K`).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or a label is out of range.
    pub fn forward(&self, logits: &Tensor, labels: &[usize]) -> LossOutput {
        assert_eq!(logits.shape().rank(), 2, "cross-entropy expects [N, K] logits, got {}", logits.shape());
        let (n, k) = (logits.dims()[0], logits.dims()[1]);
        assert_eq!(labels.len(), n, "expected {n} labels, got {}", labels.len());

        let log_probs = ops::log_softmax_rows(logits);
        let probs = log_probs.map(f32::exp);
        let mut grad = probs.clone();
        let mut loss = 0.0f64;
        let inv_n = 1.0 / n as f32;
        {
            let g = grad.as_mut_slice();
            for (i, &label) in labels.iter().enumerate() {
                assert!(label < k, "label {label} out of range for {k} classes");
                loss -= log_probs.row(i)[label] as f64;
                g[i * k + label] -= 1.0;
            }
            for v in g.iter_mut() {
                *v *= inv_n;
            }
        }
        LossOutput { loss: loss / n as f64, grad, probs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_tensor::Rng;

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0, 0.0, 20.0, 0.0], &[2, 3]).unwrap();
        let out = CrossEntropyLoss::new().forward(&logits, &[0, 1]);
        assert!(out.loss < 1e-6, "loss {}", out.loss);
    }

    #[test]
    fn uniform_prediction_loss_is_log_k() {
        let logits = Tensor::zeros([4, 10]);
        let out = CrossEntropyLoss::new().forward(&logits, &[0, 3, 5, 9]);
        assert!((out.loss - (10.0f64).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_softmax_minus_onehot() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5], &[1, 3]).unwrap();
        let out = CrossEntropyLoss::new().forward(&logits, &[2]);
        let p = out.probs.row(0);
        assert!((out.grad.row(0)[0] - p[0]).abs() < 1e-6);
        assert!((out.grad.row(0)[2] - (p[2] - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn numerical_gradient_check() {
        let mut rng = Rng::new(0);
        let logits = Tensor::randn([3, 5], 1.0, &mut rng);
        let labels = [1usize, 4, 0];
        let loss_fn = |l: &Tensor| CrossEntropyLoss::new().forward(l, &labels).loss;
        let out = CrossEntropyLoss::new().forward(&logits, &labels);
        let eps = 1e-3f32;
        for idx in [0usize, 6, 14] {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let num = (loss_fn(&lp) - loss_fn(&lm)) / (2.0 * eps as f64);
            let ana = out.grad.as_slice()[idx] as f64;
            assert!((num - ana).abs() < 1e-4, "{num} vs {ana}");
        }
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        // softmax − onehot always sums to zero per row.
        let mut rng = Rng::new(1);
        let logits = Tensor::randn([4, 7], 2.0, &mut rng);
        let out = CrossEntropyLoss::new().forward(&logits, &[0, 1, 2, 3]);
        for i in 0..4 {
            let s: f32 = out.grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        let logits = Tensor::zeros([1, 3]);
        CrossEntropyLoss::new().forward(&logits, &[3]);
    }
}
