//! The per-instance routing core of Algorithm 2, factored out of the
//! offline sweep so online serving paths can reuse it.
//!
//! [`crate::infer::run_inference_with_policy`] (the offline evaluation
//! sweep) and `mea_edgecloud`'s serving runtime both route instances the
//! same way: run the main block, consult the [`OffloadPolicy`], send
//! complex instances to the cloud, detected-hard instances through the
//! adaptive + extension path, and let everything else exit at the main
//! block. [`RoutingEngine`] owns that decision plus the two local
//! execution legs, and [`PendingCloud`] carries a half-finished record to
//! wherever the cloud prediction is eventually produced — in-process for
//! the sweep, on a cloud worker thread for the server. One routing core,
//! two substrates, provably identical records.

use crate::infer::{ExitPoint, InstanceRecord};
use crate::model::MeaNet;
use crate::policy::OffloadPolicy;
use mea_nn::layer::Mode;
use mea_nn::models::SegmentedCnn;
use mea_tensor::{ops, Tensor};
use serde::{Deserialize, Serialize};

/// What an offloaded instance carries across the edge→cloud wire in the
/// *offline* evaluation sweep — the measured counterpart of Table I's
/// strategy rows, mirroring the serving runtime's `PayloadPlan` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SweepPayload {
    /// Raw pixels: the cloud recomputes its whole network from the input
    /// (the paper's chosen collaboration mode, §III-C). Accounted at the
    /// paper's 1 byte per sample (Table VII's `C·H·W`).
    #[default]
    Pixels,
    /// The cloud network's f32 activation at cut layer `cut`: the edge
    /// runs the prefix `[0, cut)`, the cloud resumes at `cut`
    /// ([`SegmentedCnn::forward_prefix`] / [`SegmentedCnn::forward_from`],
    /// bitwise identical to the monolithic forward). Accounted at 4 bytes
    /// per activation element — Table I's "sending features" row,
    /// measured instead of modelled.
    Features {
        /// Cloud-network cut layer (`0` degenerates to shipping the raw
        /// input tensor).
        cut: usize,
    },
    /// The activation at `cut`, int8 through the `mea_quant::wire` codec
    /// (per-instance affine grid, exactly the serving runtime's
    /// `Payload::QuantFeatures` wire). Accounted at the codec's real
    /// frame length.
    QuantFeatures {
        /// Cloud-network cut layer.
        cut: usize,
    },
}

impl SweepPayload {
    /// The cut layer the cloud resumes at (`0` for pixels).
    pub fn cut(&self) -> usize {
        match *self {
            SweepPayload::Pixels => 0,
            SweepPayload::Features { cut } | SweepPayload::QuantFeatures { cut } => cut,
        }
    }
}

/// Main-exit statistics for one batch of instances: everything the
/// routing decision and the downstream legs need from the main block.
#[derive(Debug)]
pub struct MainExit {
    /// Main-block feature maps `F` for the batch.
    pub features: Tensor,
    /// Softmax probabilities at the main exit.
    pub probs: Tensor,
    /// Prediction entropy per instance.
    pub entropies: Vec<f32>,
    /// Main-exit argmax prediction per instance.
    pub preds: Vec<usize>,
}

impl MainExit {
    /// Number of instances in the batch.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }
}

/// Planned exit per instance of a batch, before the extension and cloud
/// legs have produced their predictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePlan {
    /// Planned exit per instance, in batch order.
    pub routes: Vec<ExitPoint>,
}

impl RoutePlan {
    /// Batch indices routed to the cloud, in batch order.
    pub fn cloud_indices(&self) -> Vec<usize> {
        self.indices_of(ExitPoint::Cloud)
    }

    /// Batch indices routed through the extension path, in batch order.
    pub fn extension_indices(&self) -> Vec<usize> {
        self.indices_of(ExitPoint::Extension)
    }

    fn indices_of(&self, exit: ExitPoint) -> Vec<usize> {
        self.routes.iter().enumerate().filter(|(_, &r)| r == exit).map(|(i, _)| i).collect()
    }
}

/// A routed instance whose prediction the cloud still owes: the partial
/// [`InstanceRecord`] travels with the offloaded payload and is completed
/// wherever the cloud forward runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingCloud {
    /// True class.
    pub truth: usize,
    /// Main-exit entropy.
    pub entropy: f32,
    /// The main exit's own prediction.
    pub main_prediction: usize,
    /// Whether `IsHard(main_prediction)` fired.
    pub detected_hard: bool,
    /// Cloud-network layer the forward resumes at: `0` means the payload
    /// is the input image (the cloud computes from pixels); `k > 0` means
    /// the edge already ran the cloud network's prefix `[0, k)` and the
    /// payload is the activation at the cut.
    pub resume_layer: usize,
}

impl PendingCloud {
    /// Sentinel `main_prediction` of a pre-committed offload: the main
    /// exit was never evaluated, so there is no prediction to carry.
    pub const PRECOMMITTED: usize = usize::MAX;

    /// A pre-committed offload: the difficulty predictor routed this
    /// instance to the cloud *without* evaluating the main exit, so the
    /// record carries sentinels instead of main-exit statistics —
    /// `entropy` is the predictor's entropy estimate,
    /// `main_prediction` is [`PendingCloud::PRECOMMITTED`], and
    /// `detected_hard` is `false` (the hard-class detector never ran).
    /// The resume point defaults to `0`; feature-payload paths override
    /// it with [`PendingCloud::resume_at`].
    pub fn precommit(truth: usize, predicted_entropy: f32) -> PendingCloud {
        PendingCloud {
            truth,
            entropy: predicted_entropy,
            main_prediction: Self::PRECOMMITTED,
            detected_hard: false,
            resume_layer: 0,
        }
    }

    /// Whether this offload was pre-committed by a difficulty predictor
    /// (its record carries sentinel main-exit fields).
    pub fn is_precommitted(&self) -> bool {
        self.main_prediction == Self::PRECOMMITTED
    }

    /// Captures the main-exit side of instance `i`'s record. The resume
    /// point defaults to `0` (cloud computes from pixels); feature-payload
    /// paths override it with [`PendingCloud::resume_at`].
    pub fn from_main(net: &MeaNet, main: &MainExit, i: usize, truth: usize) -> PendingCloud {
        PendingCloud {
            truth,
            entropy: main.entropies[i],
            main_prediction: main.preds[i],
            detected_hard: net.is_hard(main.preds[i]),
            resume_layer: 0,
        }
    }

    /// Marks the payload as the cloud network's activation at layer
    /// `cut`, so the cloud resumes its forward there instead of
    /// recomputing the prefix.
    pub fn resume_at(mut self, cut: usize) -> PendingCloud {
        self.resume_layer = cut;
        self
    }

    /// Completes the record with the cloud's prediction.
    pub fn complete(self, prediction: usize) -> InstanceRecord {
        InstanceRecord {
            truth: self.truth,
            prediction,
            exit: ExitPoint::Cloud,
            entropy: self.entropy,
            main_prediction: self.main_prediction,
            detected_hard: self.detected_hard,
            correct: prediction == self.truth,
        }
    }
}

/// The shared routing core: a policy plus the knowledge of whether a cloud
/// is reachable at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingEngine {
    policy: OffloadPolicy,
    cloud_available: bool,
}

impl RoutingEngine {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the policy can offload but no cloud is available —
    /// routing would silently degrade instead of honouring the policy.
    pub fn new(policy: OffloadPolicy, cloud_available: bool) -> RoutingEngine {
        assert!(policy.is_edge_only() || cloud_available, "an offloading policy requires a cloud model");
        RoutingEngine { policy, cloud_available }
    }

    /// The current offload policy.
    pub fn policy(&self) -> OffloadPolicy {
        self.policy
    }

    /// Replaces the offload policy at runtime (the serving path does this
    /// when a [`crate::runtime::ThresholdController`] retunes the entropy
    /// threshold between windows).
    ///
    /// # Panics
    ///
    /// Panics if the new policy can offload but the engine has no cloud.
    pub fn set_policy(&mut self, policy: OffloadPolicy) {
        assert!(policy.is_edge_only() || self.cloud_available, "an offloading policy requires a cloud model");
        self.policy = policy;
    }

    /// Runs the main block + exit over a batch, producing the statistics
    /// every routing decision consumes. Pure evaluation — identical for
    /// the offline sweep and the server.
    pub fn evaluate_main(net: &mut MeaNet, images: &Tensor) -> MainExit {
        let features = net.main_features(images, Mode::Eval);
        let logits = net.main_logits_from(&features, Mode::Eval);
        let probs = ops::softmax_rows(&logits);
        let entropies = ops::entropy_rows(&probs);
        let preds = probs.argmax_rows();
        MainExit { features, probs, entropies, preds }
    }

    /// Decides every instance's exit: cloud when the policy fires (and a
    /// cloud exists), extension when the main prediction is a hard class,
    /// main otherwise.
    ///
    /// # Panics
    ///
    /// Panics if edge blocks are not attached to `net`.
    pub fn plan(&self, net: &MeaNet, main: &MainExit) -> RoutePlan {
        let routes = (0..main.len())
            .map(|i| {
                if self.cloud_available && self.policy.should_offload(main.probs.row(i), main.entropies[i]) {
                    ExitPoint::Cloud
                } else if net.is_hard(main.preds[i]) {
                    ExitPoint::Extension
                } else {
                    ExitPoint::Main
                }
            })
            .collect();
        RoutePlan { routes }
    }

    /// Whether a request predicted at `difficulty` should pre-commit to
    /// the cloud leg without evaluating the main exit: only `Hard`
    /// predictions, only when a cloud is reachable, and only if the
    /// policy can offload at all — a [`OffloadPolicy::Never`] deployment
    /// keeps every instance local, difficulty predictor or not.
    pub fn wants_precommit(&self, difficulty: crate::difficulty::Difficulty) -> bool {
        difficulty == crate::difficulty::Difficulty::Hard && self.cloud_available && !self.policy.is_edge_only()
    }

    /// Plans a batch *local-only*: extension when the main prediction is
    /// a hard class, main otherwise — the offload decision is skipped
    /// entirely. This is the `Easy` difficulty band's plan: detection
    /// quality is preserved (the hard-class detector still runs on the
    /// main prediction) while the cloud machinery never engages.
    ///
    /// # Panics
    ///
    /// Panics if edge blocks are not attached to `net`.
    pub fn plan_local(&self, net: &MeaNet, main: &MainExit) -> RoutePlan {
        let routes = (0..main.len())
            .map(|i| if net.is_hard(main.preds[i]) { ExitPoint::Extension } else { ExitPoint::Main })
            .collect();
        RoutePlan { routes }
    }

    /// Runs the adaptive + extension leg for the sub-batch `indices` and
    /// arbitrates each instance between the two exits by confidence,
    /// returning final predictions (original label space) in `indices`
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if edge blocks are not attached.
    pub fn finish_extension(net: &mut MeaNet, images: &Tensor, main: &MainExit, indices: &[usize]) -> Vec<usize> {
        if indices.is_empty() {
            return Vec::new();
        }
        let sub_x = images.gather_axis0(indices);
        let sub_f = main.features.gather_axis0(indices);
        let logits2 = net.extension_logits(&sub_x, &sub_f, Mode::Eval);
        let probs2 = ops::softmax_rows(&logits2);
        let preds2 = probs2.argmax_rows();
        let dict = net.hard_dict().expect("edge blocks attached");
        indices
            .iter()
            .enumerate()
            .map(|(j, &i)| {
                let conf1 = main.probs.row(i).iter().cloned().fold(0.0f32, f32::max);
                let conf2 = probs2.row(j).iter().cloned().fold(0.0f32, f32::max);
                if conf1 > conf2 {
                    main.preds[i]
                } else {
                    dict.to_original(preds2[j])
                }
            })
            .collect()
    }

    /// Runs the cloud network over an already-gathered sub-batch and
    /// returns its predictions — the one batched forward both the offline
    /// sweep and the dynamic-batching cloud worker perform.
    pub fn classify_cloud(cloud: &mut SegmentedCnn, images: &Tensor) -> Vec<usize> {
        cloud.forward(images, Mode::Eval).argmax_rows()
    }

    /// Resumes the cloud network at `resume_layer` over a batch of
    /// activations shipped from the edge (see
    /// [`PendingCloud::resume_layer`]) and returns its predictions.
    /// `resume_layer == 0` is exactly [`RoutingEngine::classify_cloud`]:
    /// suffix execution is bitwise identical to the full forward
    /// (asserted in `mea-nn`), so feature payloads cannot change a
    /// prediction — they only cut the cloud's recompute.
    pub fn classify_cloud_from(cloud: &mut SegmentedCnn, activations: &Tensor, resume_layer: usize) -> Vec<usize> {
        cloud.forward_from(activations, resume_layer, Mode::Eval).argmax_rows()
    }

    /// Runs the cloud leg of the offline sweep for a gathered sub-batch
    /// under a [`SweepPayload`] mode, returning the predictions and the
    /// bytes that crossed the (virtual) wire.
    ///
    /// * [`SweepPayload::Pixels`] is exactly
    ///   [`RoutingEngine::classify_cloud`], accounted at the paper's
    ///   1 byte per input sample.
    /// * [`SweepPayload::Features`] runs the prefix once over the
    ///   sub-batch (eval forwards are bitwise per-sample independent) and
    ///   resumes at the cut; 4 bytes per activation element.
    /// * [`SweepPayload::QuantFeatures`] quantizes each instance's
    ///   activation on its *own* affine grid through
    ///   `mea_quant::wire::ship_affine` — the same per-request round trip
    ///   the serving runtime's int8 wire performs, so the two paths see
    ///   bitwise-identical dequantized activations — then resumes the
    ///   batched forward at the cut.
    ///
    /// # Panics
    ///
    /// Panics if a feature cut is out of range for `cloud`.
    pub fn classify_cloud_payload(
        cloud: &mut SegmentedCnn,
        images: &Tensor,
        payload: SweepPayload,
    ) -> (Vec<usize>, u64) {
        let check_cut = |cut: usize| {
            let layers = cloud.cut_layer_count();
            assert!(cut < layers, "sweep cut {cut} out of range (cloud network has {layers} cut layers)");
        };
        match payload {
            SweepPayload::Pixels => (Self::classify_cloud(cloud, images), images.numel() as u64),
            SweepPayload::Features { cut } => {
                check_cut(cut);
                let activation = cloud.forward_prefix(images, cut, Mode::Eval);
                let bytes = 4 * activation.numel() as u64;
                (Self::classify_cloud_from(cloud, &activation, cut), bytes)
            }
            SweepPayload::QuantFeatures { cut } => {
                check_cut(cut);
                // One batched prefix forward (bitwise identical to
                // per-instance prefixes — eval forwards are per-sample
                // independent), then quantize each instance's slice on
                // its own affine grid, exactly like the serving wire.
                let activations = cloud.forward_prefix(images, cut, Mode::Eval);
                let n = activations.dims()[0];
                let mut bytes = 0u64;
                let mut parts = Vec::with_capacity(n);
                for i in 0..n {
                    let (shipped, frame) = mea_quant::wire::ship_affine(&activations.slice_axis0(i, i + 1));
                    bytes += frame;
                    parts.push(shipped);
                }
                let refs: Vec<&Tensor> = parts.iter().collect();
                let stacked = Tensor::concat_axis0(&refs);
                (Self::classify_cloud_from(cloud, &stacked, cut), bytes)
            }
        }
    }

    /// Assembles the record of a locally completed instance (main or
    /// extension exit).
    pub fn local_record(
        net: &MeaNet,
        main: &MainExit,
        i: usize,
        exit: ExitPoint,
        prediction: usize,
        truth: usize,
    ) -> InstanceRecord {
        InstanceRecord {
            truth,
            prediction,
            exit,
            entropy: main.entropies[i],
            main_prediction: main.preds[i],
            detected_hard: net.is_hard(main.preds[i]),
            correct: prediction == truth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AdaptivePlan, Merge, Variant};
    use mea_data::{presets, ClassDict};
    use mea_nn::models::{resnet_cifar, CifarResNetConfig};
    use mea_tensor::Rng;

    fn tiny_net(seed: u64) -> MeaNet {
        let mut rng = Rng::new(seed);
        let mut cfg = CifarResNetConfig::repro_scale(6);
        cfg.input_hw = 8;
        let backbone = resnet_cifar(&cfg, &mut rng);
        let mut net = MeaNet::from_backbone(
            backbone,
            Variant::FullBackbone { extension_channels: 8, extension_blocks: 1 },
            Merge::Sum,
            &mut rng,
        );
        net.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, ClassDict::new(&[0, 2, 4]), &mut rng);
        net
    }

    #[test]
    fn plan_respects_policy_and_hard_dict() {
        let mut net = tiny_net(0);
        let bundle = presets::tiny(30);
        let images = bundle.test.images.slice_axis0(0, 8);
        let main = RoutingEngine::evaluate_main(&mut net, &images);

        let edge_only = RoutingEngine::new(OffloadPolicy::Never, false).plan(&net, &main);
        for (i, route) in edge_only.routes.iter().enumerate() {
            let expect = if [0, 2, 4].contains(&main.preds[i]) { ExitPoint::Extension } else { ExitPoint::Main };
            assert_eq!(*route, expect);
        }

        let all_cloud = RoutingEngine::new(OffloadPolicy::Always, true).plan(&net, &main);
        assert!(all_cloud.routes.iter().all(|&r| r == ExitPoint::Cloud));
        assert_eq!(all_cloud.cloud_indices(), (0..8).collect::<Vec<_>>());
        assert!(all_cloud.extension_indices().is_empty());
    }

    #[test]
    fn index_lists_partition_the_batch() {
        let mut net = tiny_net(1);
        let bundle = presets::tiny(31);
        let images = bundle.test.images.slice_axis0(0, 10);
        let main = RoutingEngine::evaluate_main(&mut net, &images);
        let median = {
            let mut e = main.entropies.clone();
            e.sort_by(|a, b| a.partial_cmp(b).unwrap());
            e[e.len() / 2]
        };
        let plan = RoutingEngine::new(OffloadPolicy::EntropyThreshold(median), true).plan(&net, &main);
        let cloud = plan.cloud_indices();
        let ext = plan.extension_indices();
        let locals = plan.routes.iter().filter(|&&r| r == ExitPoint::Main).count() + cloud.len() + ext.len();
        assert_eq!(locals, main.len());
        for &i in &cloud {
            assert!(!ext.contains(&i), "instance {i} routed twice");
        }
    }

    #[test]
    fn pending_cloud_round_trips_the_record() {
        let mut net = tiny_net(2);
        let bundle = presets::tiny(32);
        let images = bundle.test.images.slice_axis0(0, 4);
        let main = RoutingEngine::evaluate_main(&mut net, &images);
        let pending = PendingCloud::from_main(&net, &main, 2, bundle.test.labels[2]);
        let rec = pending.complete(bundle.test.labels[2]);
        assert_eq!(rec.exit, ExitPoint::Cloud);
        assert!(rec.correct);
        assert_eq!(rec.main_prediction, main.preds[2]);
        assert_eq!(rec.detected_hard, [0, 2, 4].contains(&main.preds[2]));
    }

    #[test]
    fn pending_cloud_carries_the_resume_point() {
        let mut net = tiny_net(4);
        let bundle = presets::tiny(33);
        let images = bundle.test.images.slice_axis0(0, 2);
        let main = RoutingEngine::evaluate_main(&mut net, &images);
        let pending = PendingCloud::from_main(&net, &main, 1, bundle.test.labels[1]);
        assert_eq!(pending.resume_layer, 0, "default payload is pixels");
        let resumed = pending.resume_at(3);
        assert_eq!(resumed.resume_layer, 3);
        // The resume point is transport metadata: the finished record is
        // identical whichever cut produced the cloud prediction.
        assert_eq!(pending.complete(0), resumed.complete(0));
    }

    #[test]
    fn classify_cloud_from_any_cut_matches_full_forward() {
        use mea_nn::layer::Mode;
        let mut rng = Rng::new(9);
        let mut cfg = CifarResNetConfig::repro_scale(6);
        cfg.input_hw = 8;
        let mut cloud = resnet_cifar(&cfg, &mut rng);
        let bundle = presets::tiny(34);
        let images = bundle.test.images.slice_axis0(0, 6);
        let expected = RoutingEngine::classify_cloud(&mut cloud, &images);
        for cut in 0..cloud.cut_layer_count() {
            let activation = cloud.forward_prefix(&images, cut, Mode::Eval);
            let preds = RoutingEngine::classify_cloud_from(&mut cloud, &activation, cut);
            assert_eq!(preds, expected, "resume at layer {cut} changed cloud predictions");
        }
    }

    #[test]
    fn precommit_carries_sentinels_and_completes_like_any_offload() {
        let pending = PendingCloud::precommit(3, 1.25);
        assert!(pending.is_precommitted());
        assert_eq!(pending.main_prediction, PendingCloud::PRECOMMITTED);
        assert!(!pending.detected_hard);
        assert_eq!(pending.resume_layer, 0);
        let rec = pending.resume_at(2).complete(3);
        assert_eq!(rec.exit, ExitPoint::Cloud);
        assert!(rec.correct);
        assert_eq!(rec.entropy, 1.25);
        // A main-evaluated offload is never mistaken for a precommit.
        let mut net = tiny_net(5);
        let bundle = presets::tiny(35);
        let images = bundle.test.images.slice_axis0(0, 2);
        let main = RoutingEngine::evaluate_main(&mut net, &images);
        assert!(!PendingCloud::from_main(&net, &main, 0, 0).is_precommitted());
    }

    #[test]
    fn wants_precommit_needs_hard_cloud_and_an_offloading_policy() {
        use crate::difficulty::Difficulty;
        let offloading = RoutingEngine::new(OffloadPolicy::EntropyThreshold(0.5), true);
        assert!(offloading.wants_precommit(Difficulty::Hard));
        assert!(!offloading.wants_precommit(Difficulty::Ambiguous));
        assert!(!offloading.wants_precommit(Difficulty::Easy));
        let edge_only = RoutingEngine::new(OffloadPolicy::Never, false);
        assert!(!edge_only.wants_precommit(Difficulty::Hard), "no cloud, no precommit");
        let never_with_cloud = RoutingEngine::new(OffloadPolicy::Never, true);
        assert!(!never_with_cloud.wants_precommit(Difficulty::Hard), "Never keeps everything local");
    }

    #[test]
    fn plan_local_never_routes_to_the_cloud() {
        let mut net = tiny_net(6);
        let bundle = presets::tiny(36);
        let images = bundle.test.images.slice_axis0(0, 8);
        let main = RoutingEngine::evaluate_main(&mut net, &images);
        // Even under Always — the point of the Easy band is to skip the
        // offload decision entirely.
        let engine = RoutingEngine::new(OffloadPolicy::Always, true);
        let plan = engine.plan_local(&net, &main);
        assert!(plan.cloud_indices().is_empty());
        // And it agrees with the edge-only full plan instance by instance.
        let edge_only = RoutingEngine::new(OffloadPolicy::Never, false).plan(&net, &main);
        assert_eq!(plan, edge_only);
    }

    #[test]
    fn set_policy_is_checked_against_cloud_availability() {
        let mut engine = RoutingEngine::new(OffloadPolicy::Never, true);
        engine.set_policy(OffloadPolicy::EntropyThreshold(0.5));
        assert_eq!(engine.policy(), OffloadPolicy::EntropyThreshold(0.5));
    }

    #[test]
    #[should_panic(expected = "requires a cloud model")]
    fn offloading_policy_without_cloud_rejected() {
        let _ = RoutingEngine::new(OffloadPolicy::Always, false);
    }

    #[test]
    #[should_panic(expected = "requires a cloud model")]
    fn set_policy_without_cloud_rejected() {
        let mut engine = RoutingEngine::new(OffloadPolicy::Never, false);
        engine.set_policy(OffloadPolicy::Always);
    }
}
