//! Fleet simulation: many edge devices sharing a small cloud — the
//! congestion the paper's introduction argues early exits relieve.
//!
//! Compares an all-offload fleet against a MEANet-style fleet (most
//! inference exits at the edge) as the number of devices grows.
//!
//! ```bash
//! cargo run --release --example fleet_simulation
//! ```

use mea_edgecloud::{
    simulate_fleet, simulate_fleet_spec, ComputeTier, DeviceClass, DeviceProfile, FleetConfig, FleetSpec,
    NetworkLink,
};
use meanet::ExitPoint;

fn routes(n: usize, meanet: bool) -> Vec<ExitPoint> {
    (0..n)
        .map(|i| {
            if meanet {
                // MEANet routing shape: ~60% main exits, ~25% extension,
                // ~15% offloaded (the paper's CIFAR operating point).
                match i % 20 {
                    0..=11 => ExitPoint::Main,
                    12..=16 => ExitPoint::Extension,
                    _ => ExitPoint::Cloud,
                }
            } else {
                ExitPoint::Cloud
            }
        })
        .collect()
}

fn main() {
    let cfg = FleetConfig {
        edge: DeviceProfile::edge_jetson_like(),
        cloud: DeviceProfile::cloud_accelerator(),
        link: NetworkLink::wifi_18_88(),
        cloud_servers: 2,
        macs_main: 70_000_000,
        macs_extension_extra: 30_000_000,
        macs_cloud: 2_000_000_000,
        payload_bytes: 3 * 32 * 32,
        arrival_interval_s: 0.005,
    };
    println!(
        "{:<9} {:>14} {:>14} {:>16} {:>14}",
        "devices", "policy", "mean lat (ms)", "p95 lat (ms)", "cloud wait (ms)"
    );
    for devices in [1usize, 4, 16, 64] {
        for (label, meanet) in [("all-cloud", false), ("MEANet", true)] {
            let fleet: Vec<Vec<ExitPoint>> = (0..devices).map(|d| routes(40 + d % 3, meanet)).collect();
            let r = simulate_fleet(&cfg, &fleet);
            println!(
                "{:<9} {:>14} {:>14.2} {:>16.2} {:>14.3}",
                devices,
                label,
                r.mean_latency_s * 1e3,
                r.p95_latency_s * 1e3,
                r.cloud_wait_mean_s * 1e3
            );
        }
    }
    println!("\nEarly exits keep fleet latency flat while the all-cloud fleet queues up.");

    // The same fleet, heterogeneous: the devices split round-robin across
    // three compute tiers of the Jetson-class profile, and the Low tier
    // additionally sits behind a 4x slower uplink. The virtual clock
    // prices exactly what the serving runtime's FleetSpec schedules.
    let spec = FleetSpec::round_robin(vec![
        DeviceClass::new("high", DeviceProfile::edge_jetson_like(), ComputeTier::High),
        DeviceClass::new("medium", DeviceProfile::edge_jetson_like(), ComputeTier::Medium),
        DeviceClass::new("low", DeviceProfile::edge_jetson_like(), ComputeTier::Low)
            .with_link_prior(NetworkLink::wifi(4.7)),
    ]);
    println!("\nheterogeneous tiers (High / Medium / Low, Low on a 4x slower uplink):");
    for devices in [4usize, 16, 64] {
        for (label, meanet) in [("all-cloud", false), ("MEANet", true)] {
            let fleet: Vec<Vec<ExitPoint>> = (0..devices).map(|d| routes(40 + d % 3, meanet)).collect();
            let r = simulate_fleet_spec(&spec, &cfg, &fleet);
            println!(
                "{:<9} {:>14} {:>14.2} {:>16.2} {:>14.3}",
                devices,
                label,
                r.mean_latency_s * 1e3,
                r.p95_latency_s * 1e3,
                r.cloud_wait_mean_s * 1e3
            );
        }
    }
    println!("\nSlower tiers stretch the tail: the Low class pays both the 0.4x compute scale and its link.");
}
