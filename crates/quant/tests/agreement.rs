//! End-to-end agreement: a trained float classifier and its int8
//! quantization must broadly agree on held-out data — the property that
//! makes hybrid (int8-edge / float-cloud) deployment viable.

use mea_data::presets;
use mea_nn::layer::Mode;
use mea_nn::models::{resnet_cifar, CifarResNetConfig};
use mea_quant::quantize_segmented;
use mea_tensor::Rng;

#[test]
fn quantized_resnet_agrees_with_float_on_test_set() {
    let bundle = presets::tiny(42);
    let mut rng = Rng::new(7);
    let mut cfg = CifarResNetConfig::repro_scale(6);
    cfg.input_hw = 8;
    let mut net = resnet_cifar(&cfg, &mut rng);

    // Brief training so the float model is meaningfully better than chance.
    let tc = meanet_train_config();
    let stats = meanet::train::train_backbone(&mut net, &bundle.train, &tc);
    assert!(stats.last().unwrap().accuracy > 0.4, "float model failed to train: {stats:?}");

    // Calibrate on a handful of training batches.
    let calib: Vec<_> = bundle.train.batches(16).take(3).map(|(x, _)| x).collect();
    let qnet = quantize_segmented(&mut net, &calib).expect("supported graph");

    let mut agree = 0usize;
    let mut float_correct = 0usize;
    let mut quant_correct = 0usize;
    let mut total = 0usize;
    for (images, labels) in bundle.test.batches(16) {
        let fp = net.forward(&images, Mode::Eval).argmax_rows();
        let qp = qnet.predict(&images);
        for i in 0..labels.len() {
            agree += usize::from(fp[i] == qp[i]);
            float_correct += usize::from(fp[i] == labels[i]);
            quant_correct += usize::from(qp[i] == labels[i]);
            total += 1;
        }
    }
    let agreement = agree as f64 / total as f64;
    assert!(agreement >= 0.85, "int8 and float disagree on {:.0}% of instances", 100.0 * (1.0 - agreement));
    let drop = float_correct as f64 / total as f64 - quant_correct as f64 / total as f64;
    assert!(drop <= 0.10, "quantization dropped accuracy by {:.1} points", 100.0 * drop);
}

#[test]
fn quantized_model_is_smaller_on_the_wire() {
    let mut rng = Rng::new(8);
    let mut cfg = CifarResNetConfig::repro_scale(6);
    cfg.input_hw = 8;
    let mut net = resnet_cifar(&cfg, &mut rng);
    let float_bytes = 4 * net.param_count() as u64;
    let bundle = presets::tiny(43);
    let calib: Vec<_> = bundle.train.batches(16).take(1).map(|(x, _)| x).collect();
    let qnet = quantize_segmented(&mut net, &calib).expect("supported graph");
    assert!(
        qnet.weight_bytes() * 3 < float_bytes,
        "int8 download {} should be well under a third of the float {} (BN folds away)",
        qnet.weight_bytes(),
        float_bytes
    );
}

fn meanet_train_config() -> meanet::TrainConfig {
    meanet::TrainConfig::repro(6)
}
