//! Fig. 8 (ImageNet-like side): total edge energy (compute +
//! communication) versus threshold; endpoints edge-only and cloud-only.
//! For ImageNet-scale images, communication dominates, so distributed
//! inference undercuts cloud-only energy substantially.

use mea_bench::experiments::figures;
use mea_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let result = figures::fig78_imagenet(scale);
    println!("== Fig. 7 accuracy sweep ({}) ==", result.label);
    println!("{}", figures::render_fig7(&result));
    println!("== Fig. 8: edge energy ==\n{}", figures::render_fig8(&result));
    // Shape: every partial-offload setting costs less communication energy
    // than cloud-only.
    for (thr, e) in &result.energy {
        assert!(
            e.communication_j <= result.energy_cloud_only.communication_j + 1e-9,
            "thr {thr}: communication exceeds cloud-only"
        );
    }
    // And edge-only has zero communication energy.
    assert_eq!(result.energy_edge_only.communication_j, 0.0);
}
