//! SGD with momentum and the multi-step learning-rate schedule used by the
//! paper (LR × 0.1 at fixed epochs).

use crate::layer::{Layer, Param};
use mea_tensor::Tensor;

/// Stochastic gradient descent with classical momentum and L2 weight decay.
///
/// Velocity buffers are keyed positionally by the deterministic parameter
/// visitation order of the model, so one optimiser must stay paired with one
/// model (the usual contract).
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocities: Vec<Tensor>,
}

impl Sgd {
    /// Creates an optimiser.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`, `momentum ∉ [0, 1)` or `weight_decay < 0`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1), got {momentum}");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative, got {weight_decay}");
        Sgd { lr, momentum, weight_decay, velocities: Vec::new() }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (driven by [`MultiStepLr`]).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        self.lr = lr;
    }

    /// Applies one update step to every parameter of `model`, consuming the
    /// accumulated gradients (they are left untouched; call
    /// [`crate::layer::zero_grads`] before the next backward pass).
    pub fn step(&mut self, model: &mut dyn Layer) {
        self.step_with(&mut |f| model.visit_params(f));
    }

    /// Like [`Sgd::step`] but over an arbitrary parameter group expressed as
    /// a visitation function — how MEANet trains only its edge blocks while
    /// the main block stays frozen.
    // The nested-FnMut shape is the `visit_params` contract used across the
    // workspace; a type alias here would only obscure it.
    #[allow(clippy::type_complexity)]
    pub fn step_with(&mut self, visit: &mut dyn FnMut(&mut dyn FnMut(&mut Param))) {
        let mut idx = 0usize;
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        let velocities = &mut self.velocities;
        visit(&mut |p| {
            if velocities.len() == idx {
                velocities.push(Tensor::zeros(p.value.shape().clone()));
            }
            let v = &mut velocities[idx];
            assert_eq!(
                v.shape(),
                p.value.shape(),
                "parameter order changed between optimiser steps (velocity {idx})"
            );
            let vs = v.as_mut_slice();
            let ps = p.value.as_mut_slice();
            let gs = p.grad.as_slice();
            for ((vi, pi), &gi) in vs.iter_mut().zip(ps.iter_mut()).zip(gs.iter()) {
                let g = gi + wd * *pi;
                *vi = mu * *vi + g;
                *pi -= lr * *vi;
            }
            idx += 1;
        });
    }
}

/// Multi-step learning-rate schedule: the base rate is multiplied by
/// `gamma` at every listed epoch (matching the paper's CIFAR schedule of
/// ×0.1 at epochs 60/120/160 and ImageNet schedule at 30/100).
#[derive(Debug, Clone)]
pub struct MultiStepLr {
    base_lr: f32,
    milestones: Vec<usize>,
    gamma: f32,
}

impl MultiStepLr {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `base_lr <= 0` or `gamma <= 0`.
    pub fn new(base_lr: f32, milestones: Vec<usize>, gamma: f32) -> Self {
        assert!(base_lr > 0.0, "base learning rate must be positive");
        assert!(gamma > 0.0, "gamma must be positive");
        MultiStepLr { base_lr, milestones, gamma }
    }

    /// Learning rate in force during `epoch` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        let decays = self.milestones.iter().filter(|&&m| epoch >= m).count();
        self.base_lr * self.gamma.powi(decays as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{zero_grads, Mode};
    use crate::layers::Linear;
    use crate::loss::CrossEntropyLoss;
    use mea_tensor::{Rng, Tensor};

    #[test]
    fn sgd_decreases_loss_on_toy_problem() {
        let mut rng = Rng::new(0);
        let mut model = Linear::new(4, 3, &mut rng);
        // Class-separable toy data: feature `i % 3` carries a +2 mean shift,
        // so a linear model can always drive the loss well down. (A purely
        // random [16, 4] draw is only fittable for lucky RNG streams.)
        let mut x = Tensor::randn([16, 4], 1.0, &mut rng);
        let labels: Vec<usize> = (0..16).map(|i| i % 3).collect();
        for (i, &label) in labels.iter().enumerate() {
            x.as_mut_slice()[i * 4 + label] += 2.0;
        }
        let loss_fn = CrossEntropyLoss::new();
        let mut opt = Sgd::new(0.5, 0.9, 0.0);

        let y0 = model.forward(&x, Mode::Train);
        let first = loss_fn.forward(&y0, &labels).loss;
        let mut last = first;
        for _ in 0..50 {
            zero_grads(&mut model);
            let y = model.forward(&x, Mode::Train);
            let out = loss_fn.forward(&y, &labels);
            last = out.loss;
            let _ = model.backward(&out.grad);
            opt.step(&mut model);
        }
        assert!(last < first * 0.2, "loss {first} -> {last}");
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut rng = Rng::new(1);
        let mut model = Linear::new(2, 2, &mut rng);
        let before = model.param_count();
        let norm_before: f64 = {
            let mut acc = 0.0;
            model.visit_params(&mut |p| acc += p.value.sq_norm());
            acc
        };
        let mut opt = Sgd::new(0.1, 0.0, 0.1);
        for _ in 0..10 {
            zero_grads(&mut model); // zero gradient: only decay acts
            opt.step(&mut model);
        }
        let norm_after: f64 = {
            let mut acc = 0.0;
            model.visit_params(&mut |p| acc += p.value.sq_norm());
            acc
        };
        assert_eq!(model.param_count(), before);
        assert!(norm_after < norm_before * 0.95, "{norm_before} -> {norm_after}");
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut rng = Rng::new(2);
        let mut model = Linear::new(1, 1, &mut rng);
        // Constant gradient of 1.0 on every parameter.
        let mut opt_plain = Sgd::new(0.1, 0.0, 0.0);
        let mut opt_momentum = Sgd::new(0.1, 0.9, 0.0);
        let mut m2 = Linear::new(1, 1, &mut rng);
        let start1 = model.param_count();
        let _ = start1;
        for _ in 0..5 {
            model.visit_params(&mut |p| p.grad.fill(1.0));
            m2.visit_params(&mut |p| p.grad.fill(1.0));
            opt_plain.step(&mut model);
            opt_momentum.step(&mut m2);
        }
        // With momentum the total displacement is strictly larger.
        let mut d_plain = 0.0;
        model.visit_params(&mut |p| d_plain += p.value.sum());
        let mut d_mom = 0.0;
        m2.visit_params(&mut |p| d_mom += p.value.sum());
        assert!(d_mom < d_plain, "momentum should have moved further: {d_mom} vs {d_plain}");
    }

    #[test]
    fn multistep_schedule_decays_at_milestones() {
        let sched = MultiStepLr::new(0.1, vec![60, 120, 160], 0.1);
        assert!((sched.lr_at(0) - 0.1).abs() < 1e-9);
        assert!((sched.lr_at(59) - 0.1).abs() < 1e-9);
        assert!((sched.lr_at(60) - 0.01).abs() < 1e-9);
        assert!((sched.lr_at(130) - 0.001).abs() < 1e-9);
        assert!((sched.lr_at(200) - 0.0001).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_rejected() {
        let _ = Sgd::new(0.0, 0.9, 0.0);
    }
}
