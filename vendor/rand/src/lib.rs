//! Vendored stand-in for the `rand` crate covering exactly the surface
//! `mea_tensor::rng` uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen` for `u64`/`f32`, and `Rng::gen_range` over half-open and
//! inclusive integer/float ranges.
//!
//! The generator is SplitMix64 — not the ChaCha12 of the real `StdRng`, so
//! absolute streams differ from upstream `rand`, but every property the
//! test-suite checks (determinism per seed, stream independence across
//! seeds, uniformity good enough for Box–Muller moments) holds.

use std::ops::{Range, RangeInclusive};

/// Seedable generator constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Raw 64-bit generator core.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`]-distributed value.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, full range for integers).
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 high-quality mantissa bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can produce a uniform sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` via Lemire's widening-multiply method
/// (no modulo bias).
fn bounded_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Reject draws whose low product word falls below (2^64 - bound) % bound;
    // what survives is exactly uniform over [0, bound).
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = (rng.next_u64() as u128) * (bound as u128);
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f32::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: SplitMix64 (Steele, Lea & Flood 2014).
    ///
    /// Statistically solid for test workloads and `Copy`-cheap; unlike the
    /// upstream ChaCha12 `StdRng` it is not cryptographic, which the
    /// reproduction does not need.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up scramble so nearby seeds diverge immediately.
            let mut rng = StdRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_ints_cover_range_without_bias_smoke() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..5_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "{counts:?}");
        let mut hit_hi = false;
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..=3);
            assert!(v <= 3);
            hit_hi |= v == 3;
        }
        assert!(hit_hi);
    }
}
