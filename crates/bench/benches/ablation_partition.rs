//! Ablation: Neurosurgeon-style partition-point sweep over the
//! paper-scale ImageNet ResNet18 — the "sending features" collaboration
//! mode the paper compares against (§III-C, Table I).

use mea_bench::experiments::extensions;
use mea_edgecloud::Objective;

fn main() {
    let (table, costs) = extensions::ablation_partition();
    println!("== Ablation: DNN partition sweep (ResNet18, paper scale) ==\n{table}");
    // The optimizer's pick must beat or match both trivial endpoints.
    for obj in [Objective::Latency, Objective::EdgeEnergy] {
        let score = |c: &mea_edgecloud::CutCost| match obj {
            Objective::Latency => c.latency_s,
            Objective::EdgeEnergy => c.edge_energy_j,
        };
        let best = costs.iter().cloned().min_by(|a, b| score(a).partial_cmp(&score(b)).unwrap()).unwrap();
        assert!(score(&best) <= score(&costs[0]) + 1e-12, "{obj:?}: best worse than cloud-only");
        assert!(score(&best) <= score(costs.last().unwrap()) + 1e-12, "{obj:?}: best worse than edge-only");
    }
    // q must sweep monotonically from 0 to 1.
    assert_eq!(costs.first().unwrap().q, 0.0);
    assert_eq!(costs.last().unwrap().q, 1.0);
}
