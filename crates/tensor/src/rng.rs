//! Seeded random source used across the reproduction.
//!
//! Every experiment in the paper harness is driven by an explicit seed so
//! tables and figures are reproducible run-to-run. [`Rng`] wraps
//! [`rand::rngs::StdRng`] and adds the normal-distribution sampling the
//! `rand` core crate does not provide (Box–Muller transform).

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Deterministic random number generator for weights, data and shuffling.
#[derive(Debug, Clone)]
pub struct Rng {
    inner: StdRng,
    /// Cached second output of the Box–Muller pair.
    spare_normal: Option<f32>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Rng { inner: StdRng::seed_from_u64(seed), spare_normal: None }
    }

    /// Derives an independent generator; used to give each worker or
    /// sub-experiment its own stream without coupling their sequences.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.inner.gen::<u64>())
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform_range requires lo < hi, got [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Standard normal sample (mean 0, standard deviation 1) via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box–Muller: u1 in (0,1] to keep ln() finite.
        let u1 = 1.0 - self.inner.gen::<f32>();
        let u2 = self.inner.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.inner.gen::<f32>() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (a random subset, order
    /// randomized).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = Rng::new(42);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(3);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng::new(5);
        let idx = rng.sample_indices(20, 10);
        assert_eq!(idx.len(), 10);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(idx.iter().all(|&i| i < 20));
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = Rng::new(9);
        let mut forked = a.fork();
        // The fork must not replay the parent stream.
        let parent: Vec<u32> = (0..8).map(|_| a.uniform().to_bits()).collect();
        let child: Vec<u32> = (0..8).map(|_| forked.uniform().to_bits()).collect();
        assert_ne!(parent, child);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Rng::new(11);
        assert!(!(0..64).any(|_| rng.bernoulli(0.0)));
        assert!((0..64).all(|_| rng.bernoulli(1.0)));
    }
}
