//! Multi-worker online serving runtime with dynamic cloud batching.
//!
//! The paper motivates early exits with the cloud pressure of "a large
//! amount of IoT devices" — this module is the substrate that actually
//! serves that traffic through a trained MEANet instead of modelling it in
//! closed form (see [`crate::fleet`] for the analytic counterpart):
//!
//! * **N edge workers**, each owning a bitwise-identical replica of the
//!   trained [`MeaNet`] (see `MeaNet::replicate_into`), consume requests
//!   from bounded per-worker queues. Requests are routed to workers
//!   device-stickily (`device % N`), so one device's stream is processed
//!   in order.
//! * Every routing decision goes through the same
//!   [`meanet::routing::RoutingEngine`] the offline sweep
//!   (`meanet::infer::run_inference`) uses, so the served system and the
//!   evaluation sweep provably produce identical [`InstanceRecord`]s.
//! * **M cloud workers** each drain a bounded ingress queue with
//!   **dynamic batching**: whatever is queued is coalesced up to
//!   [`ServeConfig::max_batch`] (waiting at most
//!   [`ServeConfig::max_wait`] for stragglers) and classified in *one*
//!   batched forward. Because eval-mode forwards are bitwise per-sample
//!   independent, batch composition cannot change predictions.
//! * Offloaded instances cross a real wire format ([`Payload`]) inside
//!   length-prefixed request/response frames, carried by a pluggable
//!   [`Transport`] ([`ServeConfig::transport`]). The default modelled
//!   conduit pays an optional [`NetworkLink`] as upload + RTT + response
//!   download wall-clock sleeps (deterministic, the CI path), so
//!   cloud-worker scaling overlaps network latency exactly like
//!   concurrent in-flight RPCs; [`TransportKind::Pipe`] instead ships the
//!   same frames over a real in-process byte pipe with bounded-buffer
//!   backpressure, where transfer time is whatever the wire genuinely
//!   took ([`crate::transport`]).
//! * [`PayloadPlan::Features`] turns on **feature-payload serving**: the
//!   edge runs the *cloud network's* prefix up to a cut layer (each
//!   [`EdgeReplica`] carries a cloud-prefix replica) and ships the
//!   activation — optionally int8-quantised through the `mea-quant` wire
//!   codec — and the cloud resumes at the cut instead of recomputing from
//!   pixels. The cut is fixed or planned online by a
//!   [`CutPlanner`] per edge device class, replanned whenever the
//!   [`ThresholdController`] moves the offload fraction. Because suffix
//!   execution is bitwise identical to the full forward (asserted in
//!   `mea-nn`), the cut — like batch composition — is a pure cost knob:
//!   it can never change a prediction under the lossless wire.
//! * [`LinkFeedback`] closes the planner loop: cloud workers record the
//!   upload/RTT/download time every batch actually paid into a per-class
//!   [`LinkEstimator`] EWMA, and the [`CutPlanner`] periodically replans
//!   from the *measured* effective rates (blended with its static
//!   `rate / max(1, β·streams)` contention prior by sample count) — so
//!   real congestion, including a mid-run [`LinkChange`] the static model
//!   never hears about, reaches the cut decision. On the modelled
//!   transport those observations are the model's own times; on the pipe
//!   they are `Instant::now()` deltas around the actual send/recv, so the
//!   loop learns from time genuinely paid.
//! * A [`ThresholdController`] can steer the entropy threshold inside the
//!   serving path (SPINN-style runtime adaptation): every
//!   [`ControllerConfig::window`] routed instances, the achieved offload
//!   fraction is fed back and the threshold retuned.
//! * A [`FleetSpec`] ([`ServeConfig::fleet`]) makes the device population
//!   **heterogeneous**: named [`DeviceClass`]es with a [`ComputeTier`]
//!   (high/medium/low kernel-latency scaling), an optional per-class
//!   radio prior, and explicit device→class assignments. The cut planner
//!   then plans one cut per class from each class's *effective* profile
//!   and link prior, the link estimator indexes its telemetry by the
//!   spec's class map, and [`ServeStats`] breaks served/offloaded counts
//!   and latency out per class. Without a spec, serving falls back to the
//!   legacy homogeneous convention (planner class = `device % classes`).
//! * A [`DifficultyPredictor`] ([`ServeConfig::difficulty`]) turns on
//!   **difficulty-aware routing** from input statistics alone:
//!   predicted-easy requests settle locally without consulting the
//!   offload policy, predicted-hard requests pre-commit to the cloud
//!   *without evaluating the main exit at all*
//!   ([`ServeStats::skipped_main_exits`] counts the saved forwards), and
//!   ambiguous requests take the full Algorithm-2 path unchanged.
//!
//! The preferred entry point is [`Fleet`]: it owns the replicas, checks
//! every configuration invariant up front (builder-validated via
//! [`ServeConfig::builder`], or [`Fleet::new`] returning [`ServeError`])
//! and serves traces through [`Fleet::serve`]. The free [`serve`]
//! function is a deprecated panic-on-misuse shim over [`try_serve`].
//!
//! Backpressure is end-to-end: bounded edge queues block the dispatcher,
//! bounded cloud queues block edge workers, so a slow cloud tier slows
//! admission instead of ballooning memory.

use crate::device::DeviceProfile;
use crate::fleet::{ComputeTier, DeviceClass, FleetSpec};
use crate::governor::{ControlPoint, Governor, GovernorConfig, SlaTarget};
use crate::network::{LinkEstimate, LinkEstimator, NetworkLink};
use crate::partition::{
    profile_network, CutPlanner, Objective, PartitionEnv, SlaObjective, MEASURED_PRIOR_SAMPLES,
};
use crate::payload::{channel_absmax, ActivationGrids, Payload};
use crate::sim::ThreadedStats;
use crate::traces::ArrivalModel;
use crate::transport::{
    DownlinkReceiver, InboundRequest, ModelledTransport, PipeTransport, RecvOutcome, RequestFrame, ResponseFrame,
    Transport, TransportKind, UplinkReceiver,
};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use mea_data::Dataset;
use mea_metrics::{Histogram, StreamingHistogram, WindowedQuantiles};
use mea_nn::layer::Mode;
use mea_nn::models::SegmentedCnn;
use mea_tensor::{Rng, Tensor};
use meanet::routing::{PendingCloud, RoutingEngine};
use meanet::{
    Difficulty, DifficultyPredictor, ExitPoint, InstanceRecord, MeaNet, OffloadPolicy, ThresholdController,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// Bytes of the cloud's response per prediction on the downlink — the
/// exact encoded size of a [`ResponseFrame`] (length prefix, request id,
/// class id), which is what [`ServeStats::bytes_from_cloud`] counts and
/// the [`CutPlanner`] charges as `response_bytes`. Both transports put
/// the same frame on the wire, so the charge is byte-for-byte real.
pub const RESPONSE_WIRE_BYTES: u64 = ResponseFrame::WIRE_BYTES;

/// Headroom factor on the calibration activations' per-channel absolute
/// maxima when building the serve-time [`ActivationGrids`]: inputs hotter
/// than the calibration image saturate instead of wrapping, and a little
/// headroom keeps saturation rare.
const GRID_HEADROOM: f32 = 1.25;

/// How offloaded images are encoded on the edge→cloud wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Lossless `f32` tensors ([`Payload::Features`] codec). The cloud
    /// sees exactly the edge's pixels, so the served system is
    /// bit-identical to the offline sweep.
    #[default]
    Float32,
    /// The paper's 1-byte-per-sample sensor format
    /// ([`Payload::RawImage`]): 4× smaller uploads, but quantisation can
    /// flip borderline cloud predictions.
    Quantised8Bit,
}

/// How offloaded *activations* are encoded on the edge→cloud wire in
/// feature-payload mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FeatureWire {
    /// Lossless `f32` activations ([`Payload::Features`]): the resumed
    /// cloud forward is bitwise identical to the full forward, whatever
    /// the cut.
    #[default]
    F32,
    /// Int8 activations through the `mea-quant` wire codec
    /// ([`Payload::QuantFeatures`]): ~4× smaller — a deep cut undercuts
    /// even the raw-image upload — at the cost of borderline prediction
    /// flips. Every frame carries its own per-tensor quantisation
    /// parameters.
    Int8,
    /// Per-channel int8 activations on a **calibrated grid**
    /// ([`Payload::encode_grid_features`]): the per-channel scales are
    /// calibrated once at serve setup ([`ActivationGrids`]) and shared by
    /// edge and cloud out of band, so frames carry only a one-byte cut
    /// index plus the quantised data — strictly fewer bytes per offload
    /// than [`FeatureWire::Int8`] at every cut, with the finer channel
    /// granularity on top. The governor's deepest wire rung.
    PerChannelInt8,
}

impl FeatureWire {
    /// Bytes one activation element occupies on the wire.
    pub fn bytes_per_elem(self) -> u64 {
        match self {
            FeatureWire::F32 => 4,
            FeatureWire::Int8 | FeatureWire::PerChannelInt8 => 1,
        }
    }
}

/// Measured-link feedback configuration: the closed loop between the
/// cloud tier's per-batch link telemetry and the [`CutPlanner`].
///
/// When set on a [`CutPlannerConfig`], every served cloud batch feeds one
/// `(bytes, seconds)` observation per device class into a
/// [`LinkEstimator`] EWMA, and every [`LinkFeedback::replan_every`]
/// batches the planner re-derives the per-class cuts from the measured
/// effective rates blended with its static contention prior — so real
/// congestion (e.g. a [`LinkChange`] degradation) moves the cut, not just
/// the modelled `β·streams` divisor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFeedback {
    /// EWMA coefficient for per-batch observations, in `(0, 1]` (weight
    /// of the newest observation).
    pub alpha: f64,
    /// Pseudo-sample weight of the static contention prior: a class with
    /// `n` observed batches trusts its measurement with weight
    /// `n / (n + prior_samples)` (see
    /// [`CutPlanner::effective_env_measured`]).
    pub prior_samples: f64,
    /// Replan the per-class cuts every this many observed batches.
    pub replan_every: u64,
}

impl Default for LinkFeedback {
    /// A moderately reactive loop: newest observation worth 30%, the
    /// static prior worth [`MEASURED_PRIOR_SAMPLES`] batches, replanning
    /// every 8 batches.
    fn default() -> Self {
        LinkFeedback { alpha: 0.3, prior_samples: MEASURED_PRIOR_SAMPLES, replan_every: 8 }
    }
}

/// Online cut-point planning parameters for feature-payload serving.
#[derive(Debug, Clone, PartialEq)]
pub struct CutPlannerConfig {
    /// Edge device classes: device `d` belongs to class
    /// `d % classes.len()` and serves from that class's planned cut.
    ///
    /// When [`ServeConfig::fleet`] is set this list must be **empty** —
    /// the fleet's effective per-class profiles (and link priors) drive
    /// the planner, and devices map to classes through
    /// [`FleetSpec::class_of`] instead of the modulo convention.
    pub classes: Vec<DeviceProfile>,
    /// The cloud device executing the suffix.
    pub cloud: DeviceProfile,
    /// What the planner minimises.
    pub objective: Objective,
    /// Measured-link feedback: `None` plans open-loop from the static
    /// contention model only (replanning only when the controller moves
    /// β); `Some` closes the loop on observed per-batch link times.
    pub feedback: Option<LinkFeedback>,
}

/// How the cut layer of feature-payload serving is chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum CutSelection {
    /// A fixed cut layer index (same for every device).
    Fixed(usize),
    /// Online planning: the [`CutPlanner`] scores every cut of the cloud
    /// network against the serving link and device profiles, picks the
    /// cost-minimal cut per device class, and replans whenever the
    /// [`ThresholdController`] moves β.
    Planned(CutPlannerConfig),
}

/// Configuration of feature-payload serving.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureConfig {
    /// Activation wire encoding.
    pub wire: FeatureWire,
    /// Cut-layer choice.
    pub cut: CutSelection,
}

/// What crosses the edge→cloud wire for offloaded instances.
#[derive(Debug, Clone, PartialEq)]
pub enum PayloadPlan {
    /// Ship the input image; the cloud computes its whole network from
    /// pixels (the paper's collaboration mode).
    Image(WireFormat),
    /// Ship the cloud network's activation at a cut layer; the cloud
    /// resumes from there (the Neurosurgeon-style split this repo's
    /// offline `partition` search scores, now live).
    Features(FeatureConfig),
}

impl Default for PayloadPlan {
    fn default() -> Self {
        PayloadPlan::Image(WireFormat::Float32)
    }
}

/// One edge worker's model state: the MEANet it routes with, plus — in
/// feature-payload mode — a bitwise replica of the cloud network whose
/// prefix it executes up to the current cut.
#[derive(Debug)]
pub struct EdgeReplica {
    /// The trained MEANet (routing, main/extension exits).
    pub net: MeaNet,
    /// Cloud-network replica for prefix execution. Must be bitwise
    /// identical to the cloud workers' replicas; required when
    /// [`ServeConfig::payload`] is [`PayloadPlan::Features`].
    pub cloud_prefix: Option<SegmentedCnn>,
}

impl EdgeReplica {
    /// An edge replica for image-payload serving (no cloud prefix).
    pub fn new(net: MeaNet) -> Self {
        EdgeReplica { net, cloud_prefix: None }
    }

    /// An edge replica that can serve feature payloads.
    pub fn with_cloud_prefix(net: MeaNet, cloud: SegmentedCnn) -> Self {
        EdgeReplica { net, cloud_prefix: Some(cloud) }
    }
}

/// Closed-loop threshold steering inside the serving path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// The integral controller (carries the initial threshold, the target
    /// β and the gain).
    pub controller: ThresholdController,
    /// Number of routed instances per feedback window.
    pub window: usize,
}

/// The unified control plane of feature-payload serving: one value that
/// says how the (β, cut, wire) operating point is chosen, replacing the
/// scattered legacy combination of [`ServeConfigBuilder::controller`],
/// a [`PayloadPlan::Features`] payload with [`CutSelection`], and the
/// feedback option buried inside [`CutPlannerConfig`].
///
/// Set via [`ServeConfigBuilder::control`]; the runtime normalises every
/// plan into the legacy fields through one shared path, so a plan and the
/// equivalent hand-assembled legacy configuration serve **identically**.
/// Combining a plan with the legacy `controller`/`payload` fields is
/// rejected at build time ([`ServeConfigError`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ControlPlan {
    /// Open-loop: a fixed cut and wire for every device, optionally with
    /// SPINN-style threshold steering. Nothing replans at runtime.
    Static {
        /// The fixed cut layer (same for every device class).
        cut: usize,
        /// The activation wire encoding.
        wire: FeatureWire,
        /// Optional runtime threshold adaptation.
        controller: Option<ControllerConfig>,
    },
    /// Closed-loop planned cuts: the [`CutPlanner`] picks the per-class
    /// cut online and measured-link `feedback` replans it from the link
    /// times cloud batches actually paid.
    ClosedLoop {
        /// Planner parameters. Its [`CutPlannerConfig::feedback`] field
        /// must be `None` — the loop's feedback lives in
        /// [`ControlPlan::ClosedLoop::feedback`], not inside the planner
        /// config ([`ServeConfigError::ClosedLoopFeedbackConflict`]).
        planner: CutPlannerConfig,
        /// The measured-link feedback loop (mandatory: a closed loop
        /// without feedback is the open-loop plan).
        feedback: LinkFeedback,
        /// The activation wire encoding.
        wire: FeatureWire,
        /// Optional runtime threshold adaptation.
        controller: Option<ControllerConfig>,
    },
    /// SLA-governed joint (β, cut, wire) control: the
    /// [`Governor`] watches live per-class p95 latency windows and
    /// escalates cut objective, wire format and finally the offload
    /// fraction to hold the [`SlaTarget`] — see [`crate::governor`].
    /// Starts from lossless `f32` on latency-planned cuts with default
    /// measured-link feedback; requires [`ServeConfig::link`]
    /// ([`ServeConfigError::GovernedWithoutTelemetry`]).
    Governed(SlaTarget),
}

/// Static configuration of the serving runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Edge worker threads (must equal the number of edge replicas).
    pub edge_workers: usize,
    /// Cloud worker threads (must equal the number of cloud replicas).
    pub cloud_workers: usize,
    /// Dynamic-batching cap: a cloud worker coalesces at most this many
    /// queued payloads into one batched forward.
    pub max_batch: usize,
    /// How long a cloud worker waits for stragglers once it holds at
    /// least one payload. `Duration::ZERO` coalesces only what is already
    /// queued (no added latency).
    pub max_wait: Duration,
    /// Capacity of each bounded edge/cloud ingress queue.
    pub queue_depth: usize,
    /// Offload policy. Ignored when `controller` is set (the controller
    /// then drives an entropy-threshold policy starting from its own
    /// threshold).
    pub policy: OffloadPolicy,
    /// Optional SPINN-style runtime threshold adaptation.
    ///
    /// Legacy field: prefer [`ServeConfig::control`], which carries the
    /// controller inside its [`ControlPlan`]. Setting both is rejected
    /// ([`ServeConfigError::ControlPlanControllerConflict`]).
    pub controller: Option<ControllerConfig>,
    /// The unified control plane ([`ControlPlan`]): how the (β, cut,
    /// wire) operating point of feature-payload serving is chosen.
    /// `None` keeps the legacy field combination
    /// (`controller` + `payload`) in charge; `Some` expands into those
    /// fields through one shared normalisation path before validation,
    /// and conflicts with explicitly set legacy fields are rejected.
    pub control: Option<ControlPlan>,
    /// What offloaded instances carry across the wire: images (the cloud
    /// recomputes from pixels) or cut-layer activations (the cloud
    /// resumes from the cut).
    pub payload: PayloadPlan,
    /// Optional link model: each cloud batch pays its uplink leg (the
    /// upload plus half the RTT) before the forward and its downlink leg
    /// (half the RTT plus the response download) after it, as real
    /// wall-clock delay on the worker that serves it — the same
    /// [`NetworkLink::uplink_leg_s`]/[`NetworkLink::downlink_leg_s`]
    /// convention the virtual-clock simulator and the closed-form
    /// `round_trip_s` charge. Under [`TransportKind::Pipe`] the wire's
    /// own transfer time replaces these sleeps; the model then only
    /// informs the [`CutPlanner`]'s static prior.
    pub link: Option<NetworkLink>,
    /// Which wire the offloaded payloads cross: the deterministic
    /// modelled conduit (default — the CI/record-identity path) or a real
    /// in-process byte pipe whose transfer times feed the
    /// [`LinkEstimator`] as genuine `Instant::now()` deltas.
    pub transport: TransportKind,
    /// Scheduled changes of the *real* wire mid-run (radio degradation):
    /// once the cloud tier has *started* `after_batches` coalesced
    /// batches, subsequently started batches ride the changed link.
    /// Applied in order; requires [`ServeConfig::link`]. The planner's
    /// static model is deliberately not told — only measured-link
    /// feedback ([`LinkFeedback`]) can observe the change.
    pub link_schedule: Vec<LinkChange>,
    /// Optional heterogeneous device registry. `Some` routes every
    /// device→class decision (planned cuts, link telemetry, per-class
    /// stats) through [`FleetSpec::class_of`] and plans cuts from each
    /// class's tier-scaled profile and radio prior; `None` keeps the
    /// legacy homogeneous convention. A spec whose classes are all
    /// identical to the legacy planner classes serves record-identically
    /// to `None`.
    pub fleet: Option<FleetSpec>,
    /// Optional difficulty-aware routing. `Some` classifies every request
    /// from its input statistics before any forward pass:
    /// predicted-**easy** requests settle locally (main or extension
    /// exit) without consulting the offload policy, predicted-**hard**
    /// requests pre-commit to the cloud without evaluating the main exit
    /// (skipped evaluations are counted in
    /// [`ServeStats::skipped_main_exits`]), and ambiguous requests take
    /// the unchanged Algorithm-2 path. `None` routes everything through
    /// Algorithm 2.
    pub difficulty: Option<DifficultyPredictor>,
    /// How cloud workers pick up arrived frames: the sharded
    /// work-stealing ingress (default) or the legacy one-queue-per-worker
    /// path. Pure scheduling knob — the served [`InstanceRecord`]s are
    /// identical either way (asserted by the property suite); only
    /// throughput and the [`ServeStats`] scheduling counters differ.
    pub ingress: CloudIngress,
}

/// One scheduled change of serving link conditions (see
/// [`ServeConfig::link_schedule`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkChange {
    /// The change takes effect once this many coalesced cloud batches
    /// have been *started* (dequeued), counted across the whole cloud
    /// tier. With one cloud worker batches start in completion order, so
    /// the switch point is exact; with several workers the start order is
    /// scheduler-dependent, so batches already in flight may still ride
    /// the old link.
    pub after_batches: u64,
    /// The link every later batch pays (and telemetry observes).
    pub link: NetworkLink,
}

/// How offloaded frames reach the cloud workers (see
/// [`ServeConfig::ingress`]).
///
/// Either way every frame still enters through its device-sticky lane
/// (`spec.sticky_index(device, lanes)`), so the wire-level ordering
/// guarantees are identical; the choice only controls how cloud *workers*
/// pick frames up once they have arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CloudIngress {
    /// Sharded work-stealing ingress (the default): each cloud worker
    /// owns one bounded shard fed by a pump thread draining its lane, and
    /// an idle worker steals a FIFO prefix of frames (whole device-sticky
    /// runs, in arrival order) from the deepest backlogged shard instead
    /// of sleeping. Per-device FIFO survives stealing because (a) a steal
    /// takes a *prefix* of a shard, preserving every device's frame order
    /// within it, and (b) completions pass a per-device reorder gate
    /// keyed on the edge-assigned offload index, so results leave the
    /// cloud tier in exactly per-device offload order. [`ServeStats::steals`] / [`ServeStats::per_shard_batches`]
    /// expose the balancing behaviour.
    #[default]
    Sharded,
    /// The legacy path: each cloud worker blocks on its own lane only.
    /// A skewed device population can idle every other worker; kept as
    /// the record-identity reference and for A/B measurement.
    SingleQueue,
}

/// The link a batch rides given how many batches the cloud tier has
/// *started* (dequeued) before it: [`ServeConfig::link`] with every due
/// [`LinkChange`] applied in order. Keying on started batches matches
/// [`LinkChange::after_batches`]: the counter increments when a worker
/// dequeues a coalesced batch, before any leg of the link is paid.
fn scheduled_link(cfg: &ServeConfig, batches_before: u64) -> Option<NetworkLink> {
    let mut link = cfg.link?;
    for change in &cfg.link_schedule {
        if batches_before >= change.after_batches {
            link = change.link;
        }
    }
    Some(link)
}

impl ServeConfig {
    /// A serving configuration with sane defaults: no batching wait, a
    /// queue depth of 4 per worker, lossless wire format, no simulated
    /// link, no controller.
    pub fn new(policy: OffloadPolicy, edge_workers: usize, cloud_workers: usize, max_batch: usize) -> Self {
        ServeConfig {
            edge_workers,
            cloud_workers,
            max_batch,
            max_wait: Duration::ZERO,
            queue_depth: 4,
            policy,
            controller: None,
            control: None,
            payload: PayloadPlan::default(),
            link: None,
            transport: TransportKind::default(),
            link_schedule: Vec::new(),
            fleet: None,
            difficulty: None,
            ingress: CloudIngress::default(),
        }
    }

    /// The degenerate single-pipeline configuration (`edge_workers: 1,
    /// cloud_workers: 1, max_batch: 1`) that
    /// [`crate::sim::run_threaded`] is a thin wrapper over.
    pub fn pipeline(policy: OffloadPolicy) -> Self {
        ServeConfig::new(policy, 1, 1, 1)
    }

    /// A validating builder starting from [`ServeConfig::new`]'s defaults
    /// (`edge_workers: 1, cloud_workers: 1, max_batch: 1`).
    /// [`ServeConfigBuilder::build`] checks every static invariant and
    /// returns [`ServeConfigError`] instead of panicking downstream.
    pub fn builder(policy: OffloadPolicy) -> ServeConfigBuilder {
        ServeConfigBuilder { cfg: ServeConfig::new(policy, 1, 1, 1) }
    }
}

/// Validating builder for [`ServeConfig`] — see [`ServeConfig::builder`].
///
/// Every setter is infallible; [`ServeConfigBuilder::build`] runs the
/// full invariant suite once at the end, so a successfully built config
/// can never trip a configuration panic inside the runtime.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    /// Number of edge worker threads (one replica each).
    pub fn edge_workers(mut self, n: usize) -> Self {
        self.cfg.edge_workers = n;
        self
    }

    /// Number of cloud worker threads (one replica each).
    pub fn cloud_workers(mut self, n: usize) -> Self {
        self.cfg.cloud_workers = n;
        self
    }

    /// Dynamic-batching cap per coalesced cloud batch.
    pub fn max_batch(mut self, n: usize) -> Self {
        self.cfg.max_batch = n;
        self
    }

    /// How long a cloud worker waits for stragglers once it holds a
    /// payload.
    pub fn max_wait(mut self, wait: Duration) -> Self {
        self.cfg.max_wait = wait;
        self
    }

    /// Capacity of each bounded edge/cloud ingress queue.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.cfg.queue_depth = depth;
        self
    }

    /// Replaces the offload policy.
    pub fn policy(mut self, policy: OffloadPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Enables SPINN-style runtime threshold adaptation.
    #[deprecated(note = "use ServeConfigBuilder::control with a ControlPlan carrying the controller")]
    pub fn controller(mut self, cc: ControllerConfig) -> Self {
        self.cfg.controller = Some(cc);
        self
    }

    /// The unified control plane: how the (β, cut, wire) operating point
    /// of feature-payload serving is chosen (see [`ControlPlan`]).
    /// Replaces the legacy `controller`/`payload`/`link_schedule` wiring;
    /// combining a plan with those legacy setters is rejected at
    /// [`ServeConfigBuilder::build`].
    pub fn control(mut self, plan: ControlPlan) -> Self {
        self.cfg.control = Some(plan);
        self
    }

    /// What offloaded instances carry across the wire.
    pub fn payload(mut self, payload: PayloadPlan) -> Self {
        self.cfg.payload = payload;
        self
    }

    /// The modelled network link.
    pub fn link(mut self, link: NetworkLink) -> Self {
        self.cfg.link = Some(link);
        self
    }

    /// Which wire the payloads cross (modelled conduit or real pipe).
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.cfg.transport = transport;
        self
    }

    /// Scheduled mid-run changes of the modelled wire. These are
    /// *scenario* input — what happens to the radio — not control policy;
    /// the [`ControlPlan`] decides how serving reacts.
    pub fn link_events(mut self, events: Vec<LinkChange>) -> Self {
        self.cfg.link_schedule = events;
        self
    }

    /// Scheduled mid-run changes of the modelled wire.
    #[deprecated(note = "renamed to ServeConfigBuilder::link_events (link changes are scenario, not control)")]
    pub fn link_schedule(mut self, schedule: Vec<LinkChange>) -> Self {
        self.cfg.link_schedule = schedule;
        self
    }

    /// Heterogeneous device registry (see [`ServeConfig::fleet`]).
    pub fn fleet(mut self, spec: FleetSpec) -> Self {
        self.cfg.fleet = Some(spec);
        self
    }

    /// Difficulty-aware routing (see [`ServeConfig::difficulty`]).
    pub fn difficulty(mut self, predictor: DifficultyPredictor) -> Self {
        self.cfg.difficulty = Some(predictor);
        self
    }

    /// How cloud workers pick up arrived frames (see
    /// [`ServeConfig::ingress`]).
    pub fn ingress(mut self, ingress: CloudIngress) -> Self {
        self.cfg.ingress = ingress;
        self
    }

    /// Validates every static invariant and returns the configuration.
    ///
    /// # Errors
    ///
    /// One [`ServeConfigError`] per violated invariant — the same checks
    /// [`try_serve`] runs (including the [`ControlPlan`] normalisation),
    /// so a built config cannot fail them later.
    pub fn build(self) -> Result<ServeConfig, ServeConfigError> {
        let (effective, _) = effective_config(&self.cfg)?;
        validate_config(&effective)?;
        Ok(self.cfg)
    }
}

/// A [`ServeConfig`] that violates a static invariant — everything
/// checkable from the configuration alone, before any replica or request
/// is seen. Returned by [`ServeConfigBuilder::build`] and (wrapped in
/// [`ServeError::Config`]) by [`try_serve`] / [`Fleet::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeConfigError {
    /// `edge_workers == 0`: there is nobody to route requests.
    NoEdgeWorkers,
    /// `max_batch == 0`: a cloud batch cannot hold zero payloads.
    ZeroMaxBatch,
    /// `queue_depth == 0`: bounded queues need capacity.
    ZeroQueueDepth,
    /// A [`ServeConfig::link_schedule`] without a [`ServeConfig::link`]
    /// to change.
    ScheduleWithoutLink,
    /// A link schedule combined with the pipe transport (the schedule
    /// drives the modelled wire only).
    ScheduleOnPipe,
    /// A [`ControllerConfig::window`] of zero instances.
    ControllerWindowEmpty,
    /// An offloading policy (or a controller, which implies one) with no
    /// cloud workers to offload to.
    PolicyNeedsCloud,
    /// Planned cut selection with no device classes and no fleet spec to
    /// derive them from.
    NoPlannerClasses,
    /// Planned cut selection without a [`ServeConfig::link`] to plan
    /// against.
    PlannedCutWithoutLink,
    /// A [`LinkFeedback::replan_every`] of zero batches.
    FeedbackNeverReplans,
    /// Both [`ServeConfig::fleet`] and [`CutPlannerConfig::classes`] list
    /// device classes — it must be one or the other.
    FleetClassesConflict,
    /// A [`ControlPlan`] combined with the legacy
    /// [`ServeConfig::controller`] field — the plan carries its own
    /// controller slot.
    ControlPlanControllerConflict,
    /// A [`ControlPlan`] combined with an explicitly set
    /// [`ServeConfig::payload`] — the plan *is* the payload decision.
    ControlPlanPayloadConflict,
    /// A [`ControlPlan::ClosedLoop`] whose planner config also carries a
    /// [`CutPlannerConfig::feedback`] — the loop's feedback lives in the
    /// plan's own field.
    ClosedLoopFeedbackConflict,
    /// [`ControlPlan::Governed`] without a [`ServeConfig::link`]: the
    /// governor plans cuts against a link model and needs link telemetry
    /// to close its loop.
    GovernedWithoutTelemetry,
    /// [`ControlPlan::Governed`] combined with a fixed-cut features
    /// payload: an SLA governor must be free to move the cut.
    GovernedFixedCut,
}

impl fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeConfigError::NoEdgeWorkers => write!(f, "need at least one edge worker"),
            ServeConfigError::ZeroMaxBatch => write!(f, "max_batch must be at least 1"),
            ServeConfigError::ZeroQueueDepth => write!(f, "queues need capacity"),
            ServeConfigError::ScheduleWithoutLink => {
                write!(f, "a link schedule needs a link model (ServeConfig::link) to change")
            }
            ServeConfigError::ScheduleOnPipe => write!(
                f,
                "link_schedule drives the modelled wire; throttle the pipe transport via PipeConfig::throttle"
            ),
            ServeConfigError::ControllerWindowEmpty => write!(f, "controller window must be non-empty"),
            ServeConfigError::PolicyNeedsCloud => {
                write!(f, "an offloading policy requires a cloud model (no cloud workers configured)")
            }
            ServeConfigError::NoPlannerClasses => {
                write!(f, "planned cut selection needs at least one device class")
            }
            ServeConfigError::PlannedCutWithoutLink => {
                write!(f, "planned cut selection requires a link model (ServeConfig::link)")
            }
            ServeConfigError::FeedbackNeverReplans => {
                write!(f, "feedback must replan after a positive number of batches")
            }
            ServeConfigError::FleetClassesConflict => write!(
                f,
                "planned cut selection must leave CutPlannerConfig::classes empty when ServeConfig::fleet \
                 is set (the fleet's effective profiles drive the planner)"
            ),
            ServeConfigError::ControlPlanControllerConflict => write!(
                f,
                "a ControlPlan carries its own controller slot; drop the legacy \
                 ServeConfigBuilder::controller setter"
            ),
            ServeConfigError::ControlPlanPayloadConflict => write!(
                f,
                "a ControlPlan decides the payload; drop the explicit ServeConfigBuilder::payload setter"
            ),
            ServeConfigError::ClosedLoopFeedbackConflict => write!(
                f,
                "ControlPlan::ClosedLoop carries the feedback loop itself; leave \
                 CutPlannerConfig::feedback as None"
            ),
            ServeConfigError::GovernedWithoutTelemetry => {
                write!(f, "ControlPlan::Governed needs link telemetry: configure a link model (ServeConfig::link)")
            }
            ServeConfigError::GovernedFixedCut => {
                write!(f, "an SLA governor must be free to move the cut; drop the fixed-cut payload")
            }
        }
    }
}

impl std::error::Error for ServeConfigError {}

/// Anything [`try_serve`] / [`Fleet::new`] / [`Fleet::serve`] can reject:
/// an invalid configuration, replicas that do not match it, or a
/// malformed request trace.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The configuration itself violates a static invariant.
    Config(ServeConfigError),
    /// `edges.len()` does not match [`ServeConfig::edge_workers`].
    EdgeReplicaMismatch {
        /// Configured edge workers.
        workers: usize,
        /// Edge replicas supplied.
        replicas: usize,
    },
    /// `clouds.len()` does not match [`ServeConfig::cloud_workers`].
    CloudReplicaMismatch {
        /// Configured cloud workers.
        workers: usize,
        /// Cloud replicas supplied.
        replicas: usize,
    },
    /// A request with a NaN or infinite arrival time.
    NonFiniteArrival {
        /// Index of the offending request in the trace.
        index: usize,
        /// Originating device.
        device: usize,
        /// Per-device sequence number.
        seq: usize,
    },
    /// Requests not sorted by arrival time.
    UnsortedArrivals,
    /// A request with a negative arrival time.
    NegativeArrival {
        /// Index of the offending request in the trace.
        index: usize,
    },
    /// A request whose image is not a single-instance `[1, C, H, W]`
    /// batch.
    NotSingleInstance {
        /// Index of the offending request in the trace.
        index: usize,
    },
    /// Feature-payload serving with an edge replica lacking a
    /// cloud-prefix replica.
    MissingCloudPrefix {
        /// The edge worker whose replica has no prefix.
        worker: usize,
    },
    /// A fixed cut outside the cloud network's cut-layer range.
    FixedCutOutOfRange {
        /// The configured cut.
        cut: usize,
        /// Cut layers the cloud network actually has.
        cut_layers: usize,
    },
    /// Edge cloud-prefix and cloud replicas disagree on the layer
    /// enumeration.
    PrefixMismatch {
        /// Cut layers of the edge-side prefix replica.
        edge_layers: usize,
        /// Cut layers of the cloud replica.
        cloud_layers: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(e) => e.fmt(f),
            ServeError::EdgeReplicaMismatch { workers, replicas } => {
                write!(f, "one edge replica per edge worker ({workers} workers, {replicas} replicas)")
            }
            ServeError::CloudReplicaMismatch { workers, replicas } => {
                write!(f, "one cloud replica per cloud worker ({workers} workers, {replicas} replicas)")
            }
            ServeError::NonFiniteArrival { index, device, seq } => {
                write!(f, "non-finite arrival time for request {index} (device {device}, seq {seq})")
            }
            ServeError::UnsortedArrivals => write!(f, "requests must be sorted by arrival time"),
            ServeError::NegativeArrival { index } => {
                write!(f, "negative arrival time for request {index}")
            }
            ServeError::NotSingleInstance { index } => {
                write!(f, "requests carry single-instance [1, C, H, W] images (request {index} is not)")
            }
            ServeError::MissingCloudPrefix { worker } => {
                write!(f, "feature-payload serving: edge worker {worker} has no cloud prefix")
            }
            ServeError::FixedCutOutOfRange { cut, cut_layers } => {
                write!(f, "fixed cut {cut} out of range (cloud network has {cut_layers} cut layers)")
            }
            ServeError::PrefixMismatch { edge_layers, cloud_layers } => write!(
                f,
                "edge cloud-prefix and cloud replicas disagree on the layer enumeration \
                 ({edge_layers} vs {cloud_layers} cut layers)"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeConfigError> for ServeError {
    fn from(e: ServeConfigError) -> Self {
        ServeError::Config(e)
    }
}

/// Normalises a [`ControlPlan`] into the legacy field combination: the
/// single code path every entry point ([`try_serve`], the deprecated free
/// [`serve`] shim, [`Fleet::new`] / [`Fleet::serve`],
/// [`ServeConfigBuilder::build`]) funnels through, so a plan and the
/// equivalent hand-assembled legacy configuration are *the same*
/// configuration by the time the runtime sees them.
///
/// Returns the effective configuration (the input expanded, `control`
/// cleared) plus the governor configuration when the plan is
/// [`ControlPlan::Governed`]. A `None` plan passes the input through
/// untouched.
fn effective_config(cfg: &ServeConfig) -> Result<(ServeConfig, Option<GovernorConfig>), ServeConfigError> {
    let Some(plan) = &cfg.control else { return Ok((cfg.clone(), None)) };
    if cfg.controller.is_some() {
        return Err(ServeConfigError::ControlPlanControllerConflict);
    }
    // The specific incoherence first, so the error names it: a governor
    // pinned to a fixed cut has nothing to govern.
    if let (ControlPlan::Governed(_), PayloadPlan::Features(fc)) = (plan, &cfg.payload) {
        if matches!(fc.cut, CutSelection::Fixed(_)) {
            return Err(ServeConfigError::GovernedFixedCut);
        }
    }
    if cfg.payload != PayloadPlan::default() {
        return Err(ServeConfigError::ControlPlanPayloadConflict);
    }
    let mut eff = cfg.clone();
    eff.control = None;
    match plan {
        ControlPlan::Static { cut, wire, controller } => {
            eff.payload = PayloadPlan::Features(FeatureConfig { wire: *wire, cut: CutSelection::Fixed(*cut) });
            eff.controller = *controller;
            Ok((eff, None))
        }
        ControlPlan::ClosedLoop { planner, feedback, wire, controller } => {
            if planner.feedback.is_some() {
                return Err(ServeConfigError::ClosedLoopFeedbackConflict);
            }
            let mut pc = planner.clone();
            pc.feedback = Some(*feedback);
            eff.payload = PayloadPlan::Features(FeatureConfig { wire: *wire, cut: CutSelection::Planned(pc) });
            eff.controller = *controller;
            Ok((eff, None))
        }
        ControlPlan::Governed(target) => {
            if cfg.link.is_none() {
                return Err(ServeConfigError::GovernedWithoutTelemetry);
            }
            // With a fleet the planner's classes come from the spec
            // (FleetClassesConflict guards the combination); without one
            // a single default edge class keeps the legacy convention.
            let classes = if cfg.fleet.is_some() { Vec::new() } else { vec![DeviceProfile::edge_gpu_cifar()] };
            let pc = CutPlannerConfig {
                classes,
                cloud: DeviceProfile::cloud_accelerator(),
                objective: Objective::Latency,
                feedback: Some(LinkFeedback::default()),
            };
            // The governor starts at the open-loop operating point —
            // lossless f32 on latency-planned cuts, the configured
            // routing policy untouched — and only moves away from it
            // when live windows violate the SLA.
            eff.payload =
                PayloadPlan::Features(FeatureConfig { wire: FeatureWire::F32, cut: CutSelection::Planned(pc) });
            eff.controller = None;
            Ok((eff, Some(GovernorConfig::new(*target))))
        }
    }
}

/// Checks every invariant knowable from the configuration alone.
fn validate_config(cfg: &ServeConfig) -> Result<(), ServeConfigError> {
    if cfg.edge_workers == 0 {
        return Err(ServeConfigError::NoEdgeWorkers);
    }
    if cfg.max_batch == 0 {
        return Err(ServeConfigError::ZeroMaxBatch);
    }
    if cfg.queue_depth == 0 {
        return Err(ServeConfigError::ZeroQueueDepth);
    }
    if !cfg.link_schedule.is_empty() && cfg.link.is_none() {
        return Err(ServeConfigError::ScheduleWithoutLink);
    }
    if matches!(cfg.transport, TransportKind::Pipe(_)) && !cfg.link_schedule.is_empty() {
        return Err(ServeConfigError::ScheduleOnPipe);
    }
    if let Some(cc) = &cfg.controller {
        if cc.window == 0 {
            return Err(ServeConfigError::ControllerWindowEmpty);
        }
    }
    // A controller always drives an entropy-threshold policy, which needs
    // the cloud; otherwise the configured policy decides.
    let edge_only = cfg.controller.is_none() && cfg.policy.is_edge_only();
    if cfg.cloud_workers == 0 && !edge_only {
        return Err(ServeConfigError::PolicyNeedsCloud);
    }
    if let PayloadPlan::Features(fc) = &cfg.payload {
        if let CutSelection::Planned(pc) = &fc.cut {
            if cfg.fleet.is_some() && !pc.classes.is_empty() {
                return Err(ServeConfigError::FleetClassesConflict);
            }
            if cfg.fleet.is_none() && pc.classes.is_empty() {
                return Err(ServeConfigError::NoPlannerClasses);
            }
            if cfg.link.is_none() {
                return Err(ServeConfigError::PlannedCutWithoutLink);
            }
            if let Some(fb) = &pc.feedback {
                if fb.replan_every == 0 {
                    return Err(ServeConfigError::FeedbackNeverReplans);
                }
            }
        }
    }
    Ok(())
}

/// Checks the configuration plus everything that needs the replicas and
/// the trace: worker/replica counts, arrival-time sanity, image shapes
/// and feature-payload prefix consistency.
fn validate_serve(
    cfg: &ServeConfig,
    edges: &[EdgeReplica],
    clouds: &[SegmentedCnn],
    requests: &[ServeRequest],
) -> Result<(), ServeError> {
    validate_config(cfg)?;
    if cfg.edge_workers != edges.len() {
        return Err(ServeError::EdgeReplicaMismatch { workers: cfg.edge_workers, replicas: edges.len() });
    }
    if cfg.cloud_workers != clouds.len() {
        return Err(ServeError::CloudReplicaMismatch { workers: cfg.cloud_workers, replicas: clouds.len() });
    }
    // Finiteness first: a NaN arrival would otherwise trip the sortedness
    // check (NaN fails every comparison) with a misleading message.
    for (i, r) in requests.iter().enumerate() {
        if !r.arrival_s.is_finite() {
            return Err(ServeError::NonFiniteArrival { index: i, device: r.device, seq: r.seq });
        }
    }
    if !requests.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s) {
        return Err(ServeError::UnsortedArrivals);
    }
    for (i, r) in requests.iter().enumerate() {
        if r.arrival_s < 0.0 {
            return Err(ServeError::NegativeArrival { index: i });
        }
        if r.image.dims()[0] != 1 {
            return Err(ServeError::NotSingleInstance { index: i });
        }
    }
    if let PayloadPlan::Features(fc) = &cfg.payload {
        for (w, e) in edges.iter().enumerate() {
            if e.cloud_prefix.is_none() {
                return Err(ServeError::MissingCloudPrefix { worker: w });
            }
        }
        let edge_layers = edges[0].cloud_prefix.as_ref().expect("checked above").cut_layer_count();
        if let Some(cloud) = clouds.first() {
            if edge_layers != cloud.cut_layer_count() {
                return Err(ServeError::PrefixMismatch { edge_layers, cloud_layers: cloud.cut_layer_count() });
            }
        }
        if let CutSelection::Fixed(k) = &fc.cut {
            if *k >= edge_layers {
                return Err(ServeError::FixedCutOutOfRange { cut: *k, cut_layers: edge_layers });
            }
        }
    }
    Ok(())
}

/// One request to the serving runtime: an image from a device, due at a
/// trace-determined arrival time.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Originating device (drives device-sticky worker routing).
    pub device: usize,
    /// Per-device sequence number (0, 1, 2, … in arrival order).
    pub seq: usize,
    /// Arrival offset from the start of serving (s).
    pub arrival_s: f64,
    /// The image, `[1, C, H, W]`.
    pub image: Tensor,
    /// True class (carried for record keeping, never used for routing).
    pub truth: usize,
}

/// Builds a request trace over a dataset: instance `i` becomes device
/// `i % devices`' `i / devices`-th frame, with per-device arrival times
/// drawn from `model`. The result is sorted by arrival time (stably, so
/// simultaneous arrivals keep dataset order).
///
/// # Panics
///
/// Panics if `devices == 0`, the dataset is empty, or the arrival model
/// produces a non-finite arrival time (the error names the offending
/// request).
pub fn trace_requests(data: &Dataset, devices: usize, model: &ArrivalModel, rng: &mut Rng) -> Vec<ServeRequest> {
    assert!(devices > 0, "need at least one device");
    let n = data.len();
    assert!(n > 0, "nothing to serve");
    let per_device: Vec<usize> = (0..devices).map(|d| n / devices + usize::from(d < n % devices)).collect();
    let times: Vec<Vec<f64>> =
        per_device.iter().map(|&c| if c == 0 { Vec::new() } else { model.generate(c, rng) }).collect();
    let mut requests: Vec<ServeRequest> = (0..n)
        .map(|i| {
            let device = i % devices;
            let seq = i / devices;
            ServeRequest {
                device,
                seq,
                arrival_s: times[device][seq],
                image: data.images.slice_axis0(i, i + 1),
                truth: data.labels[i],
            }
        })
        .collect();
    for (i, r) in requests.iter().enumerate() {
        assert!(
            r.arrival_s.is_finite(),
            "non-finite arrival time {} for request {i} (device {}, seq {})",
            r.arrival_s,
            r.device,
            r.seq
        );
    }
    requests.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
    requests
}

/// One served instance, in completion order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Index of the request in the input vector.
    pub req_id: usize,
    /// Originating device.
    pub device: usize,
    /// Per-device sequence number.
    pub seq: usize,
    /// The finished Algorithm-2 record.
    pub record: InstanceRecord,
    /// End-to-end latency from (trace) arrival to completion (s).
    pub latency_s: f64,
}

/// Aggregate serving statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Requests served.
    pub total: usize,
    /// Requests classified by the cloud tier.
    pub offloaded: usize,
    /// Wall-clock time from start of dispatch to last completion (s).
    pub wall_s: f64,
    /// `total / wall_s`.
    pub throughput_hz: f64,
    /// Coalesced batches formed by the cloud tier (a batch holding mixed
    /// cut points runs one forward per cut).
    pub cloud_batches: u64,
    /// Batched forwards executed by the cloud tier (≥ `cloud_batches`).
    pub cloud_forwards: u64,
    /// Largest coalesced batch observed.
    pub max_batch_seen: usize,
    /// Bytes received by the cloud tier.
    pub bytes_to_cloud: u64,
    /// Response bytes sent back down the link
    /// ([`RESPONSE_WIRE_BYTES`] per offloaded instance).
    pub bytes_from_cloud: u64,
    /// Multiply-adds the cloud tier actually executed (suffix MACs per
    /// offloaded instance; the full network in image-payload mode).
    pub cloud_macs: u64,
    /// Multiply-adds the cloud tier did *not* recompute because the edge
    /// shipped cut-layer activations — equivalently, the prefix MACs the
    /// edge executed on behalf of the cloud. Zero in image-payload mode.
    pub cloud_macs_saved: u64,
    /// Times the cut planner re-planned mid-run and actually changed a
    /// cut (controller-driven β moves and measured-link feedback; 0 for
    /// fixed cuts or image payloads).
    pub cut_replans: u64,
    /// The cut layer each device class ended on (None in image-payload
    /// mode).
    pub final_cuts: Option<Vec<usize>>,
    /// Final measured-link estimate per device class (None unless
    /// [`LinkFeedback`] was configured; a class entry is None until its
    /// first observed batch).
    pub link_estimates: Option<Vec<Option<LinkEstimate>>>,
    /// The entropy threshold after the last controller window (None
    /// without a controller).
    pub final_threshold: Option<f32>,
    /// Requests whose main exit was never evaluated because the
    /// difficulty predictor pre-committed them to the cloud (0 without
    /// [`ServeConfig::difficulty`]): the main-exit forwards
    /// difficulty-aware routing saved.
    pub skipped_main_exits: usize,
    /// Requests served per fleet device class (Some exactly when
    /// [`ServeConfig::fleet`] is set; indexed by class).
    pub per_class_served: Option<Vec<usize>>,
    /// Requests classified by the cloud per fleet device class (Some
    /// exactly when [`ServeConfig::fleet`] is set).
    pub per_class_offload: Option<Vec<usize>>,
    /// End-to-end latency distribution per fleet device class (Some
    /// exactly when [`ServeConfig::fleet`] is set; a class entry is None
    /// until it serves its first request). Recorded incrementally into
    /// bounded [`StreamingHistogram`]s, so memory stays flat at any
    /// trace length.
    pub per_class_latency: Option<Vec<Option<StreamingHistogram>>>,
    /// Batches a cloud worker assembled from *another* worker's shard
    /// (always 0 under [`CloudIngress::SingleQueue`]). Scheduler-
    /// dependent with >1 workers: a measure of imbalance absorbed, not a
    /// deterministic invariant.
    pub steals: u64,
    /// Coalesced batches per ingress shard (indexed by lane; length
    /// `cloud_workers`). Under [`CloudIngress::SingleQueue`] this is the
    /// per-worker batch count. Sums to [`ServeStats::cloud_batches`].
    pub per_shard_batches: Vec<u64>,
    /// High-water mark of frames queued across all ingress shards at any
    /// instant (0 under [`CloudIngress::SingleQueue`], where arrivals sit
    /// in the transport's own lanes instead).
    pub max_queue_depth: usize,
    /// Decision windows whose live p95 latency violated the governed SLA
    /// (always 0 without [`ControlPlan::Governed`]). Each violation
    /// advanced the violating class one rung up the governor's ladder.
    pub sla_violations: u64,
    /// Times the governor actually *moved* the joint (β, cut, wire)
    /// operating point (0 without [`ControlPlan::Governed`]; epochs that
    /// re-derived the same point do not count).
    pub governor_decisions: u64,
    /// The governed control trajectory: the initial operating point plus
    /// one [`ControlPoint`] per decision that moved it, so
    /// `control_trajectory.as_ref().unwrap().last()` is always the final
    /// (β, cut, wire) per class. `Some` exactly when
    /// [`ControlPlan::Governed`] is configured.
    pub control_trajectory: Option<Vec<ControlPoint>>,
}

/// Everything the serving runtime produces.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// One record per request, in *input vector order* — directly
    /// comparable against the offline sweep on the same instances.
    pub records: Vec<InstanceRecord>,
    /// Per-instance completions in completion order (the stream an
    /// operator would observe).
    pub completions: Vec<Completion>,
    /// Aggregate statistics.
    pub stats: ServeStats,
}

impl ServeReport {
    /// Fraction of requests classified by the cloud.
    pub fn achieved_beta(&self) -> f64 {
        if self.stats.total == 0 {
            0.0
        } else {
            self.stats.offloaded as f64 / self.stats.total as f64
        }
    }

    /// End-to-end latency distribution over `bins` uniform bins spanning
    /// the observed range — quantiles come from
    /// [`Histogram::quantile`].
    ///
    /// # Panics
    ///
    /// Panics if there are no completions or `bins == 0`.
    pub fn latency_histogram(&self, bins: usize) -> Histogram {
        let latencies: Vec<f64> = self.completions.iter().map(|c| c.latency_s).collect();
        Histogram::of_nonnegative(&latencies, bins)
    }
}

/// An instance travelling from the dispatcher to an edge worker.
#[derive(Debug)]
struct EdgeJob<'a> {
    req_id: usize,
    req: &'a ServeRequest,
    due: Instant,
}

/// An offloaded request parked on the edge side of the transport until
/// its [`ResponseFrame`] returns: everything needed to finish the record
/// that does not cross the wire.
#[derive(Debug)]
struct PendingEntry {
    pending: PendingCloud,
    device: usize,
    seq: usize,
    due: Instant,
    /// Per-device offload index assigned by the (single) edge worker that
    /// owns the device's stream — the key the [`ReorderGate`] releases
    /// completions in, so per-device FIFO survives work stealing.
    cloud_idx: u64,
}

/// The live cut table of feature-payload serving: the current cut per
/// device class, plus the planner that re-derives it when β moves or the
/// measured-link telemetry says the wire changed.
#[derive(Debug)]
struct CutTable {
    /// None for `CutSelection::Fixed` (the table never changes).
    planner: Option<(CutPlanner, Vec<DeviceProfile>)>,
    /// The fleet spec the table is indexed by (the configured one, or the
    /// legacy-compatible implicit spec).
    spec: FleetSpec,
    /// Per-class static radio priors (all None without a fleet spec).
    links: Vec<Option<NetworkLink>>,
    per_class: Vec<usize>,
    /// The feature wire each class currently ships offloads on: the
    /// configured wire everywhere until a governor moves a class up its
    /// ladder.
    wires: Vec<FeatureWire>,
    /// What the planner minimises (the governor wraps this base objective
    /// in its SLA constraint for escalated classes).
    objective: Objective,
    replans: u64,
    /// The closed-loop configuration; None plans open-loop.
    feedback: Option<LinkFeedback>,
    /// Per-class EWMA link telemetry (present exactly when `feedback` is).
    estimator: Option<LinkEstimator>,
    /// Cloud batches observed by the feedback loop so far.
    observed_batches: u64,
}

impl CutTable {
    fn cut_for(&self, device: usize) -> usize {
        class_cut(&self.per_class, &self.spec, device)
    }

    fn wire_for(&self, device: usize) -> FeatureWire {
        self.wires[self.spec.class_of(device)]
    }

    /// Re-derives the per-class cuts under the planner's current β and
    /// whatever telemetry has accumulated; counts a replan only when a
    /// cut actually changes.
    fn replan(&mut self) {
        let Some((planner, classes)) = &self.planner else { return };
        let costs = match &self.estimator {
            Some(est) => planner.plan_classes_measured_with_links(classes, &self.links, &est.estimates()),
            None => planner.plan_classes_with_links(classes, &self.links),
        };
        let new_cuts: Vec<usize> = costs.iter().map(|c| c.cut).collect();
        if new_cuts != self.per_class {
            self.per_class = new_cuts;
            self.replans += 1;
        }
    }

    /// The governed counterpart of [`CutTable::replan`]: classes the
    /// governor has escalated (`constrained[k]`) plan against the
    /// SLA-constrained objective ([`CutPlanner::plan_for_sla_with_link`]
    /// — fewest upload bytes among the cuts that fit the p95 budget),
    /// while unescalated classes keep the base objective, so a healthy
    /// class is planned bit-identically to the open-loop path.
    fn replan_governed(&mut self, sla: &SlaObjective, constrained: &[bool]) {
        let Some((planner, classes)) = &self.planner else { return };
        let estimates =
            self.estimator.as_ref().map(LinkEstimator::estimates).unwrap_or_else(|| vec![None; classes.len()]);
        let new_cuts: Vec<usize> = classes
            .iter()
            .enumerate()
            .map(|(k, edge)| {
                let link = self.links[k];
                let measured = estimates[k].as_ref();
                if constrained[k] {
                    planner.plan_for_sla_with_link(edge, link.as_ref(), measured, sla).0.cut
                } else {
                    planner.plan_for_measured_with_link(edge, link.as_ref(), measured).cut
                }
            })
            .collect();
        if new_cuts != self.per_class {
            self.per_class = new_cuts;
            self.replans += 1;
        }
    }
}

/// The single definition of device→class cut lookup, shared by the
/// locked and lock-free edge paths. The spec resolves the class (its
/// explicit assignment, or the legacy `device % classes` convention).
fn class_cut(per_class: &[usize], spec: &FleetSpec, device: usize) -> usize {
    per_class[spec.class_of(device)]
}

/// The fleet spec serving actually runs under: the configured one, or —
/// for `ServeConfig::fleet: None` — an implicit legacy-compatible spec
/// (round-robin over the planner's device classes at [`ComputeTier::High`],
/// which scales nothing, so every lookup reduces to `device % classes`;
/// one uniform class outside planned-cut mode).
fn implicit_spec(cfg: &ServeConfig) -> FleetSpec {
    if let Some(spec) = &cfg.fleet {
        return spec.clone();
    }
    if let PayloadPlan::Features(fc) = &cfg.payload {
        if let CutSelection::Planned(pc) = &fc.cut {
            return FleetSpec::round_robin(
                pc.classes
                    .iter()
                    .map(|p| DeviceClass::new(p.name.clone(), p.clone(), ComputeTier::High))
                    .collect(),
            );
        }
    }
    FleetSpec::uniform(DeviceClass::new("edge", DeviceProfile::edge_gpu_cifar(), ComputeTier::High))
}

/// Window size of the β controller the governor synthesises when its β
/// rung first fires without a configured [`ControllerConfig`] (governed
/// plans never configure one — β belongs to the governor).
const GOVERNOR_CONTROLLER_WINDOW: usize = 32;

/// The governor's live state inside [`PolicyState`]: the decision core
/// plus the per-class latency windows the collectors feed and the
/// decision trajectory the stats report.
struct GovernorState {
    governor: Governor,
    /// Per-class end-to-end latency, cumulative + current decision
    /// window, fed by every completion (local and cloud).
    latency: Vec<WindowedQuantiles>,
    /// Epochs that actually moved the (β, cut, wire) operating point.
    decisions: u64,
    /// The initial operating point plus one entry per decision.
    trajectory: Vec<ControlPoint>,
}

/// Shared (mutexed) routing policy state: the engine all edge workers
/// consult, plus the controller feedback loop, the live cut table and —
/// under [`ControlPlan::Governed`] — the SLA governor.
struct PolicyState {
    engine: RoutingEngine,
    controller: Option<ThresholdController>,
    window: usize,
    seen: usize,
    offloaded: usize,
    /// Lifetime routing counts (never reset): the achieved offload
    /// fraction the governor seeds its β rung from.
    seen_total: u64,
    offloaded_total: u64,
    /// The configured routing policy — what the governor synthesises a β
    /// controller from when its β rung first fires.
    base_policy: OffloadPolicy,
    cuts: Option<CutTable>,
    governor: Option<GovernorState>,
}

impl PolicyState {
    fn new(
        cfg: &ServeConfig,
        cloud_available: bool,
        cuts: Option<CutTable>,
        governor: Option<GovernorConfig>,
    ) -> PolicyState {
        let (policy, controller, window) = match cfg.controller {
            Some(cc) => {
                assert!(cc.window > 0, "controller window must be non-empty");
                (OffloadPolicy::EntropyThreshold(cc.controller.threshold()), Some(cc.controller), cc.window)
            }
            None => (cfg.policy, None, 0),
        };
        let governor = governor.map(|config| {
            let table = cuts.as_ref().expect("a governed plan always builds a planned cut table");
            let classes = table.per_class.len();
            GovernorState {
                governor: Governor::new(config, classes),
                latency: vec![WindowedQuantiles::for_latency(); classes],
                decisions: 0,
                // Seed the trajectory with the initial operating point so
                // `last()` is always the final (β, cut, wire) per class.
                trajectory: vec![ControlPoint {
                    after_batches: 0,
                    beta_target: None,
                    cuts: table.per_class.clone(),
                    wires: table.wires.clone(),
                }],
            }
        });
        PolicyState {
            engine: RoutingEngine::new(policy, cloud_available),
            controller,
            window,
            seen: 0,
            offloaded: 0,
            seen_total: 0,
            offloaded_total: 0,
            base_policy: cfg.policy,
            cuts,
            governor,
        }
    }

    /// Feeds one routing decision back into the controller; when a window
    /// fills, the threshold (and the engine's policy) is retuned and —
    /// since the offload fraction just moved — the cut planner re-plans
    /// the per-class cuts under the new contention (and whatever link
    /// telemetry has accumulated).
    fn observe(&mut self, offloaded: bool) {
        self.seen_total += 1;
        self.offloaded_total += u64::from(offloaded);
        let Some(ctrl) = &mut self.controller else { return };
        self.seen += 1;
        self.offloaded += usize::from(offloaded);
        if self.seen == self.window {
            let achieved = self.offloaded as f64 / self.seen as f64;
            let t = ctrl.observe_window(self.offloaded, self.seen);
            self.engine.set_policy(OffloadPolicy::EntropyThreshold(t));
            self.seen = 0;
            self.offloaded = 0;
            if let Some(table) = &mut self.cuts {
                if let Some((planner, _)) = &mut table.planner {
                    planner.set_beta(achieved);
                    // A governed cut table replans only at the governor's
                    // own epochs, with its per-class constraints.
                    if self.governor.is_none() {
                        table.replan();
                    }
                }
            }
        }
    }

    /// Records one completion's end-to-end latency into `class`'s live
    /// quantile window. No-op without a governor.
    fn record_latency(&mut self, class: usize, latency_s: f64) {
        if let Some(gv) = &mut self.governor {
            gv.latency[class].record(latency_s);
        }
    }

    /// Feeds one served cloud batch's link telemetry into the estimator
    /// (one observation per device class present in the batch) and, every
    /// [`LinkFeedback::replan_every`] batches, replans the cuts from the
    /// measured rates — through the governor's decision epoch when one is
    /// configured. No-op without a closed-loop cut table.
    #[allow(clippy::too_many_arguments)]
    fn observe_link(
        &mut self,
        devices: &[usize],
        up_bytes: u64,
        up_s: f64,
        down_bytes: u64,
        down_s: f64,
        rtt_s: f64,
    ) {
        let due = {
            let Some(table) = &mut self.cuts else { return };
            let Some(fb) = table.feedback else { return };
            let spec = &table.spec;
            let Some(est) = &mut table.estimator else { return };
            let mut seen = vec![false; est.class_count()];
            for &d in devices {
                let class = spec.class_of(d);
                if !seen[class] {
                    seen[class] = true;
                    est.observe(class, up_bytes, up_s, down_bytes, down_s, rtt_s);
                }
            }
            table.observed_batches += 1;
            table.observed_batches % fb.replan_every == 0
        };
        if !due {
            return;
        }
        if self.governor.is_some() {
            self.governor_epoch();
        } else if let Some(table) = &mut self.cuts {
            table.replan();
        }
    }

    /// One governor decision epoch (every [`LinkFeedback::replan_every`]
    /// cloud batches): judge each class's live latency window against the
    /// SLA (escalating violators one ladder rung), roll the windows, then
    /// apply the ladder — per-class wires, an SLA-constrained replan for
    /// escalated classes, and the β target through a (synthesised)
    /// threshold controller. Counts a decision only when the joint
    /// (β, cut, wire) point actually moved.
    fn governor_epoch(&mut self) {
        let (Some(gv), Some(table)) = (self.governor.as_mut(), self.cuts.as_mut()) else { return };
        let achieved =
            if self.seen_total == 0 { 0.0 } else { self.offloaded_total as f64 / self.seen_total as f64 };
        let classes = table.per_class.len();
        for class in 0..classes {
            let w = &mut gv.latency[class];
            gv.governor.observe_window(class, w.window_quantile(0.95), w.window_count(), achieved);
            // Each epoch judges only the evidence gathered since the
            // last one: close the window either way.
            w.roll();
        }
        for class in 0..classes {
            table.wires[class] = gv.governor.wire(class);
        }
        let constrained: Vec<bool> = (0..classes).map(|c| gv.governor.sla_constrained(c)).collect();
        if constrained.iter().any(|&c| c) {
            let sla = gv.governor.sla_objective(table.objective);
            table.replan_governed(&sla, &constrained);
        } else {
            // No class escalated yet: plan exactly like the open-loop
            // path, so a generous SLA serves record-identically to it.
            table.replan();
        }
        if let Some(beta) = gv.governor.beta_target() {
            match &mut self.controller {
                Some(ctrl) => ctrl.set_target_beta(beta),
                // The β rung binds entropy-threshold routing only: the
                // governor synthesises an integral controller steering
                // the configured threshold toward the lowered target.
                // Other policies leave routing untouched (the rung is
                // inert, never a panic).
                None => {
                    if let OffloadPolicy::EntropyThreshold(t0) = self.base_policy {
                        self.controller = Some(ThresholdController::new(t0, beta, 2.0, (0.0, 3.0)));
                        self.window = GOVERNOR_CONTROLLER_WINDOW;
                        self.seen = 0;
                        self.offloaded = 0;
                    }
                }
            }
        }
        let point = ControlPoint {
            after_batches: table.observed_batches,
            beta_target: gv.governor.beta_target(),
            cuts: table.per_class.clone(),
            wires: table.wires.clone(),
        };
        let last = gv.trajectory.last().expect("trajectory seeded with the initial operating point");
        let moved = last.beta_target != point.beta_target || last.cuts != point.cuts || last.wires != point.wires;
        if moved {
            gv.decisions += 1;
            gv.trajectory.push(point);
        }
    }
}

/// Cloud-tier counters, merged under a mutex by the cloud workers.
#[derive(Debug, Default)]
struct CloudCounters {
    batches: u64,
    forwards: u64,
    max_batch: usize,
    bytes: u64,
    bytes_down: u64,
    macs: u64,
    macs_saved: u64,
    steals: u64,
    /// Coalesced batches per ingress shard / lane (sized `cloud_workers`).
    per_shard: Vec<u64>,
}

/// Coalesces queued request frames into a batch: blocks for the first
/// frame, then drains greedily up to `max_batch`, waiting at most
/// `max_wait` for stragglers. Returns `None` once the uplink is closed
/// and drained.
fn coalesce_frames<U: UplinkReceiver>(
    up: &mut U,
    max_batch: usize,
    max_wait: Duration,
) -> Option<Vec<InboundRequest>> {
    let first = match up.recv(None) {
        RecvOutcome::Frame(f) => f,
        RecvOutcome::Closed => return None,
        RecvOutcome::TimedOut => unreachable!("recv without a timeout cannot time out"),
    };
    let mut batch = vec![first];
    let deadline = Instant::now() + max_wait;
    while batch.len() < max_batch {
        let now = Instant::now();
        let timeout = if now >= deadline { Duration::ZERO } else { deadline - now };
        match up.recv(Some(timeout)) {
            RecvOutcome::Frame(f) => batch.push(f),
            RecvOutcome::TimedOut | RecvOutcome::Closed => break,
        }
    }
    Some(batch)
}

/// One bounded shard of the [`ShardedIngress`]: the frames pumped off one
/// transport lane that have not yet been coalesced into a batch.
#[derive(Debug)]
struct ShardState {
    queue: VecDeque<InboundRequest>,
    /// False once the lane's pump saw the uplink close and drained it.
    open: bool,
}

/// Shared state behind the [`ShardedIngress`] lock.
#[derive(Debug)]
struct IngressState {
    shards: Vec<ShardState>,
    /// Set by [`ShardedIngress::abort`] when any cloud worker unwinds, so
    /// pumps and peers blocked on the condvars wake and exit instead of
    /// deadlocking the join cascade.
    aborted: bool,
    /// High-water mark of frames queued across all shards at any instant.
    max_depth: usize,
}

/// The sharded work-stealing cloud ingress ([`CloudIngress::Sharded`]).
///
/// One pump thread per transport lane drains arrived frames into that
/// lane's bounded shard; each cloud worker coalesces batches from its own
/// shard first and, when its shard is empty, *steals* from the deepest
/// backlogged peer instead of sleeping. A steal takes a **FIFO prefix**
/// of the victim shard — whole device-sticky runs, in arrival order, up
/// to a full batch — so a device's frames are never reordered (relative
/// to each other) on their way into a batch, and stolen batches coalesce
/// as fully as owned ones; the
/// [`ReorderGate`] then restores per-device completion order across
/// concurrently running batches.
///
/// Built on `std::sync` primitives (the vendored `parking_lot` carries no
/// `Condvar`), mirroring the byte pipe in [`crate::transport`].
#[derive(Debug)]
struct ShardedIngress {
    state: StdMutex<IngressState>,
    /// Signalled on frame arrival, shard close, or abort.
    arrived: Condvar,
    /// Signalled when frames leave a full shard (and on abort).
    space: Condvar,
    /// Per-shard frame capacity ([`ServeConfig::queue_depth`]).
    depth_cap: usize,
}

impl ShardedIngress {
    fn new(shards: usize, depth_cap: usize) -> Self {
        let shards = (0..shards).map(|_| ShardState { queue: VecDeque::new(), open: true }).collect();
        ShardedIngress {
            state: StdMutex::new(IngressState { shards, aborted: false, max_depth: 0 }),
            arrived: Condvar::new(),
            space: Condvar::new(),
            depth_cap,
        }
    }

    /// Pump side: enqueues one frame on `shard`, blocking while the shard
    /// is at capacity (backpressure reaches the transport and from there
    /// the edge workers). `Err(())` once the ingress aborted.
    fn push(&self, shard: usize, req: InboundRequest) -> Result<(), ()> {
        let mut st = self.state.lock().expect("ingress lock poisoned");
        while !st.aborted && st.shards[shard].queue.len() >= self.depth_cap {
            st = self.space.wait(st).expect("ingress lock poisoned");
        }
        if st.aborted {
            return Err(());
        }
        st.shards[shard].queue.push_back(req);
        let depth: usize = st.shards.iter().map(|s| s.queue.len()).sum();
        st.max_depth = st.max_depth.max(depth);
        self.arrived.notify_all();
        Ok(())
    }

    /// Pump side: marks `shard`'s lane as closed and drained.
    fn close_shard(&self, shard: usize) {
        self.state.lock().expect("ingress lock poisoned").shards[shard].open = false;
        self.arrived.notify_all();
    }

    /// Unblocks every thread parked on the ingress; pushes fail and
    /// `next_batch` returns `None` from here on. Idempotent.
    fn abort(&self) {
        self.state.lock().expect("ingress lock poisoned").aborted = true;
        self.arrived.notify_all();
        self.space.notify_all();
    }

    fn max_depth(&self) -> usize {
        self.state.lock().expect("ingress lock poisoned").max_depth
    }

    /// Worker side: the next coalesced batch for `shard`'s owner, and
    /// whether it was stolen. Own-shard batches block for the first frame,
    /// drain greedily to `max_batch` and wait up to `max_wait` for
    /// stragglers — the same contract as [`coalesce_frames`]. When the own
    /// shard is empty but a peer's is not, a FIFO prefix — whole
    /// device-sticky runs, in arrival order, up to `max_batch` — is stolen
    /// from the deepest victim and returned immediately (no straggler
    /// wait: the point of stealing is to soak backlog now, and taking a
    /// prefix keeps every device's frames in order while still filling
    /// the batch). `None` once every shard is closed and drained, or on
    /// abort.
    fn next_batch(
        &self,
        shard: usize,
        max_batch: usize,
        max_wait: Duration,
    ) -> Option<(Vec<InboundRequest>, bool)> {
        let mut st = self.state.lock().expect("ingress lock poisoned");
        loop {
            if st.aborted {
                return None;
            }
            if let Some(first) = st.shards[shard].queue.pop_front() {
                let mut batch = vec![first];
                let deadline = Instant::now() + max_wait;
                loop {
                    while batch.len() < max_batch {
                        match st.shards[shard].queue.pop_front() {
                            Some(f) => batch.push(f),
                            None => break,
                        }
                    }
                    // A partial batch is returned (never dropped) on
                    // abort, lane close, or deadline — mirroring how
                    // `coalesce_frames` gives up on stragglers.
                    if batch.len() >= max_batch || st.aborted {
                        break;
                    }
                    if st.shards[shard].queue.is_empty() && !st.shards[shard].open {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, _) = self.arrived.wait_timeout(st, deadline - now).expect("ingress lock poisoned");
                    st = guard;
                }
                self.space.notify_all();
                return Some((batch, false));
            }
            let victim = st
                .shards
                .iter()
                .enumerate()
                .filter(|(i, s)| *i != shard && !s.queue.is_empty())
                .max_by_key(|(_, s)| s.queue.len())
                .map(|(i, _)| i);
            if let Some(v) = victim {
                let take = st.shards[v].queue.len().min(max_batch);
                let batch: Vec<InboundRequest> = st.shards[v].queue.drain(..take).collect();
                self.space.notify_all();
                return Some((batch, true));
            }
            if st.shards.iter().all(|s| s.queue.is_empty() && !s.open) {
                return None;
            }
            st = self.arrived.wait(st).expect("ingress lock poisoned");
        }
    }
}

/// Aborts the ingress if its holder unwinds. Held by every pump and
/// sharded cloud worker: if one panics mid-operation, the abort unwedges
/// every thread blocked on the ingress condvars so the join cascade can
/// collect the panic instead of deadlocking. A clean exit leaves the
/// ingress alone — peers may still be draining their shards.
struct IngressAbortGuard<'a> {
    ingress: &'a ShardedIngress,
}

impl Drop for IngressAbortGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.ingress.abort();
        }
    }
}

/// Per-device release state of the [`ReorderGate`].
#[derive(Debug, Default)]
struct DeviceGate {
    /// The offload index the device's next released completion must have.
    next: u64,
    /// Completions that arrived early, parked until their turn.
    parked: BTreeMap<u64, Completion>,
}

/// Releases offload completions in per-device offload order
/// ([`PendingEntry::cloud_idx`]), regardless of which cloud worker — own
/// shard or thief — classified each batch. This is what keeps the
/// per-device FIFO guarantee of the single-queue path intact under work
/// stealing: a stolen batch can *finish* before an earlier in-flight
/// batch of the same device, but its completions wait here.
#[derive(Debug, Default)]
struct ReorderGate {
    devices: HashMap<usize, DeviceGate>,
}

impl ReorderGate {
    /// Emits `c` if `idx` is `device`'s next expected offload index (plus
    /// any parked successors it unblocks); parks it otherwise.
    fn release(&mut self, device: usize, idx: u64, c: Completion, tx: &Sender<Completion>) {
        let gate = self.devices.entry(device).or_default();
        if idx != gate.next {
            gate.parked.insert(idx, c);
            return;
        }
        let _ = tx.send(c);
        gate.next += 1;
        while let Some(ready) = gate.parked.remove(&gate.next) {
            let _ = tx.send(ready);
            gate.next += 1;
        }
    }
}

/// Derives the initial cut table (and its planner) from the payload plan
/// and the resolved fleet spec.
fn build_cut_table(
    cfg: &ServeConfig,
    edges: &[EdgeReplica],
    requests: &[ServeRequest],
    spec: &FleetSpec,
) -> Option<CutTable> {
    let PayloadPlan::Features(fc) = &cfg.payload else { return None };
    let prefix = edges
        .first()
        .and_then(|e| e.cloud_prefix.as_ref())
        .expect("feature-payload serving requires cloud-prefix replicas on every edge worker");
    let cut_layers = prefix.cut_layer_count();
    match &fc.cut {
        CutSelection::Fixed(k) => {
            assert!(*k < cut_layers, "fixed cut {k} out of range (cloud network has {cut_layers} cut layers)");
            Some(CutTable {
                planner: None,
                spec: spec.clone(),
                links: vec![None; spec.class_count()],
                per_class: vec![*k; spec.class_count()],
                wires: vec![fc.wire; spec.class_count()],
                objective: Objective::Latency,
                replans: 0,
                feedback: None,
                estimator: None,
                observed_batches: 0,
            })
        }
        CutSelection::Planned(pc) => {
            // With a fleet the planner's classes are the spec's effective
            // (tier-scaled) profiles and its per-class radio priors;
            // without one, the legacy explicit class list plans against
            // the shared link only.
            let (classes, links) = if cfg.fleet.is_some() {
                (spec.effective_profiles(), spec.link_priors())
            } else {
                (pc.classes.clone(), vec![None; pc.classes.len()])
            };
            assert!(!classes.is_empty(), "planned cut selection needs at least one device class");
            let link = cfg.link.expect("planned cut selection requires a link model (ServeConfig::link)");
            let in_elems: u64 = prefix.in_shape.iter().map(|&d| d as u64).product();
            let env = PartitionEnv {
                edge: classes[0].clone(),
                cloud: pc.cloud.clone(),
                link,
                bytes_per_elem: fc.wire.bytes_per_elem(),
                raw_input_bytes: fc.wire.bytes_per_elem() * in_elems,
                response_bytes: RESPONSE_WIRE_BYTES,
            };
            // Contention counts the *distinct* devices sharing the
            // uplink: a trace from devices {0, 7} is two streams, not
            // eight (ids may be sparse — device numbering is opaque).
            let streams = requests.iter().map(|r| r.device).collect::<std::collections::BTreeSet<_>>().len();
            let mut planner = CutPlanner::from_network(prefix, env, pc.objective, streams.max(1));
            if let Some(cc) = &cfg.controller {
                planner.set_beta(cc.controller.target_beta());
            }
            let estimator = pc.feedback.map(|fb| {
                assert!(fb.replan_every > 0, "feedback must replan after a positive number of batches");
                planner.set_prior_samples(fb.prior_samples);
                LinkEstimator::new(classes.len(), fb.alpha)
            });
            let per_class: Vec<usize> =
                planner.plan_classes_with_links(&classes, &links).iter().map(|c| c.cut).collect();
            let wires = vec![fc.wire; per_class.len()];
            Some(CutTable {
                planner: Some((planner, classes)),
                spec: spec.clone(),
                links,
                per_class,
                wires,
                objective: pc.objective,
                replans: 0,
                feedback: pc.feedback,
                estimator,
                observed_batches: 0,
            })
        }
    }
}

/// Runs the serving runtime to completion over a request trace.
///
/// `edges` and `clouds` are per-worker model replicas (`edges[w]` serves
/// edge worker `w`); replicate a trained system onto them with
/// `MeaNet::replicate_into` / `mea_nn::StateDict::from_cnn` so every
/// worker answers identically. In feature-payload mode every
/// [`EdgeReplica`] must also carry a bitwise replica of the cloud network
/// (its prefix runs at the edge). Requests must be sorted by `arrival_s`
/// (see [`trace_requests`]); the dispatcher paces them in real time.
///
/// Prefer [`Fleet`], which owns its replicas and validates once at
/// construction; `try_serve` is the borrowing form underneath it.
///
/// # Errors
///
/// Every inconsistency is rejected up front, before any thread spawns:
/// [`ServeError::Config`] wraps the static [`ServeConfigError`]s
/// (zero workers or batch, schedules without links, planner
/// misconfiguration, fleet/class conflicts), and the remaining variants
/// cover replica-count mismatches, malformed traces (non-finite,
/// unsorted or negative arrivals, multi-instance images) and
/// feature-payload plans whose replicas lack or disagree on cloud
/// prefixes or whose fixed cut is out of range.
pub fn try_serve(
    cfg: &ServeConfig,
    edges: &mut [EdgeReplica],
    clouds: &mut [SegmentedCnn],
    requests: &[ServeRequest],
) -> Result<ServeReport, ServeError> {
    // One shared normalisation path: every entry point (this function,
    // the deprecated free `serve` shim, `Fleet::serve`) expands a
    // ControlPlan into the legacy fields here, so all of them validate
    // and serve the *same* effective configuration.
    let (cfg, governor) = effective_config(cfg)?;
    let cfg = &cfg;
    validate_serve(cfg, edges, clouds, requests)?;
    Ok(match &cfg.transport {
        TransportKind::Modelled => serve_core(
            cfg,
            edges,
            clouds,
            requests,
            ModelledTransport::new(cfg.cloud_workers, cfg.queue_depth),
            false,
            governor,
        ),
        TransportKind::Pipe(pc) => serve_core(
            cfg,
            edges,
            clouds,
            requests,
            PipeTransport::new(cfg.cloud_workers, pc.clone()),
            true,
            governor,
        ),
    })
}

/// Panic-on-misuse shim over [`try_serve`], kept for source
/// compatibility.
///
/// # Panics
///
/// Panics with the [`ServeError`]'s message on any configuration,
/// replica or trace inconsistency — exactly the conditions [`try_serve`]
/// returns as `Err`.
#[deprecated(note = "panics on misuse; use Fleet::serve, or try_serve and handle the ServeError")]
pub fn serve(
    cfg: &ServeConfig,
    edges: &mut [EdgeReplica],
    clouds: &mut [SegmentedCnn],
    requests: &[ServeRequest],
) -> ServeReport {
    try_serve(cfg, edges, clouds, requests).unwrap_or_else(|e| panic!("{e}"))
}

/// A serving deployment behind one validated entry point: the
/// configuration plus the edge/cloud replicas it owns.
///
/// [`Fleet::new`] runs every request-independent check once —
/// configuration invariants *and* replica consistency (counts, cloud
/// prefixes, layer enumeration, cut range) — so a `Fleet` in hand is
/// known-servable and [`Fleet::serve`] can only fail on a malformed
/// trace. This replaces the panic-on-misuse free [`serve`] convention:
/// misconfiguration is a value ([`ServeError`]), not a crash.
#[derive(Debug)]
pub struct Fleet {
    config: ServeConfig,
    edges: Vec<EdgeReplica>,
    clouds: Vec<SegmentedCnn>,
}

impl Fleet {
    /// Validates the configuration against the replicas and bundles them.
    ///
    /// # Errors
    ///
    /// Everything [`try_serve`] rejects except trace errors: wrapped
    /// [`ServeConfigError`]s, replica-count mismatches, and
    /// feature-payload prefix/cut inconsistencies.
    pub fn new(
        config: ServeConfig,
        edges: Vec<EdgeReplica>,
        clouds: Vec<SegmentedCnn>,
    ) -> Result<Fleet, ServeError> {
        // Validate the *effective* configuration (any ControlPlan
        // expanded) so plan-induced requirements — e.g. a governed plan
        // needing cloud-prefix replicas — are caught here; the original
        // configuration is kept so `Fleet::config` returns what the
        // caller set and `Fleet::serve` re-normalises through the same
        // path as `try_serve`.
        let (effective, _) = effective_config(&config)?;
        validate_serve(&effective, &edges, &clouds, &[])?;
        Ok(Fleet { config, edges, clouds })
    }

    /// Serves a request trace to completion (see [`try_serve`]).
    ///
    /// # Errors
    ///
    /// Only trace errors remain possible after [`Fleet::new`]: non-finite,
    /// unsorted or negative arrival times, or multi-instance images.
    pub fn serve(&mut self, requests: &[ServeRequest]) -> Result<ServeReport, ServeError> {
        try_serve(&self.config, &mut self.edges, &mut self.clouds, requests)
    }

    /// The validated configuration this fleet serves under.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The heterogeneous device registry, if one is configured.
    pub fn spec(&self) -> Option<&FleetSpec> {
        self.config.fleet.as_ref()
    }

    /// Releases the configuration and replicas (e.g. to retrain the
    /// models or rebuild with a different configuration).
    pub fn into_parts(self) -> (ServeConfig, Vec<EdgeReplica>, Vec<SegmentedCnn>) {
        (self.config, self.edges, self.clouds)
    }
}

/// Renders a joined worker's panic payload so the original message
/// survives propagation out of the serving runtime.
fn panic_note(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Closes a lane's response direction when its cloud worker exits —
/// normally or mid-unwind — so the lane's response collector always sees
/// end-of-stream instead of blocking forever behind a dead worker.
struct LaneCloser<'a, T: Transport> {
    transport: &'a T,
    lane: usize,
}

impl<T: Transport> Drop for LaneCloser<'_, T> {
    fn drop(&mut self) {
        self.transport.close_responses(self.lane);
    }
}

/// The serving runtime over a concrete [`Transport`]. `measured` selects
/// the telemetry source: `false` feeds the [`LinkEstimator`] the link
/// model's own times (deterministic), `true` feeds it `Instant::now()`
/// deltas around the actual transfers (and skips the modelled sleeps —
/// the wire's own time is the latency).
fn serve_core<T: Transport>(
    cfg: &ServeConfig,
    edges: &mut [EdgeReplica],
    clouds: &mut [SegmentedCnn],
    requests: &[ServeRequest],
    transport: T,
    measured: bool,
    governor: Option<GovernorConfig>,
) -> ServeReport {
    let n = requests.len();
    let cloud_available = cfg.cloud_workers > 0;
    let spec = implicit_spec(cfg);
    let cut_table = build_cut_table(cfg, edges, requests, &spec);
    // Calibrated per-channel activation grids, shared by edge encoders
    // and cloud decoders out of band: needed whenever offloads may ship
    // grid-indexed per-channel int8 frames — the configured wire, or any
    // governed run (per-channel int8 is the governor's deepest wire
    // rung). Calibrated once from the first request's activations at
    // every cut, with headroom for hotter inputs.
    let wants_grids = match &cfg.payload {
        PayloadPlan::Features(fc) => fc.wire == FeatureWire::PerChannelInt8 || governor.is_some(),
        _ => false,
    };
    let grids: Option<ActivationGrids> = match (wants_grids, requests.first()) {
        (true, Some(first)) => {
            let prefix = edges[0].cloud_prefix.as_mut().expect("validated in try_serve()");
            let per_cut = (0..prefix.cut_layer_count())
                .map(|k| {
                    let act = prefix.forward_prefix(&first.image, k, Mode::Eval);
                    Some(channel_absmax(&act).iter().map(|a| (a * GRID_HEADROOM).max(1e-6)).collect())
                })
                .collect();
            Some(ActivationGrids::from_absmax(per_cut))
        }
        _ => None,
    };
    let grids = grids.as_ref();
    let governed = governor.is_some();
    let policy_state = Mutex::new(PolicyState::new(cfg, cloud_available, cut_table, governor));
    let cloud_counters =
        Mutex::new(CloudCounters { per_shard: vec![0; cfg.cloud_workers], ..CloudCounters::default() });
    // Completions of offloaded requests pass a per-device reorder gate,
    // so work stealing cannot reorder a device's cloud responses.
    let reorder = Mutex::new(ReorderGate::default());
    // The sharded work-stealing ingress (None under SingleQueue, where
    // each cloud worker drains its own transport lane directly).
    let ingress = match cfg.ingress {
        CloudIngress::Sharded if cloud_available => Some(ShardedIngress::new(cfg.cloud_workers, cfg.queue_depth)),
        _ => None,
    };
    let skipped_main_exits = AtomicUsize::new(0);
    // Suffix MACs per resume layer (suffix_macs[k] = MACs of layers
    // [k, L)): what the cloud pays per instance resumed at k, and the
    // basis of the recompute-saved accounting.
    let suffix_macs: Vec<u64> = match clouds.first() {
        Some(cloud) => {
            let profiles = profile_network(cloud);
            let mut acc = vec![0u64; profiles.len() + 1];
            for k in (0..profiles.len()).rev() {
                acc[k] = acc[k + 1] + profiles[k].macs;
            }
            acc
        }
        None => Vec::new(),
    };
    // Offloaded requests park here until their response frame returns
    // (the wire carries only the request id and the prediction back).
    let pending: Mutex<Vec<Option<PendingEntry>>> = Mutex::new((0..n).map(|_| None).collect());

    let (done_tx, done_rx) = unbounded::<Completion>();
    let mut edge_txs: Vec<Sender<EdgeJob<'_>>> = Vec::with_capacity(cfg.edge_workers);
    let mut edge_rxs: Vec<Receiver<EdgeJob<'_>>> = Vec::with_capacity(cfg.edge_workers);
    for _ in 0..cfg.edge_workers {
        let (tx, rx) = bounded(cfg.queue_depth);
        edge_txs.push(tx);
        edge_rxs.push(rx);
    }

    let transport = &transport;
    let t0 = Instant::now();
    let mut worker_panics: Vec<String> = Vec::new();
    let completions = crossbeam::thread::scope(|scope| {
        // Sharded mode: one pump per lane drains arrived frames into its
        // bounded shard (the workers below coalesce from the shards and
        // steal across them). SingleQueue mode: the workers own the
        // uplinks directly.
        let mut pump_handles = Vec::new();
        if let Some(ing) = ingress.as_ref() {
            for lane in 0..cfg.cloud_workers {
                let mut uplink = transport.take_uplink(lane);
                pump_handles.push(scope.spawn(move |_| {
                    let _guard = IngressAbortGuard { ingress: ing };
                    loop {
                        match uplink.recv(None) {
                            RecvOutcome::Frame(f) => {
                                if ing.push(lane, f).is_err() {
                                    return;
                                }
                            }
                            RecvOutcome::Closed => {
                                ing.close_shard(lane);
                                return;
                            }
                            RecvOutcome::TimedOut => unreachable!("recv without a timeout cannot time out"),
                        }
                    }
                }));
            }
        }
        let mut cloud_handles = Vec::with_capacity(cfg.cloud_workers);
        for (lane, cloud) in clouds.iter_mut().enumerate() {
            let counters = &cloud_counters;
            let suffixes = &suffix_macs;
            let shared = &policy_state;
            match ingress.as_ref() {
                Some(ing) => {
                    cloud_handles.push(scope.spawn(move |_| {
                        cloud_worker_sharded(
                            cfg, cloud, lane, ing, transport, counters, suffixes, shared, measured, grids,
                        )
                    }));
                }
                None => {
                    let uplink = transport.take_uplink(lane);
                    cloud_handles.push(scope.spawn(move |_| {
                        cloud_worker(
                            cfg, cloud, lane, uplink, transport, counters, suffixes, shared, measured, grids,
                        )
                    }));
                }
            }
        }
        let mut collector_handles = Vec::with_capacity(cfg.cloud_workers);
        for lane in 0..cfg.cloud_workers {
            let mut downlink = transport.take_downlink(lane);
            let dtx = done_tx.clone();
            let pending_ref = &pending;
            let gate = &reorder;
            let shared = &policy_state;
            let spec_ref = &spec;
            collector_handles.push(scope.spawn(move |_| {
                while let RecvOutcome::Frame(resp) = downlink.recv() {
                    let entry = pending_ref.lock()[resp.frame.req_id as usize]
                        .take()
                        .expect("one pending entry per response frame");
                    let completion = Completion {
                        req_id: resp.frame.req_id as usize,
                        device: entry.device,
                        seq: entry.seq,
                        record: entry.pending.complete(resp.frame.prediction as usize),
                        latency_s: entry.due.elapsed().as_secs_f64(),
                    };
                    // The governor's live evidence: every cloud
                    // completion's end-to-end latency, recorded as it
                    // lands (release order is irrelevant to quantiles).
                    if governed {
                        shared.lock().record_latency(spec_ref.class_of(entry.device), completion.latency_s);
                    }
                    // Latency is measured at arrival; only the *release*
                    // into the completion stream is deferred until every
                    // earlier offload of the device has come back.
                    gate.lock().release(entry.device, entry.cloud_idx, completion, &dtx);
                }
            }));
        }
        let mut edge_handles = Vec::with_capacity(cfg.edge_workers);
        for (rx, replica) in edge_rxs.into_iter().zip(edges.iter_mut()) {
            let dtx = done_tx.clone();
            let shared = &policy_state;
            let pending_ref = &pending;
            let spec_ref = &spec;
            let skipped = &skipped_main_exits;
            edge_handles.push(scope.spawn(move |_| {
                edge_worker(cfg, spec_ref, replica, rx, transport, pending_ref, dtx, shared, skipped, grids)
            }));
        }
        drop(done_tx);

        // Dispatch: pace the trace in real time, device-sticky routing
        // through the spec's canonical mapping. A dead edge worker
        // (closed queue) stops dispatch; the joins below surface its
        // panic.
        for (req_id, req) in requests.iter().enumerate() {
            let due = t0 + Duration::from_secs_f64(req.arrival_s);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            if edge_txs[spec.sticky_index(req.device, cfg.edge_workers)]
                .send(EdgeJob { req_id, req, due })
                .is_err()
            {
                break;
            }
        }
        drop(edge_txs);

        // Shutdown cascade: edge workers drain their closed queues and
        // exit; the request stream then closes, cloud workers drain and
        // exit (each closing its response lane via LaneCloser), and the
        // collectors follow. Joining — instead of blocking on a
        // completion count — means a panicked worker is *detected*: its
        // payload is collected and re-raised with context, rather than
        // wedging the runtime on completions that will never arrive.
        for (w, h) in edge_handles.into_iter().enumerate() {
            if let Err(p) = h.join() {
                worker_panics.push(format!("edge worker {w} panicked: {}", panic_note(&p)));
            }
        }
        transport.close_requests();
        for (lane, h) in pump_handles.into_iter().enumerate() {
            if let Err(p) = h.join() {
                worker_panics.push(format!("ingress pump {lane} panicked: {}", panic_note(&p)));
            }
        }
        for (w, h) in cloud_handles.into_iter().enumerate() {
            if let Err(p) = h.join() {
                worker_panics.push(format!("cloud worker {w} panicked: {}", panic_note(&p)));
            }
        }
        for (lane, h) in collector_handles.into_iter().enumerate() {
            if let Err(p) = h.join() {
                worker_panics.push(format!("response collector {lane} panicked: {}", panic_note(&p)));
            }
        }

        let mut completions = Vec::with_capacity(n);
        while let Ok(c) = done_rx.try_recv() {
            completions.push(c);
        }
        completions
    })
    .expect("serving scope");
    if !worker_panics.is_empty() {
        panic!("serving runtime worker panicked — {}", worker_panics.join("; "));
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let mut records: Vec<Option<InstanceRecord>> = vec![None; n];
    for c in &completions {
        assert!(records[c.req_id].is_none(), "request {} completed twice", c.req_id);
        records[c.req_id] = Some(c.record);
    }
    let records: Vec<InstanceRecord> = records.into_iter().map(|r| r.expect("every request served")).collect();

    let offloaded = records.iter().filter(|r| r.exit == ExitPoint::Cloud).count();
    let counters = cloud_counters.into_inner();
    let (final_threshold, cut_replans, final_cuts, link_estimates, governor_outcome) = {
        let st = policy_state.into_inner();
        let replans = st.cuts.as_ref().map_or(0, |t| t.replans);
        let estimates = st.cuts.as_ref().and_then(|t| t.estimator.as_ref()).map(LinkEstimator::estimates);
        let cuts = st.cuts.map(|t| t.per_class);
        let outcome = st.governor.map(|g| (g.governor.sla_violations(), g.decisions, g.trajectory));
        (st.controller.map(|c| c.threshold()), replans, cuts, estimates, outcome)
    };
    let (sla_violations, governor_decisions, control_trajectory) = match governor_outcome {
        Some((violations, decisions, trajectory)) => (violations, decisions, Some(trajectory)),
        None => (0, 0, None),
    };
    // Per-class breakdowns only when a fleet is explicitly configured:
    // the implicit legacy spec would report a single meaningless class.
    let per_class = cfg.fleet.as_ref().map(|fleet| {
        let k = fleet.class_count();
        let mut served = vec![0usize; k];
        let mut offload = vec![0usize; k];
        // Bounded streaming histograms, fed one completion at a time: no
        // per-class latency buffer scaling with the trace length.
        let mut hists: Vec<Option<StreamingHistogram>> = vec![None; k];
        for c in &completions {
            let class = fleet.class_of(c.device);
            served[class] += 1;
            offload[class] += usize::from(c.record.exit == ExitPoint::Cloud);
            hists[class].get_or_insert_with(StreamingHistogram::for_latency).record(c.latency_s);
        }
        (served, offload, hists)
    });
    let (per_class_served, per_class_offload, per_class_latency) = match per_class {
        Some((s, o, h)) => (Some(s), Some(o), Some(h)),
        None => (None, None, None),
    };
    let stats = ServeStats {
        total: n,
        offloaded,
        wall_s,
        throughput_hz: if wall_s > 0.0 { n as f64 / wall_s } else { 0.0 },
        cloud_batches: counters.batches,
        cloud_forwards: counters.forwards,
        max_batch_seen: counters.max_batch,
        bytes_to_cloud: counters.bytes,
        bytes_from_cloud: counters.bytes_down,
        cloud_macs: counters.macs,
        cloud_macs_saved: counters.macs_saved,
        cut_replans,
        final_cuts,
        link_estimates,
        final_threshold,
        skipped_main_exits: skipped_main_exits.into_inner(),
        per_class_served,
        per_class_offload,
        per_class_latency,
        steals: counters.steals,
        per_shard_batches: counters.per_shard,
        max_queue_depth: ingress.as_ref().map_or(0, ShardedIngress::max_depth),
        sla_violations,
        governor_decisions,
        control_trajectory,
    };
    ServeReport { records, completions, stats }
}

/// Ships one request to the cloud tier: encodes the payload (image, or
/// the cut-layer activation of the local cloud-prefix replica) straight
/// from the borrowed tensor — the borrowing [`Payload`] encoders write
/// the wire bytes without cloning the tensor into an enum first — parks
/// the pending record, and puts the frame on the device's sticky lane.
/// `cloud_idx` is the device's offload sequence number, the key the
/// [`ReorderGate`] releases the completion in. Returns `false` when the
/// cloud tier is gone (uplink dropped) — the caller stops quietly and the
/// join in `serve_core` surfaces whatever panic killed it.
#[allow(clippy::too_many_arguments)]
fn offload_to_cloud<T: Transport>(
    cfg: &ServeConfig,
    spec: &FleetSpec,
    cloud_prefix: &mut Option<SegmentedCnn>,
    job: &EdgeJob<'_>,
    cut: Option<(usize, FeatureWire)>,
    parked: PendingCloud,
    cloud_idx: u64,
    transport: &T,
    pending: &Mutex<Vec<Option<PendingEntry>>>,
    grids: Option<&ActivationGrids>,
) -> bool {
    let req = job.req;
    let (payload, resume) = match &cfg.payload {
        PayloadPlan::Image(WireFormat::Float32) => (Payload::encode_features(&req.image), 0),
        PayloadPlan::Image(WireFormat::Quantised8Bit) => (Payload::encode_raw_image(&req.image), 0),
        PayloadPlan::Features(_) => {
            let (cut, wire) = cut.expect("feature mode builds a cut table");
            let prefix = cloud_prefix.as_mut().expect("validated in try_serve()");
            let activation = prefix.forward_prefix(&req.image, cut, Mode::Eval);
            let payload = match wire {
                FeatureWire::F32 => Payload::encode_features(&activation),
                FeatureWire::Int8 => Payload::encode_quantized_features(&activation),
                FeatureWire::PerChannelInt8 => Payload::encode_grid_features(
                    &activation,
                    cut,
                    grids.expect("per-channel int8 serving calibrates grids at setup"),
                ),
            };
            (payload, cut)
        }
    };
    let frame = RequestFrame {
        req_id: job.req_id as u64,
        device: req.device as u32,
        seq: req.seq as u64,
        resume_layer: resume as u32,
        payload,
    };
    // Park the pending record BEFORE the frame leaves: the response can
    // race back on another thread.
    pending.lock()[job.req_id] = Some(PendingEntry {
        pending: parked.resume_at(resume),
        device: req.device,
        seq: req.seq,
        due: job.due,
        cloud_idx,
    });
    transport.send_request(spec.sticky_index(req.device, transport.lanes()), frame).is_ok()
}

/// Edge worker loop: route each request through the shared engine,
/// finish main/extension exits locally, ship cloud exits as
/// [`RequestFrame`]s up the sticky transport lane — as images, or as
/// cut-layer activations of the local cloud-prefix replica in
/// feature-payload mode.
///
/// With a [`DifficultyPredictor`] configured the engine is consulted
/// difficulty-first: predicted-hard inputs pre-commit to the cloud
/// without evaluating the main exit (counted in `skipped`), and
/// predicted-easy inputs settle locally without the offload policy ever
/// seeing them.
#[allow(clippy::too_many_arguments)]
fn edge_worker<T: Transport>(
    cfg: &ServeConfig,
    spec: &FleetSpec,
    replica: &mut EdgeReplica,
    rx: Receiver<EdgeJob<'_>>,
    transport: &T,
    pending: &Mutex<Vec<Option<PendingEntry>>>,
    done_tx: Sender<Completion>,
    shared: &Mutex<PolicyState>,
    skipped: &AtomicUsize,
    grids: Option<&ActivationGrids>,
) {
    let EdgeReplica { net, cloud_prefix } = replica;
    // The wire offloads ship on when the cut table is static (a governor
    // moves it per class through the table instead).
    let static_wire = match &cfg.payload {
        PayloadPlan::Features(fc) => fc.wire,
        _ => FeatureWire::F32,
    };
    // Without a controller, measured-link feedback or a governor neither
    // the policy nor the cut table ever changes: take private copies once
    // and keep the hot path lock-free. With any loop active, the lock
    // serves the current threshold, cuts and wires, and feeds the window
    // back. (A governor always rides measured-link feedback, so governed
    // serving always takes the locked path.)
    let (static_engine, static_cuts, governed): (Option<RoutingEngine>, Option<Vec<usize>>, bool) = {
        let st = shared.lock();
        let cuts_move = st.cuts.as_ref().is_some_and(|t| t.feedback.is_some());
        if st.controller.is_none() && !cuts_move {
            (Some(st.engine), st.cuts.as_ref().map(|t| t.per_class.clone()), st.governor.is_some())
        } else {
            (None, None, st.governor.is_some())
        }
    };
    // Per-device offload sequence numbers. Exactly one edge worker owns
    // each device's stream (device-sticky dispatch), so a thread-local
    // counter is the authoritative offload order the [`ReorderGate`]
    // releases completions in.
    let mut cloud_seq: HashMap<usize, u64> = HashMap::new();
    let mut next_cloud_idx = |device: usize| {
        let slot = cloud_seq.entry(device).or_insert(0);
        let idx = *slot;
        *slot += 1;
        idx
    };
    while let Ok(job) = rx.recv() {
        let req = job.req;
        let difficulty = cfg.difficulty.as_ref().map(|p| (p, p.predict(&req.image)));
        // Pre-commit: a predicted-hard input ships to the cloud without
        // the main exit ever running. The parked record carries the
        // predictor's entropy estimate and the PRECOMMITTED sentinel
        // instead of main-exit values.
        if let Some((predictor, Difficulty::Hard)) = difficulty {
            let wants = match &static_engine {
                Some(engine) => engine.wants_precommit(Difficulty::Hard),
                None => shared.lock().engine.wants_precommit(Difficulty::Hard),
            };
            if wants {
                let cut = match &static_engine {
                    Some(_) => static_cuts.as_ref().map(|cuts| (class_cut(cuts, spec, req.device), static_wire)),
                    None => {
                        let mut st = shared.lock();
                        st.observe(true);
                        st.cuts.as_ref().map(|t| (t.cut_for(req.device), t.wire_for(req.device)))
                    }
                };
                skipped.fetch_add(1, Ordering::Relaxed);
                let parked = PendingCloud::precommit(req.truth, predictor.predict_entropy(&req.image));
                let idx = next_cloud_idx(req.device);
                if !offload_to_cloud(cfg, spec, cloud_prefix, &job, cut, parked, idx, transport, pending, grids) {
                    return;
                }
                continue;
            }
        }
        let main = RoutingEngine::evaluate_main(net, &req.image);
        // A predicted-easy input settles locally: the plan picks main or
        // extension exit, never the cloud.
        let local_only = matches!(difficulty, Some((_, Difficulty::Easy)));
        let (route, cut) = match &static_engine {
            Some(engine) => {
                let plan = if local_only { engine.plan_local(net, &main) } else { engine.plan(net, &main) };
                let cut = static_cuts.as_ref().map(|cuts| (class_cut(cuts, spec, req.device), static_wire));
                (plan.routes[0], cut)
            }
            None => {
                let mut st = shared.lock();
                let plan = if local_only { st.engine.plan_local(net, &main) } else { st.engine.plan(net, &main) };
                let route = plan.routes[0];
                st.observe(route == ExitPoint::Cloud);
                (route, st.cuts.as_ref().map(|t| (t.cut_for(req.device), t.wire_for(req.device))))
            }
        };
        match route {
            ExitPoint::Cloud => {
                let parked = PendingCloud::from_main(net, &main, 0, req.truth);
                let idx = next_cloud_idx(req.device);
                if !offload_to_cloud(cfg, spec, cloud_prefix, &job, cut, parked, idx, transport, pending, grids) {
                    return;
                }
            }
            exit => {
                let prediction = match exit {
                    ExitPoint::Extension => RoutingEngine::finish_extension(net, &req.image, &main, &[0])[0],
                    _ => main.preds[0],
                };
                let record = RoutingEngine::local_record(net, &main, 0, exit, prediction, req.truth);
                let completion = Completion {
                    req_id: job.req_id,
                    device: req.device,
                    seq: req.seq,
                    record,
                    latency_s: job.due.elapsed().as_secs_f64(),
                };
                // Local completions count toward the governor's live
                // latency windows too — the SLA covers every request,
                // not just offloads.
                if governed {
                    shared.lock().record_latency(spec.class_of(req.device), completion.latency_s);
                }
                done_tx.send(completion).expect("collector alive");
            }
        }
    }
}

/// Cloud worker loop ([`CloudIngress::SingleQueue`]): coalesce the lane's
/// queued request frames and classify each batch. Kept verbatim as the
/// record-identity reference path for the sharded ingress.
#[allow(clippy::too_many_arguments)]
fn cloud_worker<T: Transport>(
    cfg: &ServeConfig,
    cloud: &mut SegmentedCnn,
    lane: usize,
    mut uplink: T::Uplink,
    transport: &T,
    counters: &Mutex<CloudCounters>,
    suffix_macs: &[u64],
    shared: &Mutex<PolicyState>,
    measured: bool,
    grids: Option<&ActivationGrids>,
) {
    // However this worker exits — drained uplink or a panic mid-batch —
    // its response lane closes behind it (collector shutdown).
    let _closer = LaneCloser { transport, lane };
    let mut scratch = Vec::new();
    while let Some(batch) = coalesce_frames(&mut uplink, cfg.max_batch, cfg.max_wait) {
        let open = process_cloud_batch(
            cfg,
            cloud,
            lane,
            false,
            batch,
            &mut scratch,
            transport,
            counters,
            suffix_macs,
            shared,
            measured,
            grids,
        );
        if !open {
            return;
        }
    }
}

/// Cloud worker loop ([`CloudIngress::Sharded`]): coalesce batches from
/// the worker's own ingress shard, stealing FIFO prefixes (whole
/// device-sticky runs) from backlogged peers when idle.
#[allow(clippy::too_many_arguments)]
fn cloud_worker_sharded<T: Transport>(
    cfg: &ServeConfig,
    cloud: &mut SegmentedCnn,
    lane: usize,
    ingress: &ShardedIngress,
    transport: &T,
    counters: &Mutex<CloudCounters>,
    suffix_macs: &[u64],
    shared: &Mutex<PolicyState>,
    measured: bool,
    grids: Option<&ActivationGrids>,
) {
    let _closer = LaneCloser { transport, lane };
    let _guard = IngressAbortGuard { ingress };
    let mut scratch = Vec::new();
    while let Some((batch, stolen)) = ingress.next_batch(lane, cfg.max_batch, cfg.max_wait) {
        let open = process_cloud_batch(
            cfg,
            cloud,
            lane,
            stolen,
            batch,
            &mut scratch,
            transport,
            counters,
            suffix_macs,
            shared,
            measured,
            grids,
        );
        if !open {
            // The collector died; unwedge pumps and peers so the join
            // cascade can surface its panic instead of deadlocking.
            ingress.abort();
            return;
        }
    }
}

/// Classifies one coalesced batch on the cloud tier: pay the (modelled)
/// link delay on both legs (rtt/2 each — the shared `NetworkLink` leg
/// convention), decode every frame into the worker's reusable `scratch`
/// arena (one contiguous batch tensor, no per-frame tensor allocations),
/// resume one batched forward per distinct cut point, ship the
/// predictions back as [`ResponseFrame`]s, and report the link time the
/// batch paid — model time on the modelled transport, genuine
/// `Instant::now()` deltas on a real one — to the measured-link feedback
/// loop. Returns `false` when the response lane's collector is gone.
#[allow(clippy::too_many_arguments)]
fn process_cloud_batch<T: Transport>(
    cfg: &ServeConfig,
    cloud: &mut SegmentedCnn,
    lane: usize,
    stolen: bool,
    batch: Vec<InboundRequest>,
    scratch: &mut Vec<f32>,
    transport: &T,
    counters: &Mutex<CloudCounters>,
    suffix_macs: &[u64],
    shared: &Mutex<PolicyState>,
    measured: bool,
    grids: Option<&ActivationGrids>,
) -> bool {
    let payload_bytes: u64 = batch.iter().map(|b| b.frame.payload.len() as u64).sum();
    let response_bytes = RESPONSE_WIRE_BYTES * batch.len() as u64;
    // Real-wire telemetry: total frame bytes (headers included) and
    // the span from the first frame's send to the last frame's full
    // reassembly — queueing, pacing and scheduling noise included.
    let wire_bytes: u64 = batch.iter().map(|b| b.frame.wire_bytes()).sum();
    let up_span_s = if measured {
        let first_sent = batch.iter().map(|b| b.sent_at).min().expect("non-empty batch");
        let last_received = batch.iter().map(|b| b.received_at).max().expect("non-empty batch");
        last_received.duration_since(first_sent).as_secs_f64()
    } else {
        0.0
    };
    let total_macs = suffix_macs[0];
    let batches_before = {
        let mut c = counters.lock();
        c.batches += 1;
        c.max_batch = c.max_batch.max(batch.len());
        c.bytes += payload_bytes;
        c.bytes_down += response_bytes;
        if stolen {
            c.steals += 1;
        }
        c.per_shard[lane] += 1;
        for b in &batch {
            let resume = b.frame.resume_layer as usize;
            c.macs += suffix_macs[resume];
            c.macs_saved += total_macs - suffix_macs[resume];
        }
        c.batches - 1
    };
    // The modelled wire this batch rides: the configured link with any
    // due schedule changes applied. The telemetry below observes THIS
    // link's per-byte behaviour; the planner's static model still
    // assumes the nominal one — measured feedback is the only path by
    // which a degradation reaches the cut decision. On a real
    // transport the frames already paid their wire time crossing the
    // pipe, so no modelled sleep is charged.
    let link = if measured { None } else { scheduled_link(cfg, batches_before) };
    if let Some(link) = &link {
        std::thread::sleep(Duration::from_secs_f64(link.uplink_leg_s(payload_bytes)));
    }
    // A coalesced batch may mix cut points (the planner re-planned
    // mid-flight, or device classes cut differently): group by resume
    // layer — activations at different cuts have different shapes —
    // and run one batched forward per group. Per-sample independence
    // makes the grouping invisible in the predictions.
    let mut groups: BTreeMap<u32, Vec<RequestFrame>> = BTreeMap::new();
    for b in batch {
        groups.entry(b.frame.resume_layer).or_default().push(b.frame);
    }
    counters.lock().forwards += groups.len() as u64;
    let mut classified: Vec<(RequestFrame, usize)> = Vec::new();
    for (resume, group) in groups {
        // Zero-copy batch assembly: every frame decodes straight into
        // the worker's scratch arena, which then *becomes* the batch
        // tensor — no per-frame Tensor allocations, no concat copy.
        // Served tensors are single-instance, so appending each
        // frame's data is bitwise identical to `concat_axis0` of the
        // per-frame tensors.
        scratch.clear();
        let mut frame_dims: Option<Vec<usize>> = None;
        for f in &group {
            let dims = match grids {
                Some(g) => Payload::decode_into_with_grids(f.payload.clone(), g, scratch),
                None => Payload::decode_into(f.payload.clone(), scratch),
            };
            match &frame_dims {
                Some(prev) => assert_eq!(prev, &dims, "coalesced group mixes tensor shapes"),
                None => frame_dims = Some(dims),
            }
        }
        let mut batch_dims = frame_dims.expect("coalesced groups are non-empty");
        batch_dims[0] *= group.len();
        let stacked = Tensor::from_vec(std::mem::take(scratch), &batch_dims).expect("group frames share a shape");
        let preds = RoutingEngine::classify_cloud_from(cloud, &stacked, resume as usize);
        // Hand the arena's allocation back for the next group/batch.
        *scratch = stacked.into_vec();
        classified.extend(group.into_iter().zip(preds));
    }
    // Grouping by cut may interleave devices; restore per-device
    // sequence order so the device-FIFO guarantee survives a mid-batch
    // replan boundary.
    classified.sort_by_key(|(f, _)| (f.device, f.seq));
    // The responses ride the downlink back before anyone observes a
    // completion: the modelled leg as a sleep, the real one as the
    // pipe's own transfer time.
    if let Some(link) = &link {
        std::thread::sleep(Duration::from_secs_f64(link.downlink_leg_s(response_bytes)));
    }
    let down_t0 = Instant::now();
    let mut lane_open = true;
    for (frame, pred) in &classified {
        let resp = ResponseFrame { req_id: frame.req_id, prediction: *pred as u32 };
        if transport.send_response(lane, resp).is_err() {
            // The collector is gone; its panic surfaces at join.
            lane_open = false;
            break;
        }
    }
    // Close the telemetry loop: record what this round trip cost per
    // leg — (bytes, seconds) pairs and the propagation delay — for
    // every device class in the batch. The modelled transport reports
    // the model's own times (bit-reproducible trajectories); a real
    // transport reports what the clock genuinely saw.
    let devices: Vec<usize> = classified.iter().map(|(f, _)| f.device as usize).collect();
    if measured {
        let down_s = down_t0.elapsed().as_secs_f64();
        shared.lock().observe_link(&devices, wire_bytes, up_span_s, response_bytes, down_s, 0.0);
    } else if let Some(link) = &link {
        shared.lock().observe_link(
            &devices,
            payload_bytes,
            link.upload_time_s(payload_bytes),
            response_bytes,
            link.download_time_s(response_bytes),
            link.rtt_s,
        );
    }
    lane_open
}

/// Generic payload pipeline: round-robins encoded payloads across
/// `workers` dynamic-batching consumers and returns the classifications
/// in request order — the transport skeleton of the cloud tier, exposed
/// so [`crate::sim::run_threaded`] is literally the
/// `workers: 1, max_batch: 1` special case of the serving substrate.
///
/// # Panics
///
/// Panics if `workers == 0` or `max_batch == 0`, or when a worker thread
/// panics.
pub fn run_payload_pipeline(
    payloads: Vec<Payload>,
    workers: usize,
    max_batch: usize,
    max_wait: Duration,
    queue_depth: usize,
    classify: impl Fn(&Payload) -> usize + Send + Sync,
) -> (Vec<usize>, ThreadedStats) {
    run_payload_pipeline_over(
        &TransportKind::Modelled,
        payloads,
        workers,
        max_batch,
        max_wait,
        queue_depth,
        classify,
    )
}

/// [`run_payload_pipeline`] over an explicit transport: the same
/// round-robin fan-out and dynamic batching, with the frames crossing the
/// chosen wire ([`TransportKind::Modelled`] in-memory channels, or a real
/// byte pipe under [`TransportKind::Pipe`]). Both yield identical results
/// and byte accounting; only the wall-clock differs.
///
/// # Panics
///
/// Panics if `workers == 0` or `max_batch == 0`, or when a worker thread
/// panics.
pub fn run_payload_pipeline_over(
    kind: &TransportKind,
    payloads: Vec<Payload>,
    workers: usize,
    max_batch: usize,
    max_wait: Duration,
    queue_depth: usize,
    classify: impl Fn(&Payload) -> usize + Send + Sync,
) -> (Vec<usize>, ThreadedStats) {
    assert!(workers > 0, "need at least one worker");
    assert!(max_batch > 0, "max_batch must be at least 1");
    match kind {
        TransportKind::Modelled => pipeline_core(
            ModelledTransport::new(workers, queue_depth),
            payloads,
            workers,
            max_batch,
            max_wait,
            classify,
        ),
        TransportKind::Pipe(pc) => pipeline_core(
            PipeTransport::new(workers, pc.clone()),
            payloads,
            workers,
            max_batch,
            max_wait,
            classify,
        ),
    }
}

/// The payload pipeline over a concrete [`Transport`]: per-lane dynamic
/// batching workers decode and classify, per-lane collectors funnel the
/// response frames back, the caller's thread dispatches round-robin.
fn pipeline_core<T: Transport>(
    transport: T,
    payloads: Vec<Payload>,
    workers: usize,
    max_batch: usize,
    max_wait: Duration,
    classify: impl Fn(&Payload) -> usize + Send + Sync,
) -> (Vec<usize>, ThreadedStats) {
    let n = payloads.len();
    let stats = Mutex::new(ThreadedStats::default());
    let (resp_tx, resp_rx) = unbounded::<(usize, usize)>();
    let mut results = vec![0usize; n];
    let transport = &transport;
    crossbeam::thread::scope(|scope| {
        for lane in 0..workers {
            let mut uplink = transport.take_uplink(lane);
            let stats_ref = &stats;
            let classify_ref = &classify;
            scope.spawn(move |_| {
                let _closer = LaneCloser { transport, lane };
                while let Some(batch) = coalesce_frames(&mut uplink, max_batch, max_wait) {
                    {
                        let mut guard = stats_ref.lock();
                        for b in &batch {
                            guard.bytes_sent += b.frame.payload.len() as u64;
                            guard.payloads += 1;
                        }
                    }
                    for b in batch {
                        let req_id = b.frame.req_id;
                        let payload = Payload::decode(b.frame.payload);
                        let resp = ResponseFrame { req_id, prediction: classify_ref(&payload) as u32 };
                        if transport.send_response(lane, resp).is_err() {
                            return;
                        }
                    }
                }
            });
        }
        for lane in 0..workers {
            let mut downlink = transport.take_downlink(lane);
            let tx = resp_tx.clone();
            scope.spawn(move |_| {
                while let RecvOutcome::Frame(resp) = downlink.recv() {
                    if tx.send((resp.frame.req_id as usize, resp.frame.prediction as usize)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(resp_tx);
        for (id, p) in payloads.iter().enumerate() {
            let frame = RequestFrame {
                req_id: id as u64,
                device: (id % workers) as u32,
                seq: id as u64,
                resume_layer: 0,
                payload: p.encode(),
            };
            if transport.send_request(id % workers, frame).is_err() {
                break;
            }
        }
        transport.close_requests();
        for _ in 0..n {
            match resp_rx.recv() {
                Ok((id, pred)) => results[id] = pred,
                // A worker died mid-run: stop collecting; the scope join
                // re-raises its panic.
                Err(_) => break,
            }
        }
    })
    .expect("payload pipeline panicked");

    (results, stats.into_inner())
}

#[cfg(test)]
// The deprecated free `serve` stays under test deliberately: it is the
// compatibility shim whose behaviour (including every panic message)
// must keep matching `try_serve`.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::transport::{PaceChange, PipeConfig};
    use mea_data::{presets, ClassDict};
    use mea_nn::models::{resnet_cifar, CifarResNetConfig};
    use meanet::infer::run_inference;
    use meanet::infer::{run_inference_with_policy, InferenceConfig};
    use meanet::model::{AdaptivePlan, Merge, Variant};

    fn tiny_net(seed: u64) -> MeaNet {
        let mut rng = Rng::new(seed);
        let mut cfg = CifarResNetConfig::repro_scale(6);
        cfg.input_hw = 8;
        let backbone = resnet_cifar(&cfg, &mut rng);
        let mut net = MeaNet::from_backbone(
            backbone,
            Variant::FullBackbone { extension_channels: 8, extension_blocks: 1 },
            Merge::Sum,
            &mut rng,
        );
        net.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, ClassDict::new(&[0, 2, 4]), &mut rng);
        net
    }

    fn tiny_cloud(seed: u64) -> SegmentedCnn {
        let mut rng = Rng::new(seed);
        let mut cfg = CifarResNetConfig::repro_scale(6);
        cfg.input_hw = 8;
        cfg.channels = [16, 24, 32];
        resnet_cifar(&cfg, &mut rng)
    }

    fn replicas<T>(count: usize, mut build: impl FnMut() -> T) -> Vec<T> {
        (0..count).map(|_| build()).collect()
    }

    /// Image-payload edge replicas (no cloud prefix).
    fn edge_replicas(count: usize, seed: u64) -> Vec<EdgeReplica> {
        replicas(count, || EdgeReplica::new(tiny_net(seed)))
    }

    /// Feature-payload edge replicas: each carries a bitwise replica of
    /// the cloud network (same constructor seed = same weights).
    fn split_replicas(count: usize, net_seed: u64, cloud_seed: u64) -> Vec<EdgeReplica> {
        replicas(count, || EdgeReplica::with_cloud_prefix(tiny_net(net_seed), tiny_cloud(cloud_seed)))
    }

    fn instant_requests(data: &Dataset, devices: usize) -> Vec<ServeRequest> {
        let mut rng = Rng::new(0);
        trace_requests(data, devices, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng)
    }

    #[test]
    fn serve_matches_offline_sweep_bitwise() {
        let bundle = presets::tiny(60);
        let policy = OffloadPolicy::EntropyThreshold(0.8);
        let mut offline_net = tiny_net(1);
        let mut offline_cloud = tiny_cloud(2);
        let expected =
            run_inference_with_policy(&mut offline_net, Some(&mut offline_cloud), &bundle.test, policy, 8);

        for (e, c, b) in [(1usize, 1usize, 1usize), (2, 1, 4), (3, 2, 4)] {
            let mut edges = edge_replicas(e, 1);
            let mut clouds = replicas(c, || tiny_cloud(2));
            let cfg = ServeConfig::new(policy, e, c, b);
            let report = serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 3));
            assert_eq!(report.records, expected, "serve({e} edge, {c} cloud, batch {b}) diverged");
            assert_eq!(report.stats.total, bundle.test.len());
        }
    }

    #[test]
    fn sharded_ingress_serves_record_identically_to_single_queue() {
        // The ingress is a pure scheduling knob: same trace, same
        // replicas, same records — whatever the worker/batch topology.
        let bundle = presets::tiny(170);
        let policy = OffloadPolicy::EntropyThreshold(0.8);
        let requests = instant_requests(&bundle.test, 4);
        for (e, c, b) in [(1usize, 2usize, 1usize), (2, 3, 4), (3, 1, 2)] {
            let run = |ingress: CloudIngress| {
                let mut edges = edge_replicas(e, 21);
                let mut clouds = replicas(c, || tiny_cloud(22));
                let cfg = ServeConfig::builder(policy)
                    .edge_workers(e)
                    .cloud_workers(c)
                    .max_batch(b)
                    .ingress(ingress)
                    .build()
                    .expect("valid config");
                try_serve(&cfg, &mut edges, &mut clouds, &requests).expect("serves")
            };
            let sharded = run(CloudIngress::Sharded);
            let single = run(CloudIngress::SingleQueue);
            assert_eq!(sharded.records, single.records, "ingress changed records at ({e},{c},{b})");
            assert_eq!(sharded.stats.offloaded, single.stats.offloaded);
            assert_eq!(single.stats.steals, 0, "the single-queue path never steals");
            assert_eq!(single.stats.max_queue_depth, 0, "single-queue frames wait in transport lanes");
            for stats in [&sharded.stats, &single.stats] {
                assert_eq!(stats.per_shard_batches.len(), c);
                assert_eq!(stats.per_shard_batches.iter().sum::<u64>(), stats.cloud_batches);
            }
        }
    }

    #[test]
    fn work_stealing_soaks_a_skewed_population_and_keeps_device_fifo() {
        // Every request comes from device 0, so every frame lands on
        // shard 0 of a 3-worker cloud tier: under SingleQueue two workers
        // would idle, under the sharded ingress they steal the backlog.
        // The modelled link sleep keeps whichever worker holds a batch
        // busy long enough for the shard to refill, forcing steals even
        // on a single-core host.
        let bundle = presets::tiny(171);
        let mut edges = edge_replicas(1, 23);
        let mut clouds = replicas(3, || tiny_cloud(24));
        let cfg = ServeConfig::builder(OffloadPolicy::Always)
            .edge_workers(1)
            .cloud_workers(3)
            .max_batch(1)
            .queue_depth(8)
            .link(NetworkLink::wifi(50.0).with_rtt(0.002))
            .build()
            .expect("valid config");
        let report = try_serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 1)).expect("serves");
        assert_eq!(report.stats.offloaded, report.stats.total);
        assert!(
            report.stats.steals > 0,
            "skewed population must force steals: per-shard {:?}",
            report.stats.per_shard_batches
        );
        assert!(report.stats.max_queue_depth > 0, "the backlog must have queued");
        // Cloud completions of the single device leave in offload order
        // even though three workers classified them concurrently.
        let seqs: Vec<usize> =
            report.completions.iter().filter(|c| c.record.exit == ExitPoint::Cloud).map(|c| c.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "per-device cloud FIFO violated under stealing");
        // And the records still match the offline sweep bit for bit.
        let mut net = tiny_net(23);
        let mut cloud = tiny_cloud(24);
        let expected =
            run_inference_with_policy(&mut net, Some(&mut cloud), &bundle.test, OffloadPolicy::Always, 8);
        assert_eq!(report.records, expected);
    }

    #[test]
    fn pipeline_config_is_the_degenerate_case() {
        let cfg = ServeConfig::pipeline(OffloadPolicy::Always);
        assert_eq!((cfg.edge_workers, cfg.cloud_workers, cfg.max_batch), (1, 1, 1));
    }

    #[test]
    fn edge_only_serving_needs_no_cloud_replicas() {
        let bundle = presets::tiny(61);
        let mut edges = edge_replicas(2, 3);
        let cfg = ServeConfig::new(OffloadPolicy::Never, 2, 0, 1);
        let report = serve(&cfg, &mut edges, &mut [], &instant_requests(&bundle.test, 2));
        assert_eq!(report.stats.offloaded, 0);
        assert!(report.records.iter().all(|r| r.exit != ExitPoint::Cloud));
        let mut net = tiny_net(3);
        let expected = run_inference(&mut net, None, &bundle.test, &InferenceConfig::edge_only(8));
        assert_eq!(report.records, expected);
    }

    #[test]
    fn dynamic_batching_actually_batches_under_saturation() {
        let bundle = presets::tiny(62);
        let mut edges = edge_replicas(1, 4);
        let mut clouds = replicas(1, || tiny_cloud(5));
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 8);
        // A generous wait so queued items coalesce even on a slow host.
        cfg.max_wait = Duration::from_millis(2);
        cfg.queue_depth = 16;
        let report = serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 1));
        assert_eq!(report.stats.offloaded, report.stats.total);
        assert!(
            report.stats.cloud_batches < report.stats.offloaded as u64 || report.stats.total <= 1,
            "no coalescing happened: {} batches for {} offloads",
            report.stats.cloud_batches,
            report.stats.offloaded
        );
        assert!(report.stats.max_batch_seen >= 2);
    }

    #[test]
    fn controller_steers_beta_in_the_serving_path() {
        let bundle = presets::tiny(63);
        let mut edges = edge_replicas(1, 6);
        let mut clouds = replicas(1, || tiny_cloud(7));
        let target = 0.5;
        let mut cfg = ServeConfig::new(OffloadPolicy::Never, 1, 1, 4);
        cfg.controller = Some(ControllerConfig {
            controller: ThresholdController::new(1.0, target, 2.0, (0.0, 3.0)),
            window: 8,
        });
        // Repeat the tiny set to give the controller windows to converge.
        let mut requests = Vec::new();
        for rep in 0..6 {
            for mut r in instant_requests(&bundle.test, 2) {
                r.seq += rep * bundle.test.len();
                requests.push(r);
            }
        }
        let report = serve(&cfg, &mut edges, &mut clouds, &requests);
        assert!(report.stats.final_threshold.is_some());
        let beta = report.achieved_beta();
        assert!((beta - target).abs() < 0.25, "controller failed to steer beta toward {target}: achieved {beta}");
    }

    #[test]
    fn latency_histogram_quantiles_are_ordered() {
        let bundle = presets::tiny(64);
        let mut edges = edge_replicas(1, 8);
        let mut clouds = replicas(1, || tiny_cloud(9));
        let cfg = ServeConfig::new(OffloadPolicy::EntropyThreshold(0.5), 1, 1, 2);
        let report = serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 2));
        let h = report.latency_histogram(128);
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
        assert!(report.stats.throughput_hz > 0.0);
    }

    #[test]
    fn simulated_link_delay_shows_up_in_latency() {
        let bundle = presets::tiny(65);
        let n = bundle.test.len();
        let run = |link: Option<NetworkLink>| {
            let mut edges = edge_replicas(1, 10);
            let mut clouds = replicas(1, || tiny_cloud(11));
            let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 4);
            cfg.link = link;
            serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 1))
        };
        let fast = run(None);
        let slow = run(Some(NetworkLink::wifi(8.0).with_rtt(0.004)));
        assert_eq!(fast.records, slow.records, "link delay must not change predictions");
        let mean = |r: &ServeReport| r.completions.iter().map(|c| c.latency_s).sum::<f64>() / n as f64;
        assert!(mean(&slow) > mean(&fast), "simulated RTT should add latency: {} vs {}", mean(&slow), mean(&fast));
    }

    #[test]
    fn quantised_wire_serves_everything_and_mostly_agrees_with_lossless() {
        let bundle = presets::tiny(69);
        let run = |wire: WireFormat| {
            let mut edges = edge_replicas(2, 14);
            let mut clouds = replicas(1, || tiny_cloud(15));
            let mut cfg = ServeConfig::new(OffloadPolicy::Always, 2, 1, 4);
            cfg.payload = PayloadPlan::Image(wire);
            serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 2))
        };
        let lossless = run(WireFormat::Float32);
        let quantised = run(WireFormat::Quantised8Bit);
        assert_eq!(quantised.records.len(), lossless.records.len());
        assert!(quantised.records.iter().all(|r| r.exit == ExitPoint::Cloud));
        // The 1-byte codec shrinks the upload roughly 4x (f32 -> u8).
        assert!(quantised.stats.bytes_to_cloud * 3 < lossless.stats.bytes_to_cloud);
        // Edge-side fields are computed before quantisation: identical.
        for (q, l) in quantised.records.iter().zip(&lossless.records) {
            assert_eq!(q.truth, l.truth);
            assert_eq!(q.entropy, l.entropy);
            assert_eq!(q.main_prediction, l.main_prediction);
        }
        // Cloud predictions may flip on borderline images, but rarely.
        let n = lossless.records.len();
        let agree =
            quantised.records.iter().zip(&lossless.records).filter(|(q, l)| q.prediction == l.prediction).count();
        assert!(agree * 4 >= n * 3, "8-bit wire flipped too many predictions: {agree}/{n}");
    }

    #[test]
    fn trace_requests_cover_the_dataset_in_order() {
        let bundle = presets::tiny(66);
        let mut rng = Rng::new(1);
        let reqs = trace_requests(&bundle.test, 4, &ArrivalModel::Poisson { rate_hz: 100.0 }, &mut rng);
        assert_eq!(reqs.len(), bundle.test.len());
        assert!(reqs.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        // Per-device seq numbers are contiguous from 0.
        for d in 0..4 {
            let mut seqs: Vec<usize> = reqs.iter().filter(|r| r.device == d).map(|r| r.seq).collect();
            seqs.sort_unstable();
            assert_eq!(seqs, (0..seqs.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_requests_rejected() {
        let bundle = presets::tiny(67);
        let mut reqs = instant_requests(&bundle.test, 1);
        reqs[0].arrival_s = 1.0;
        let mut edges = edge_replicas(1, 12);
        let _ = serve(&ServeConfig::new(OffloadPolicy::Never, 1, 0, 1), &mut edges, &mut [], &reqs);
    }

    #[test]
    #[should_panic(expected = "requires a cloud model")]
    fn offload_policy_without_cloud_workers_rejected() {
        let bundle = presets::tiny(68);
        let mut edges = edge_replicas(1, 13);
        let reqs = instant_requests(&bundle.test, 1);
        let _ = serve(&ServeConfig::new(OffloadPolicy::Always, 1, 0, 1), &mut edges, &mut [], &reqs);
    }

    /// A feature config with a fixed cut and the given wire.
    fn feature_plan(wire: FeatureWire, cut: usize) -> PayloadPlan {
        PayloadPlan::Features(FeatureConfig { wire, cut: CutSelection::Fixed(cut) })
    }

    #[test]
    fn feature_payload_any_fixed_cut_matches_image_mode_bitwise() {
        // The crux of the tentpole: shipping the activation at ANY cut and
        // resuming on the cloud is indistinguishable (in records) from
        // shipping pixels — the cut moves compute, never predictions.
        let bundle = presets::tiny(72);
        let policy = OffloadPolicy::EntropyThreshold(0.5);
        let run = |payload: PayloadPlan| {
            let mut edges = split_replicas(2, 16, 17);
            let mut clouds = replicas(2, || tiny_cloud(17));
            let mut cfg = ServeConfig::new(policy, 2, 2, 4);
            cfg.payload = payload;
            serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 3))
        };
        let image = run(PayloadPlan::Image(WireFormat::Float32));
        let layers = tiny_cloud(17).cut_layer_count();
        for cut in [0, 1, layers / 2, layers - 1] {
            let feat = run(feature_plan(FeatureWire::F32, cut));
            assert_eq!(feat.records, image.records, "cut {cut} changed records");
            if cut > 0 {
                assert!(feat.stats.cloud_macs_saved > 0, "cut {cut} saved no cloud MACs");
            }
            assert_eq!(
                feat.stats.cloud_macs + feat.stats.cloud_macs_saved,
                image.stats.cloud_macs,
                "cut {cut}: MAC split does not cover the full forward"
            );
            assert_eq!(feat.stats.final_cuts, Some(vec![cut]));
        }
        assert_eq!(image.stats.cloud_macs_saved, 0);
        assert_eq!(image.stats.final_cuts, None);
    }

    #[test]
    fn deep_int8_cut_beats_raw_image_upload_on_bytes() {
        let bundle = presets::tiny(73);
        let run = |payload: PayloadPlan| {
            let mut edges = split_replicas(1, 18, 19);
            let mut clouds = replicas(1, || tiny_cloud(19));
            let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 4);
            cfg.payload = payload;
            serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 2))
        };
        let raw = run(PayloadPlan::Image(WireFormat::Quantised8Bit));
        let deep = tiny_cloud(19).cut_layer_count() - 1;
        let int8 = run(feature_plan(FeatureWire::Int8, deep));
        let f32_deep = run(feature_plan(FeatureWire::F32, deep));
        assert!(
            int8.stats.bytes_to_cloud < raw.stats.bytes_to_cloud,
            "deep int8 activations should undercut the raw-image upload: {} vs {}",
            int8.stats.bytes_to_cloud,
            raw.stats.bytes_to_cloud
        );
        // While f32 features at the same cut are bigger than the raw image
        // (the paper's objection to sending features from small images).
        assert!(f32_deep.stats.bytes_to_cloud > raw.stats.bytes_to_cloud);
        // Responses are charged: every offload pulls its prediction back.
        assert_eq!(int8.stats.bytes_from_cloud, RESPONSE_WIRE_BYTES * int8.stats.offloaded as u64);
        // Int8 may flip borderline predictions but serves everything.
        assert_eq!(int8.records.len(), raw.records.len());
        assert!(int8.records.iter().all(|r| r.exit == ExitPoint::Cloud));
    }

    #[test]
    fn per_channel_int8_is_deterministic_and_undercuts_per_tensor_at_every_cut() {
        // The grid-indexed frames round-trip deterministically end to end
        // (same trace, same records, twice), and carrying the quant params
        // out of band in the calibrated grid makes every frame exactly 16
        // bytes smaller than its per-tensor twin at the same cut: 12 bytes
        // of embedded params plus the squeezed batch-axis dim.
        let bundle = presets::tiny(77);
        let run = |payload: PayloadPlan| {
            let mut edges = split_replicas(1, 46, 47);
            let mut clouds = replicas(1, || tiny_cloud(47));
            let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 4);
            cfg.payload = payload;
            serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 2))
        };
        for cut in 0..tiny_cloud(47).cut_layer_count() {
            let a = run(feature_plan(FeatureWire::PerChannelInt8, cut));
            let b = run(feature_plan(FeatureWire::PerChannelInt8, cut));
            assert_eq!(a.records, b.records, "cut {cut}: grid framing must be deterministic");
            assert_eq!(a.records.len(), bundle.test.len());
            assert!(a.records.iter().all(|r| r.exit == ExitPoint::Cloud));
            let per_tensor = run(feature_plan(FeatureWire::Int8, cut));
            assert_eq!(per_tensor.stats.offloaded, a.stats.offloaded);
            assert_eq!(
                per_tensor.stats.bytes_to_cloud - a.stats.bytes_to_cloud,
                16 * a.stats.offloaded as u64,
                "cut {cut}: the shared grid should save exactly the per-frame param overhead"
            );
        }
    }

    #[test]
    fn governed_unreachable_sla_escalates_the_full_ladder() {
        // Deterministic single-lane run under an impossible budget: the
        // governor walks rung 1 (SLA-constrained replan), rungs 2-3 (the
        // int8 wires) and then spends β — and the cloud decodes the
        // mid-run mix of f32 / per-tensor / grid-indexed frames without a
        // hiccup, serving every request.
        let bundle = presets::tiny(84);
        let mut requests = Vec::new();
        for rep in 0..4 {
            for mut r in instant_requests(&bundle.test, 2) {
                r.seq += rep * bundle.test.len();
                requests.push(r);
            }
        }
        let mut edges = split_replicas(1, 48, 49);
        let mut clouds = replicas(1, || tiny_cloud(49));
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
        cfg.link = Some(NetworkLink::wifi(2.0).with_rtt(0.001));
        cfg.control = Some(ControlPlan::Governed(SlaTarget::new(1e-3, 0.80)));
        let report = serve(&cfg, &mut edges, &mut clouds, &requests);
        assert_eq!(report.records.len(), requests.len());
        assert!(
            report.stats.sla_violations >= 4,
            "every judged window violates a 1 µs budget, saw {}",
            report.stats.sla_violations
        );
        let traj = report.stats.control_trajectory.expect("governed runs report their trajectory");
        let last = traj.last().expect("trajectory holds at least the initial point");
        assert_eq!(
            last.wires,
            vec![FeatureWire::PerChannelInt8],
            "the ladder should exhaust the wire rungs down to per-channel int8"
        );
        assert!(last.beta_target.is_some(), "past the wire rungs the β rung must be spent");
        assert!(report.stats.governor_decisions >= 1, "wire moves count as decisions");
        assert_eq!(traj.first().expect("seeded").after_batches, 0, "trajectory starts at the initial point");
    }

    #[test]
    fn control_plan_rejects_each_incoherent_combination_by_name() {
        let b = || ServeConfig::builder(OffloadPolicy::Always);
        let edge = DeviceProfile::new("edge", 10.0, 1e9);
        let planner = || CutPlannerConfig {
            classes: vec![edge.clone()],
            cloud: DeviceProfile::new("cloud", 200.0, 1e12),
            objective: Objective::Latency,
            feedback: None,
        };
        let closed = || ControlPlan::ClosedLoop {
            planner: planner(),
            feedback: LinkFeedback::default(),
            wire: FeatureWire::F32,
            controller: None,
        };
        // Governed without link telemetry has nothing to govern from.
        assert_eq!(
            b().control(ControlPlan::Governed(SlaTarget::new(50.0, 0.9))).build(),
            Err(ServeConfigError::GovernedWithoutTelemetry)
        );
        // Governed over a fixed cut cannot move the cut.
        assert_eq!(
            b().payload(feature_plan(FeatureWire::F32, 1))
                .control(ControlPlan::Governed(SlaTarget::new(50.0, 0.9)))
                .link(NetworkLink::wifi(10.0))
                .build(),
            Err(ServeConfigError::GovernedFixedCut)
        );
        // A plan carries its own controller slot; the legacy setter clashes.
        let controller =
            ControllerConfig { controller: ThresholdController::new(1.0, 0.5, 2.0, (0.0, 3.0)), window: 8 };
        #[allow(deprecated)]
        let with_both = b().controller(controller).control(closed()).link(NetworkLink::wifi(10.0)).build();
        assert_eq!(with_both, Err(ServeConfigError::ControlPlanControllerConflict));
        // A plan decides the payload; an explicit payload clashes.
        assert_eq!(
            b().payload(planned_payload(vec![edge.clone()]))
                .control(closed())
                .link(NetworkLink::wifi(10.0))
                .build(),
            Err(ServeConfigError::ControlPlanPayloadConflict)
        );
        // ClosedLoop's own feedback slot is the only one.
        let mut doubled = planner();
        doubled.feedback = Some(LinkFeedback::default());
        assert_eq!(
            b().control(ControlPlan::ClosedLoop {
                planner: doubled,
                feedback: LinkFeedback::default(),
                wire: FeatureWire::F32,
                controller: None,
            })
            .link(NetworkLink::wifi(10.0))
            .build(),
            Err(ServeConfigError::ClosedLoopFeedbackConflict)
        );
        // And each coherent plan builds.
        assert!(b()
            .control(ControlPlan::Static { cut: 1, wire: FeatureWire::F32, controller: None })
            .build()
            .is_ok());
        assert!(b().control(closed()).link(NetworkLink::wifi(10.0)).build().is_ok());
        assert!(b()
            .control(ControlPlan::Governed(SlaTarget::new(50.0, 0.9)))
            .link(NetworkLink::wifi(10.0))
            .build()
            .is_ok());
    }

    #[test]
    fn planned_cut_is_deterministic_and_in_range() {
        let bundle = presets::tiny(74);
        let planned = PayloadPlan::Features(FeatureConfig {
            wire: FeatureWire::Int8,
            cut: CutSelection::Planned(CutPlannerConfig {
                classes: vec![
                    DeviceProfile::new("fast edge", 10.0, 1e12),
                    DeviceProfile::new("slow edge", 10.0, 1e7),
                ],
                cloud: DeviceProfile::new("cloud", 200.0, 1e11),
                objective: Objective::Latency,
                feedback: None,
            }),
        });
        let run = || {
            let mut edges = split_replicas(2, 20, 21);
            let mut clouds = replicas(1, || tiny_cloud(21));
            let mut cfg = ServeConfig::new(OffloadPolicy::Always, 2, 1, 4);
            cfg.payload = planned.clone();
            cfg.link = Some(NetworkLink::wifi(1.0).with_rtt(0.001));
            serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 4))
        };
        let a = run();
        let b = run();
        let cuts = a.stats.final_cuts.clone().expect("feature mode reports cuts");
        assert_eq!(cuts.len(), 2, "one cut per device class");
        let layers = tiny_cloud(21).cut_layer_count();
        assert!(cuts.iter().all(|&c| c < layers));
        assert_eq!(a.stats.final_cuts, b.stats.final_cuts, "closed-form planning must be deterministic");
        assert_eq!(a.records, b.records);
        assert_eq!(a.stats.cut_replans, 0, "no controller, no replans");
    }

    #[test]
    fn controller_replans_cuts_without_touching_predictions() {
        // A controller window moves β; the planner re-derives the cut
        // under the new contention. With the lossless wire the records
        // still match plain image serving bit for bit.
        let bundle = presets::tiny(75);
        let mut requests = Vec::new();
        for rep in 0..4 {
            for mut r in instant_requests(&bundle.test, 4) {
                r.seq += rep * bundle.test.len();
                requests.push(r);
            }
        }
        let controller =
            Some(ControllerConfig { controller: ThresholdController::new(1.0, 0.5, 2.0, (0.0, 3.0)), window: 16 });
        // One edge worker: the controller's window feedback then happens
        // in arrival order, so both runs see the same threshold (and cut)
        // trajectory. With several edge workers the lock interleaving —
        // not the payload plan — can reorder observations.
        let run = |payload: PayloadPlan| {
            let mut edges = split_replicas(1, 22, 23);
            let mut clouds = replicas(2, || tiny_cloud(23));
            let mut cfg = ServeConfig::new(OffloadPolicy::Never, 1, 2, 4);
            cfg.payload = payload;
            cfg.controller = controller;
            cfg.link = Some(NetworkLink::wifi(40.0).with_rtt(0.0005));
            serve(&cfg, &mut edges, &mut clouds, &requests)
        };
        let planned = PayloadPlan::Features(FeatureConfig {
            wire: FeatureWire::F32,
            cut: CutSelection::Planned(CutPlannerConfig {
                classes: vec![DeviceProfile::new("edge", 10.0, 1e8)],
                cloud: DeviceProfile::new("cloud", 200.0, 1e11),
                objective: Objective::Latency,
                feedback: None,
            }),
        });
        let feat = run(planned);
        let image = run(PayloadPlan::Image(WireFormat::Float32));
        assert_eq!(feat.records, image.records, "replanning leaked into predictions");
        assert!(feat.stats.final_cuts.is_some());
    }

    /// Rebuilds the planner exactly as `build_cut_table` does for an F32
    /// feature plan over the tiny cloud: same env, same stream count.
    fn planner_like_serve(cloud_seed: u64, link: NetworkLink, edge: &DeviceProfile, streams: usize) -> CutPlanner {
        let prefix = tiny_cloud(cloud_seed);
        let in_elems: u64 = prefix.in_shape.iter().map(|&d| d as u64).product();
        let env = PartitionEnv {
            edge: edge.clone(),
            cloud: DeviceProfile::new("cloud", 200.0, 1e12),
            link,
            bytes_per_elem: 4,
            raw_input_bytes: 4 * in_elems,
            response_bytes: RESPONSE_WIRE_BYTES,
        };
        CutPlanner::from_network(&prefix, env, Objective::Latency, streams)
    }

    #[test]
    fn stream_count_uses_distinct_devices_not_max_id() {
        // Regression: the planner's contention model used to estimate the
        // stream count as `max(device id) + 1`, so a trace from devices
        // {0, 7} was charged as EIGHT concurrent uploaders instead of two,
        // inflating β·streams and pushing the planned cut away from where
        // the actual two-stream contention warrants.
        let bundle = presets::tiny(80);
        let edge = DeviceProfile::new("edge", 10.0, 1e9);
        // Find a link rate where 2-stream and 8-stream contention plan
        // different cuts (such a rate must exist: the effective rates
        // differ 4x), so the test can detect which model served.
        let rate = (0..60)
            .map(|i| 0.05 * 1.3f64.powi(i))
            .find(|&r| {
                let two = planner_like_serve(29, NetworkLink::wifi(r).with_rtt(0.001), &edge, 2);
                let eight = planner_like_serve(29, NetworkLink::wifi(r).with_rtt(0.001), &edge, 8);
                two.plan_for(&edge).cut != eight.plan_for(&edge).cut
            })
            .expect("some rate separates 2-stream from 8-stream contention");
        let link = NetworkLink::wifi(rate).with_rtt(0.001);
        let expected_cut = planner_like_serve(29, link, &edge, 2).plan_for(&edge).cut;
        let wrong_cut = planner_like_serve(29, link, &edge, 8).plan_for(&edge).cut;
        assert_ne!(expected_cut, wrong_cut, "rate search guaranteed a separation");

        // Sparse trace: the same frames, but the second device is id 7.
        let mut requests = instant_requests(&bundle.test, 2);
        for r in &mut requests {
            if r.device == 1 {
                r.device = 7;
            }
        }
        let planned = PayloadPlan::Features(FeatureConfig {
            wire: FeatureWire::F32,
            cut: CutSelection::Planned(CutPlannerConfig {
                classes: vec![edge.clone()],
                cloud: DeviceProfile::new("cloud", 200.0, 1e12),
                objective: Objective::Latency,
                feedback: None,
            }),
        });
        let mut edges = split_replicas(2, 28, 29);
        let mut clouds = replicas(1, || tiny_cloud(29));
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 2, 1, 4);
        cfg.payload = planned;
        cfg.link = Some(link);
        let report = serve(&cfg, &mut edges, &mut clouds, &requests);
        assert_eq!(
            report.stats.final_cuts,
            Some(vec![expected_cut]),
            "sparse ids {{0, 7}} must be planned as two streams, not eight"
        );
    }

    #[test]
    fn measured_degradation_replans_toward_an_edge_heavier_cut() {
        // The closed loop end to end: the wire silently degrades 50x
        // mid-run; the static contention model can never see it, but the
        // cloud workers' per-batch telemetry does, and the planner moves
        // the cut toward the edge (smaller uploads). 1 edge x 1 cloud x
        // max_batch 1 keeps the batch order and hence the whole feedback
        // trajectory deterministic.
        let bundle = presets::tiny(81);
        // A slow edge device makes the nominal plan shallow (ship early,
        // the cloud is 2000x faster); once the wire degrades 200x, paying
        // the edge prefix to shrink the upload wins.
        let nominal = NetworkLink::wifi(100.0).with_rtt(0.0002);
        let degraded = NetworkLink::wifi(0.5).with_rtt(0.0002);
        let edge = DeviceProfile::new("edge", 10.0, 5e8);
        let run = |feedback: Option<LinkFeedback>| {
            let mut edges = split_replicas(1, 30, 31);
            let mut clouds = replicas(1, || tiny_cloud(31));
            let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
            let planner = CutPlannerConfig {
                classes: vec![edge.clone()],
                cloud: DeviceProfile::new("cloud", 200.0, 1e12),
                objective: Objective::Latency,
                feedback: None,
            };
            match feedback {
                Some(fb) => {
                    cfg.control = Some(ControlPlan::ClosedLoop {
                        planner,
                        feedback: fb,
                        wire: FeatureWire::F32,
                        controller: None,
                    });
                }
                None => {
                    cfg.payload = PayloadPlan::Features(FeatureConfig {
                        wire: FeatureWire::F32,
                        cut: CutSelection::Planned(planner),
                    });
                }
            }
            cfg.link = Some(nominal);
            cfg.link_schedule = vec![LinkChange { after_batches: 8, link: degraded }];
            serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 1))
        };
        let closed = run(Some(LinkFeedback { alpha: 0.5, prior_samples: 0.0, replan_every: 4 }));
        let open = run(None);

        // Open loop: the degradation happened, nobody replanned.
        assert_eq!(open.stats.cut_replans, 0);
        assert!(open.stats.link_estimates.is_none());
        let open_cut = open.stats.final_cuts.clone().expect("planned mode")[0];

        // Closed loop: telemetry saw the slower wire and the plan moved.
        assert!(closed.stats.cut_replans >= 1, "degradation never reached the planner");
        let closed_cut = closed.stats.final_cuts.clone().expect("planned mode")[0];
        assert!(closed_cut > open_cut, "cut should move edge-heavier: {open_cut} -> {closed_cut}");
        let cloud_net = tiny_cloud(31);
        let profiles = profile_network(&cloud_net);
        let in_elems: u64 = cloud_net.in_shape.iter().map(|&d| d as u64).product();
        let upload = |cut: usize| if cut == 0 { 4 * in_elems } else { 4 * profiles[cut - 1].out_elems };
        assert!(upload(closed_cut) < upload(open_cut), "edge-heavier cut must shrink the upload");

        // The estimator converged onto the degraded wire (EWMA of exact
        // per-batch observations; the nominal prefix decays geometrically).
        let ests = closed.stats.link_estimates.expect("feedback reports estimates");
        let est = ests[0].expect("class 0 observed");
        assert_eq!(est.samples, closed.stats.offloaded as u64, "one observation per served batch");
        assert!((est.up_mbps - 0.5).abs() / 0.5 < 0.05, "estimate {} should track 0.5 Mbps", est.up_mbps);
        assert!((est.rtt_s - 0.0002).abs() < 1e-9);

        // The cut is a pure cost knob: closed- and open-loop runs serve
        // bitwise-identical records under the lossless wire.
        assert_eq!(closed.records, open.records, "replanning leaked into predictions");
    }

    #[test]
    #[should_panic(expected = "link schedule needs a link")]
    fn link_schedule_without_link_rejected() {
        let bundle = presets::tiny(82);
        let mut edges = edge_replicas(1, 33);
        let mut cfg = ServeConfig::new(OffloadPolicy::Never, 1, 0, 1);
        cfg.link_schedule = vec![LinkChange { after_batches: 1, link: NetworkLink::wifi(1.0) }];
        let _ = serve(&cfg, &mut edges, &mut [], &instant_requests(&bundle.test, 1));
    }

    #[test]
    #[should_panic(expected = "no cloud prefix")]
    fn feature_mode_without_prefixes_rejected() {
        let bundle = presets::tiny(76);
        let mut edges = edge_replicas(1, 24);
        let mut clouds = replicas(1, || tiny_cloud(25));
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
        cfg.payload = feature_plan(FeatureWire::F32, 1);
        let _ = serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fixed_cut_out_of_range_rejected() {
        let bundle = presets::tiny(78);
        let mut edges = split_replicas(1, 26, 27);
        let mut clouds = replicas(1, || tiny_cloud(27));
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
        cfg.payload = feature_plan(FeatureWire::F32, tiny_cloud(27).cut_layer_count());
        let _ = serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 1));
    }

    #[test]
    fn payload_pipeline_round_trips_in_order_across_workers() {
        let mut rng = Rng::new(0);
        let payloads: Vec<Payload> = (0..12)
            .map(|i| {
                let t = Tensor::randn([3, 4, 4], 1.0, &mut rng).map(|v| v + i as f32);
                Payload::Features { features: t }
            })
            .collect();
        let expected_bytes: u64 = payloads.iter().map(|p| p.wire_size_bytes()).sum();
        for workers in [1usize, 3] {
            let (results, stats) =
                run_payload_pipeline(payloads.clone(), workers, 4, Duration::from_millis(1), 4, |p| {
                    p.as_tensor().sum().clamp(0.0, 11.0) as usize
                });
            assert_eq!(results.len(), 12);
            assert_eq!(stats.payloads, 12);
            assert_eq!(stats.bytes_sent, expected_bytes);
            let (serial, _) = run_payload_pipeline(payloads.clone(), 1, 1, Duration::ZERO, 4, |p| {
                p.as_tensor().sum().clamp(0.0, 11.0) as usize
            });
            assert_eq!(results, serial, "worker/batch configuration changed results");
        }
    }

    #[test]
    fn scheduled_link_keys_on_started_batches() {
        // `after_batches: 3` means "the 4th started batch (and later) rides
        // the new link": a batch with 3 starts before it has crossed the
        // boundary, one with 2 has not.
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
        let before = NetworkLink::wifi(100.0);
        let after = NetworkLink::wifi(1.0);
        cfg.link = Some(before);
        cfg.link_schedule = vec![LinkChange { after_batches: 3, link: after }];
        assert_eq!(scheduled_link(&cfg, 2), Some(before));
        assert_eq!(scheduled_link(&cfg, 3), Some(after));
        assert_eq!(scheduled_link(&cfg, 9), Some(after));
    }

    #[test]
    fn link_change_fires_on_the_started_batch_boundary() {
        // Regression for the started-vs-completed ambiguity: a change due
        // at batch 3 must leave EXACTLY the first three started batches on
        // the fast link, even with two cloud workers racing to dequeue.
        // The fast link is effectively free; the slow one costs 0.2 s of
        // RTT, so per-request latency separates the two regimes cleanly.
        let bundle = presets::tiny(83);
        let mut reqs = instant_requests(&bundle.test, 2);
        reqs.truncate(12);
        let mut edges = edge_replicas(1, 34);
        let mut clouds = replicas(2, || tiny_cloud(35));
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 2, 1);
        cfg.link = Some(NetworkLink::wifi(10_000.0).with_rtt(0.0));
        cfg.link_schedule = vec![LinkChange { after_batches: 3, link: NetworkLink::wifi(10_000.0).with_rtt(0.2) }];
        let report = serve(&cfg, &mut edges, &mut clouds, &reqs);
        assert_eq!(report.stats.cloud_batches, 12, "max_batch 1 means one batch per offload");
        let fast = report.completions.iter().filter(|c| c.latency_s < 0.1).count();
        assert_eq!(fast, 3, "exactly the batches started before the boundary ride the fast link");
    }

    #[test]
    #[should_panic(expected = "non-finite arrival time")]
    fn trace_requests_reject_non_finite_arrivals() {
        // `0 * inf = NaN`: an infinite uniform interval passes the model's
        // own `>= 0` parameter check but yields a NaN first arrival.
        let bundle = presets::tiny(84);
        let mut rng = Rng::new(0);
        let _ = trace_requests(&bundle.test, 1, &ArrivalModel::Uniform { interval_s: f64::INFINITY }, &mut rng);
    }

    #[test]
    #[should_panic(expected = "non-finite arrival time")]
    fn serve_rejects_non_finite_arrivals() {
        // A NaN smuggled into a hand-built trace must be named up front,
        // not surface as a misleading "sorted by arrival" comparator error.
        let bundle = presets::tiny(85);
        let mut reqs = instant_requests(&bundle.test, 1);
        reqs[3].arrival_s = f64::NAN;
        let mut edges = edge_replicas(1, 36);
        let _ = serve(&ServeConfig::new(OffloadPolicy::Never, 1, 0, 1), &mut edges, &mut [], &reqs);
    }

    #[test]
    #[should_panic(expected = "edge worker 0 panicked")]
    fn worker_panic_propagates_instead_of_hanging() {
        // A poisoned frame (wrong channel count) blows up the edge forward
        // mid-run. The collector used to block forever on `done_rx.recv()`;
        // now the runtime joins the workers and re-raises the original
        // panic, naming the worker that died.
        let bundle = presets::tiny(86);
        let mut reqs = instant_requests(&bundle.test, 1);
        let mid = reqs.len() / 2;
        reqs[mid].image = Tensor::zeros([1, 1, 8, 8]);
        let mut edges = edge_replicas(1, 37);
        let mut clouds = replicas(2, || tiny_cloud(38));
        let _ = serve(&ServeConfig::new(OffloadPolicy::Always, 1, 2, 1), &mut edges, &mut clouds, &reqs);
    }

    #[test]
    fn pipe_transport_matches_modelled_records_bitwise() {
        // The acceptance bar of the transport tentpole: byte-identical
        // frames ride a real buffered byte stream instead of a modelled
        // channel, so records, uplink bytes, and downlink bytes all match
        // the modelled path exactly — on every payload plan and cut.
        let bundle = presets::tiny(87);
        let deep = tiny_cloud(41).cut_layer_count() - 1;
        let plans = [
            PayloadPlan::Image(WireFormat::Float32),
            PayloadPlan::Image(WireFormat::Quantised8Bit),
            feature_plan(FeatureWire::F32, 2),
            feature_plan(FeatureWire::Int8, deep),
        ];
        for plan in plans {
            let run = |transport: TransportKind| {
                let mut edges = split_replicas(2, 40, 41);
                let mut clouds = replicas(2, || tiny_cloud(41));
                let mut cfg = ServeConfig::new(OffloadPolicy::EntropyThreshold(0.5), 2, 2, 4);
                cfg.payload = plan.clone();
                cfg.transport = transport;
                serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 3))
            };
            let modelled = run(TransportKind::Modelled);
            let piped = run(TransportKind::Pipe(PipeConfig::default()));
            assert_eq!(piped.records, modelled.records, "{plan:?}: pipe transport changed records");
            assert_eq!(piped.stats.offloaded, modelled.stats.offloaded);
            assert_eq!(
                piped.stats.bytes_to_cloud, modelled.stats.bytes_to_cloud,
                "{plan:?}: uplink bytes diverged"
            );
            assert_eq!(
                piped.stats.bytes_from_cloud, modelled.stats.bytes_from_cloud,
                "{plan:?}: downlink bytes diverged"
            );
        }
    }

    #[test]
    fn pipe_telemetry_measures_the_real_wire_not_the_model() {
        // Pace the pipe's uplink at 4 Mbps while telling the planner the
        // link is 100 Mbps. The estimator must report the paced wire (from
        // Instant::now() deltas around real sends), not echo the model.
        let bundle = presets::tiny(88);
        let mut edges = split_replicas(1, 42, 43);
        let mut clouds = replicas(1, || tiny_cloud(43));
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
        cfg.control = Some(ControlPlan::ClosedLoop {
            planner: CutPlannerConfig {
                classes: vec![DeviceProfile::new("edge", 10.0, 5e8)],
                cloud: DeviceProfile::new("cloud", 200.0, 1e12),
                objective: Objective::Latency,
                feedback: None,
            },
            feedback: LinkFeedback { alpha: 0.5, prior_samples: 0.0, replan_every: 4 },
            wire: FeatureWire::F32,
            controller: None,
        });
        cfg.link = Some(NetworkLink::wifi(100.0).with_rtt(0.0));
        cfg.transport = TransportKind::Pipe(PipeConfig { up_mbps: Some(4.0), ..PipeConfig::default() });
        let report = serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 1));
        let ests = report.stats.link_estimates.expect("feedback reports estimates");
        let est = ests[0].expect("class 0 observed");
        assert_eq!(est.samples, report.stats.offloaded as u64, "one observation per served batch");
        assert!(
            est.up_mbps > 1.0 && est.up_mbps < 16.0,
            "measured estimate {} Mbps should track the 4 Mbps pace, not the 100 Mbps model",
            est.up_mbps
        );
    }

    #[test]
    fn pipe_throttle_replans_toward_an_edge_heavier_cut() {
        // The closed loop over REAL wall-clock time: the pipe's pacer
        // silently throttles 50 -> 0.4 Mbps mid-run. The static model is
        // never told, but the measured estimates are, and the planner
        // moves the cut toward the edge (smaller uploads) — the modelled
        // analogue of `measured_degradation_replans_toward_an_edge_heavier_cut`.
        let edge = DeviceProfile::new("edge", 10.0, 5e8);
        let bundle = presets::tiny(89);
        let run = |throttle: Vec<PaceChange>| {
            let mut edges = split_replicas(1, 44, 45);
            let mut clouds = replicas(1, || tiny_cloud(45));
            let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
            cfg.control = Some(ControlPlan::ClosedLoop {
                planner: CutPlannerConfig {
                    classes: vec![edge.clone()],
                    cloud: DeviceProfile::new("cloud", 200.0, 1e12),
                    objective: Objective::Latency,
                    feedback: None,
                },
                feedback: LinkFeedback { alpha: 0.5, prior_samples: 0.0, replan_every: 4 },
                wire: FeatureWire::F32,
                controller: None,
            });
            cfg.link = Some(NetworkLink::wifi(100.0).with_rtt(0.0002));
            cfg.transport =
                TransportKind::Pipe(PipeConfig { up_mbps: Some(50.0), throttle, ..PipeConfig::default() });
            serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 1))
        };
        let steady = run(Vec::new());
        let throttled = run(vec![PaceChange { after_frames: 8, up_mbps: 0.4 }]);
        assert!(throttled.stats.cut_replans >= 1, "throttle never reached the planner");
        let steady_cut = steady.stats.final_cuts.clone().expect("planned mode")[0];
        let throttled_cut = throttled.stats.final_cuts.clone().expect("planned mode")[0];
        assert!(
            throttled_cut > steady_cut,
            "cut should move edge-heavier under the real throttle: {steady_cut} -> {throttled_cut}"
        );
        // Lossless wire: the cut stays a pure cost knob even when the
        // schedule is driven by measured time.
        assert_eq!(throttled.records, steady.records, "replanning leaked into predictions");
    }

    /// A planned-cut feature payload over the given classes (no feedback).
    fn planned_payload(classes: Vec<DeviceProfile>) -> PayloadPlan {
        PayloadPlan::Features(FeatureConfig {
            wire: FeatureWire::F32,
            cut: CutSelection::Planned(CutPlannerConfig {
                classes,
                cloud: DeviceProfile::new("cloud", 200.0, 1e12),
                objective: Objective::Latency,
                feedback: None,
            }),
        })
    }

    #[test]
    fn builder_rejects_each_static_invariant_by_name() {
        let b = || ServeConfig::builder(OffloadPolicy::Always);
        let edge = DeviceProfile::new("edge", 10.0, 1e9);
        assert_eq!(b().edge_workers(0).build(), Err(ServeConfigError::NoEdgeWorkers));
        assert_eq!(b().max_batch(0).build(), Err(ServeConfigError::ZeroMaxBatch));
        assert_eq!(b().queue_depth(0).build(), Err(ServeConfigError::ZeroQueueDepth));
        let schedule = vec![LinkChange { after_batches: 1, link: NetworkLink::wifi(1.0) }];
        assert_eq!(b().link_schedule(schedule.clone()).build(), Err(ServeConfigError::ScheduleWithoutLink));
        assert_eq!(
            b().link(NetworkLink::wifi(1.0))
                .link_schedule(schedule)
                .transport(TransportKind::Pipe(PipeConfig::default()))
                .build(),
            Err(ServeConfigError::ScheduleOnPipe)
        );
        let controller =
            ControllerConfig { controller: ThresholdController::new(1.0, 0.5, 2.0, (0.0, 3.0)), window: 0 };
        assert_eq!(b().controller(controller).build(), Err(ServeConfigError::ControllerWindowEmpty));
        assert_eq!(b().cloud_workers(0).build(), Err(ServeConfigError::PolicyNeedsCloud));
        // An edge-only policy without cloud workers stays legal.
        assert!(ServeConfig::builder(OffloadPolicy::Never).cloud_workers(0).build().is_ok());
        assert_eq!(
            b().payload(planned_payload(Vec::new())).link(NetworkLink::wifi(1.0)).build(),
            Err(ServeConfigError::NoPlannerClasses)
        );
        assert_eq!(
            b().payload(planned_payload(vec![edge.clone()])).build(),
            Err(ServeConfigError::PlannedCutWithoutLink)
        );
        let feedback = Some(LinkFeedback { replan_every: 0, ..LinkFeedback::default() });
        let never_replans = PayloadPlan::Features(FeatureConfig {
            wire: FeatureWire::F32,
            cut: CutSelection::Planned(CutPlannerConfig {
                classes: vec![edge.clone()],
                cloud: DeviceProfile::new("cloud", 200.0, 1e12),
                objective: Objective::Latency,
                feedback,
            }),
        });
        assert_eq!(
            b().payload(never_replans).link(NetworkLink::wifi(1.0)).build(),
            Err(ServeConfigError::FeedbackNeverReplans)
        );
        let spec = FleetSpec::uniform(DeviceClass::new("edge", edge.clone(), ComputeTier::High));
        assert_eq!(
            b().payload(planned_payload(vec![edge])).link(NetworkLink::wifi(1.0)).fleet(spec).build(),
            Err(ServeConfigError::FleetClassesConflict)
        );
        // And a fully specified valid configuration builds.
        let cfg = b().edge_workers(2).cloud_workers(1).max_batch(4).build().expect("valid config");
        assert_eq!((cfg.edge_workers, cfg.cloud_workers, cfg.max_batch), (2, 1, 4));
    }

    #[test]
    fn config_errors_keep_the_legacy_panic_wording() {
        // The deprecated `serve` shim panics with `{error}`; every
        // `#[should_panic(expected = ...)]` substring that guarded the old
        // asserts must therefore survive in the Display impls.
        for (error, legacy) in [
            (ServeConfigError::PolicyNeedsCloud, "requires a cloud model"),
            (ServeConfigError::ScheduleWithoutLink, "link schedule needs a link"),
            (ServeConfigError::NoEdgeWorkers, "need at least one edge worker"),
        ] {
            assert!(error.to_string().contains(legacy), "{error:?} lost its wording: {error}");
        }
        for (error, legacy) in [
            (ServeError::UnsortedArrivals, "sorted by arrival"),
            (ServeError::NonFiniteArrival { index: 0, device: 0, seq: 0 }, "non-finite arrival time"),
            (ServeError::MissingCloudPrefix { worker: 0 }, "no cloud prefix"),
            (ServeError::FixedCutOutOfRange { cut: 9, cut_layers: 9 }, "out of range"),
        ] {
            assert!(error.to_string().contains(legacy), "{error:?} lost its wording: {error}");
        }
        // Config errors surface their source through the ServeError chain.
        let wrapped = ServeError::from(ServeConfigError::NoEdgeWorkers);
        assert_eq!(wrapped, ServeError::Config(ServeConfigError::NoEdgeWorkers));
        assert!(std::error::Error::source(&wrapped).is_some());
    }

    /// A deeper cloud variant (two blocks per stage): same input shape as
    /// [`tiny_cloud`], different layer enumeration.
    fn deeper_cloud(seed: u64) -> SegmentedCnn {
        let mut rng = Rng::new(seed);
        let mut cfg = CifarResNetConfig::repro_scale(6);
        cfg.input_hw = 8;
        cfg.channels = [16, 24, 32];
        cfg.blocks_per_stage = 2;
        resnet_cifar(&cfg, &mut rng)
    }

    #[test]
    fn try_serve_names_every_runtime_inconsistency() {
        let bundle = presets::tiny(150);
        let reqs = instant_requests(&bundle.test, 1);
        let mut edges = edge_replicas(1, 50);
        let mut clouds = replicas(1, || tiny_cloud(51));

        let two_workers = ServeConfig::new(OffloadPolicy::Never, 2, 0, 1);
        assert_eq!(
            try_serve(&two_workers, &mut edges, &mut [], &reqs).unwrap_err(),
            ServeError::EdgeReplicaMismatch { workers: 2, replicas: 1 }
        );
        let no_cloud = ServeConfig::new(OffloadPolicy::Never, 1, 0, 1);
        assert_eq!(
            try_serve(&no_cloud, &mut edges, &mut clouds, &reqs).unwrap_err(),
            ServeError::CloudReplicaMismatch { workers: 0, replicas: 1 }
        );

        let cfg = ServeConfig::new(OffloadPolicy::Never, 1, 0, 1);
        let mut unsorted = reqs.clone();
        unsorted[0].arrival_s = 1.0;
        assert_eq!(try_serve(&cfg, &mut edges, &mut [], &unsorted).unwrap_err(), ServeError::UnsortedArrivals);
        // Finiteness is named before sortedness: a NaN fails every
        // comparison, so it must not masquerade as "unsorted".
        let mut nan = reqs.clone();
        nan[2].arrival_s = f64::NAN;
        assert!(matches!(
            try_serve(&cfg, &mut edges, &mut [], &nan),
            Err(ServeError::NonFiniteArrival { index: 2, .. })
        ));
        let mut negative = reqs.clone();
        negative[0].arrival_s = -1.0;
        assert_eq!(
            try_serve(&cfg, &mut edges, &mut [], &negative).unwrap_err(),
            ServeError::NegativeArrival { index: 0 }
        );
        let mut batched = reqs.clone();
        batched[1].image = Tensor::zeros([2, 3, 8, 8]);
        assert_eq!(
            try_serve(&cfg, &mut edges, &mut [], &batched).unwrap_err(),
            ServeError::NotSingleInstance { index: 1 }
        );

        // Feature-payload inconsistencies.
        let mut features = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
        features.payload = feature_plan(FeatureWire::F32, 1);
        assert_eq!(
            try_serve(&features, &mut edges, &mut clouds, &reqs).unwrap_err(),
            ServeError::MissingCloudPrefix { worker: 0 }
        );
        let mut split = split_replicas(1, 52, 53);
        let layers = tiny_cloud(53).cut_layer_count();
        let mut out_of_range = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
        out_of_range.payload = feature_plan(FeatureWire::F32, layers);
        let mut clouds53 = replicas(1, || tiny_cloud(53));
        assert_eq!(
            try_serve(&out_of_range, &mut split, &mut clouds53, &reqs).unwrap_err(),
            ServeError::FixedCutOutOfRange { cut: layers, cut_layers: layers }
        );
        let mut deeper = replicas(1, || deeper_cloud(53));
        let mut fixed0 = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
        fixed0.payload = feature_plan(FeatureWire::F32, 0);
        assert_eq!(
            try_serve(&fixed0, &mut split, &mut deeper, &reqs).unwrap_err(),
            ServeError::PrefixMismatch { edge_layers: layers, cloud_layers: deeper_cloud(53).cut_layer_count() }
        );
        // A config error reaches try_serve callers wrapped.
        let zero_batch = ServeConfig::new(OffloadPolicy::Never, 1, 0, 0);
        assert_eq!(
            try_serve(&zero_batch, &mut edges, &mut [], &reqs).unwrap_err(),
            ServeError::Config(ServeConfigError::ZeroMaxBatch)
        );
    }

    #[test]
    fn fleet_serve_matches_the_free_function_bitwise() {
        let bundle = presets::tiny(151);
        let cfg = ServeConfig::builder(OffloadPolicy::EntropyThreshold(0.8))
            .edge_workers(2)
            .cloud_workers(1)
            .max_batch(4)
            .build()
            .expect("valid config");
        let reqs = instant_requests(&bundle.test, 3);
        let mut edges = edge_replicas(2, 54);
        let mut clouds = replicas(1, || tiny_cloud(55));
        let expected = try_serve(&cfg, &mut edges, &mut clouds, &reqs).expect("serves");

        let mut fleet = Fleet::new(cfg, edge_replicas(2, 54), replicas(1, || tiny_cloud(55))).expect("consistent");
        assert!(fleet.spec().is_none(), "no registry configured");
        let report = fleet.serve(&reqs).expect("serves");
        assert_eq!(report.records, expected.records);
        assert_eq!(report.stats.offloaded, expected.stats.offloaded);
        // The parts come back out for rebuilding.
        let (cfg, edges, clouds) = fleet.into_parts();
        assert_eq!((edges.len(), clouds.len()), (cfg.edge_workers, cfg.cloud_workers));
    }

    #[test]
    fn fleet_new_rejects_mismatched_replicas_up_front() {
        let cfg = ServeConfig::new(OffloadPolicy::Never, 2, 0, 1);
        let err = Fleet::new(cfg, edge_replicas(1, 56), Vec::new()).expect_err("one replica short");
        assert_eq!(err, ServeError::EdgeReplicaMismatch { workers: 2, replicas: 1 });
        assert!(err.to_string().contains("one edge replica per edge worker"));
    }

    #[test]
    fn uniform_high_tier_fleet_matches_the_legacy_planner_path_bitwise() {
        // Backward compatibility of the registry: a single High-tier class
        // (scale factor 1.0, no link prior) must reproduce the legacy
        // `CutPlannerConfig::classes` path bit for bit — same cuts, same
        // records — because `scaled_throughput(1.0)` preserves the profile
        // and an absent prior falls back to the shared link model.
        let bundle = presets::tiny(152);
        let edge = DeviceProfile::new("edge", 10.0, 5e8);
        let link = NetworkLink::wifi(1.0).with_rtt(0.001);
        let run = |classes: Vec<DeviceProfile>, fleet: Option<FleetSpec>| {
            let mut edges = split_replicas(2, 58, 59);
            let mut clouds = replicas(1, || tiny_cloud(59));
            let mut cfg = ServeConfig::new(OffloadPolicy::Always, 2, 1, 4);
            cfg.payload = planned_payload(classes);
            cfg.link = Some(link);
            cfg.fleet = fleet;
            try_serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 2)).expect("serves")
        };
        let legacy = run(vec![edge.clone()], None);
        let spec = FleetSpec::uniform(DeviceClass::new("edge", edge, ComputeTier::High));
        let fleet = run(Vec::new(), Some(spec));
        assert_eq!(fleet.records, legacy.records);
        assert_eq!(fleet.stats.final_cuts, legacy.stats.final_cuts);
        assert_eq!(fleet.stats.bytes_to_cloud, legacy.stats.bytes_to_cloud);
        // Only the registry path reports per-class breakdowns.
        assert!(legacy.stats.per_class_served.is_none());
        let served = fleet.stats.per_class_served.expect("fleet stats");
        assert_eq!(served, vec![fleet.stats.total]);
    }

    #[test]
    fn heterogeneous_tiers_plan_per_class_cuts_from_effective_profiles() {
        // The heart of the heterogeneity tentpole: two classes sharing one
        // hardware profile but different compute tiers must plan different
        // cuts once a link rate separates their effective throughputs —
        // and the planned cuts must equal what an offline planner derives
        // from the tier-scaled profiles.
        let bundle = presets::tiny(153);
        let base = DeviceProfile::new("edge", 10.0, 5e8);
        let high = DeviceClass::new("high", base.clone(), ComputeTier::High);
        let low = DeviceClass::new("low", base, ComputeTier::Low);
        let (hp, lp) = (high.effective_profile(), low.effective_profile());
        let rate = (0..60)
            .map(|i| 0.05 * 1.3f64.powi(i))
            .find(|&r| {
                let planner = planner_like_serve(61, NetworkLink::wifi(r).with_rtt(0.001), &hp, 2);
                planner.plan_for(&hp).cut != planner.plan_for(&lp).cut
            })
            .expect("some rate separates the High and Low tiers");
        let link = NetworkLink::wifi(rate).with_rtt(0.001);
        let planner = planner_like_serve(61, link, &hp, 2);
        let expected = vec![planner.plan_for(&hp).cut, planner.plan_for(&lp).cut];

        let mut edges = split_replicas(2, 60, 61);
        let mut clouds = replicas(1, || tiny_cloud(61));
        let cfg = ServeConfig::builder(OffloadPolicy::Always)
            .edge_workers(2)
            .cloud_workers(1)
            .max_batch(4)
            .payload(planned_payload(Vec::new()))
            .link(link)
            .fleet(FleetSpec::round_robin(vec![high, low]))
            .build()
            .expect("valid config");
        let report = try_serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 2)).expect("serves");
        assert_eq!(report.stats.final_cuts, Some(expected.clone()));
        assert_ne!(expected[0], expected[1], "tiers must plan different cuts");

        // Round-robin assignment: devices {0, 1} split across the classes,
        // and the per-class breakdown partitions the totals.
        let served = report.stats.per_class_served.clone().expect("fleet stats");
        let offload = report.stats.per_class_offload.clone().expect("fleet stats");
        assert_eq!(served.iter().sum::<usize>(), report.stats.total);
        assert_eq!(offload.iter().sum::<usize>(), report.stats.offloaded);
        assert!(served.iter().all(|&s| s > 0), "both classes serve traffic: {served:?}");
        let latency = report.stats.per_class_latency.expect("fleet stats");
        assert!(latency.iter().all(Option::is_some), "both classes record latencies");
    }

    #[test]
    fn explicit_assignment_overrides_the_modulo_convention() {
        // `FleetSpec::assign` must beat `device % classes`: pin both
        // devices to class 1 and the class-0 row of every per-class stat
        // stays empty.
        let bundle = presets::tiny(154);
        let base = DeviceProfile::new("edge", 10.0, 1e9);
        let spec = FleetSpec::round_robin(vec![
            DeviceClass::new("a", base.clone(), ComputeTier::High),
            DeviceClass::new("b", base, ComputeTier::Medium),
        ])
        .assign(0, 1)
        .assign(1, 1);
        let cfg = ServeConfig::builder(OffloadPolicy::Always)
            .edge_workers(2)
            .cloud_workers(1)
            .max_batch(4)
            .fleet(spec)
            .build()
            .expect("valid config");
        let mut edges = edge_replicas(2, 62);
        let mut clouds = replicas(1, || tiny_cloud(63));
        let report = try_serve(&cfg, &mut edges, &mut clouds, &instant_requests(&bundle.test, 2)).expect("serves");
        let served = report.stats.per_class_served.expect("fleet stats");
        assert_eq!(served[0], 0, "every device is pinned to class b");
        assert_eq!(served[1], report.stats.total);
        assert_eq!(report.stats.per_class_latency.expect("fleet stats")[0], None, "empty class has no histogram");
    }

    #[test]
    fn difficulty_routing_skips_main_exits_and_settles_easy_locally() {
        // Algorithm-2 short-circuits: predicted-hard requests pre-commit
        // to the cloud WITHOUT running the main exit (the saved forwards
        // are counted), predicted-easy requests refuse the offload leg
        // entirely, and ambiguous requests take the unchanged route.
        let bundle = presets::tiny(155);
        let mut calibration = tiny_net(64);
        let predictor = DifficultyPredictor::calibrate(&mut calibration, &bundle.train.images, 8);
        let reqs = instant_requests(&bundle.test, 2);
        let verdicts: Vec<Difficulty> = reqs.iter().map(|r| predictor.predict(&r.image)).collect();
        let hard = verdicts.iter().filter(|&&d| d == Difficulty::Hard).count();
        let easy = verdicts.iter().filter(|&&d| d == Difficulty::Easy).count();
        assert!(hard > 0 && easy > 0, "calibration must spread the trace across bands: {verdicts:?}");

        let run = |difficulty: Option<DifficultyPredictor>| {
            let mut edges = edge_replicas(2, 64);
            let mut clouds = replicas(1, || tiny_cloud(65));
            let mut cfg = ServeConfig::new(OffloadPolicy::EntropyThreshold(0.8), 2, 1, 4);
            cfg.difficulty = difficulty;
            try_serve(&cfg, &mut edges, &mut clouds, &reqs).expect("serves")
        };
        let plain = run(None);
        let routed = run(Some(predictor.clone()));

        assert_eq!(plain.stats.skipped_main_exits, 0, "no predictor, no skips");
        assert_eq!(routed.stats.total, plain.stats.total, "routing must not drop requests");
        // Every predicted-hard request skipped its main-exit forward …
        assert_eq!(routed.stats.skipped_main_exits, hard);
        // … and is recognisable in the records by the sentinel.
        let precommitted =
            routed.records.iter().filter(|r| r.main_prediction == PendingCloud::PRECOMMITTED).count();
        assert_eq!(precommitted, hard);
        for (verdict, record) in verdicts.iter().zip(&routed.records) {
            match verdict {
                Difficulty::Hard => assert_eq!(record.exit, ExitPoint::Cloud, "hard pre-commits to the cloud"),
                Difficulty::Easy => assert_ne!(record.exit, ExitPoint::Cloud, "easy settles on the edge"),
                Difficulty::Ambiguous => {}
            }
        }
    }

    #[test]
    fn difficulty_respects_an_edge_only_policy() {
        // `wants_precommit` defers to the policy: with no cloud at all a
        // predicted-hard request must still run the normal local route
        // (there is nowhere to pre-commit to).
        let bundle = presets::tiny(156);
        let mut calibration = tiny_net(66);
        let predictor = DifficultyPredictor::calibrate(&mut calibration, &bundle.train.images, 8);
        let mut edges = edge_replicas(1, 66);
        let mut cfg = ServeConfig::new(OffloadPolicy::Never, 1, 0, 1);
        cfg.difficulty = Some(predictor);
        let report = try_serve(&cfg, &mut edges, &mut [], &instant_requests(&bundle.test, 1)).expect("serves");
        assert_eq!(report.stats.offloaded, 0);
        assert_eq!(report.stats.skipped_main_exits, 0, "edge-only serving never pre-commits");
        assert_eq!(report.stats.total, bundle.test.len());
        assert!(report.records.iter().all(|r| r.exit != ExitPoint::Cloud));
    }
}
