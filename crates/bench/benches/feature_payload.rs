//! Feature-payload serving vs raw-image offloading: the same saturating
//! high-offload trace served three ways — raw 8-bit images (the paper's
//! baseline), f32 activations at the online-planned cut, and int8
//! activations at the deepest cut — comparing bytes on the wire, cloud
//! recompute, and service time.

use mea_bench::experiments::serving;
use mea_bench::regression::Reporter;
use mea_bench::Scale;
use mea_metrics::Table;

fn main() {
    let mut rep = Reporter::start("feature_payload");
    let result = serving::feature_payload(Scale::from_env());

    let mut table = Table::new(&[
        "payload mode",
        "cut",
        "bytes up",
        "bytes down",
        "cloud MMACs",
        "saved MMACs",
        "service (ms)",
    ]);
    for r in [&result.image_raw, &result.feature_f32, &result.feature_int8] {
        table.row(&[
            r.mode.to_string(),
            r.cut.map_or("-".into(), |c| c.to_string()),
            r.bytes_to_cloud.to_string(),
            r.bytes_from_cloud.to_string(),
            format!("{:.2}", r.cloud_macs as f64 / 1e6),
            format!("{:.2}", r.cloud_macs_saved as f64 / 1e6),
            format!("{:.2}", r.service_ms),
        ]);
    }
    println!("== Feature-payload serving: wire bytes and cloud recompute ==\n{table}");

    // The lossless feature path is the same system as the offline sweep,
    // whatever cut the planner picked.
    assert_eq!(
        result.feature_f32.records, result.offline,
        "f32 feature-payload serving diverged from the offline sweep"
    );
    assert!(result.offloaded > 0, "nothing offloaded; the comparison is vacuous");

    // Cloud recompute: every offload resumed at the cut spares the cloud
    // the prefix, so feature modes must execute strictly fewer MACs.
    let full = result.offloaded as u64 * result.cloud_total_macs;
    assert_eq!(result.image_raw.cloud_macs, full, "image mode must recompute the full forward per offload");
    assert_eq!(result.image_raw.cloud_macs_saved, 0);
    for r in [&result.feature_f32, &result.feature_int8] {
        assert!(r.cut.unwrap_or(0) > 0, "{}: expected a non-trivial cut", r.mode);
        assert!(r.cloud_macs < full, "{}: no cloud recompute saved", r.mode);
        assert_eq!(r.cloud_macs + r.cloud_macs_saved, full, "{}: MAC split must cover the forward", r.mode);
    }

    // Bytes on the wire: int8 activations at a deep cut undercut even the
    // raw-image upload; f32 activations do not (the paper's objection).
    assert!(
        result.feature_int8.bytes_to_cloud < result.image_raw.bytes_to_cloud,
        "int8 deep cut should beat the raw upload: {} vs {}",
        result.feature_int8.bytes_to_cloud,
        result.image_raw.bytes_to_cloud
    );

    // The int8 wire is lossy; it must still serve everything and mostly
    // agree with the lossless records.
    let n = result.offline.len();
    let agree = result
        .feature_int8
        .records
        .iter()
        .zip(&result.offline)
        .filter(|(a, b)| a.prediction == b.prediction)
        .count();
    assert!(agree * 4 >= n * 3, "int8 wire flipped too many predictions: {agree}/{n}");

    // Deterministic routing/wire/compute outcomes gate as invariants;
    // wall-clock service times gate as `_ms` latencies.
    rep.metric("total", n as f64);
    rep.metric("offloaded", result.offloaded as f64);
    rep.metric("planned_cut", result.feature_f32.cut.unwrap() as f64);
    rep.metric("deep_cut", result.feature_int8.cut.unwrap() as f64);
    rep.metric("image_bytes", result.image_raw.bytes_to_cloud as f64);
    rep.metric("feat_f32_bytes", result.feature_f32.bytes_to_cloud as f64);
    rep.metric("feat_int8_bytes", result.feature_int8.bytes_to_cloud as f64);
    rep.metric("response_bytes", result.image_raw.bytes_from_cloud as f64);
    rep.metric("cloud_macs_image", result.image_raw.cloud_macs as f64);
    rep.metric("cloud_macs_feat_f32", result.feature_f32.cloud_macs as f64);
    rep.metric("cloud_macs_saved_feat_f32", result.feature_f32.cloud_macs_saved as f64);
    rep.metric("cloud_macs_feat_int8", result.feature_int8.cloud_macs as f64);
    rep.metric("int8_agree", agree as f64);
    rep.metric("service_image_ms", result.image_raw.service_ms);
    rep.metric("service_feat_f32_ms", result.feature_f32.service_ms);
    rep.metric("service_feat_int8_ms", result.feature_int8.service_ms);
    rep.finish();
}
