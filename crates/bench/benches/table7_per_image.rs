//! Table VII: per-image computation and communication power, time and
//! energy at the edge (paper device constants + host-measured latency).

// Table VII's CIFAR edge-compute energy anchor is 3.14 mJ — a paper
// constant that only coincidentally resembles π.
#![allow(clippy::approx_constant)]

use mea_bench::experiments::tables;
use mea_bench::regression::Reporter;

fn main() {
    let mut rep = Reporter::start("table7_per_image");
    let (table, rows) = tables::table7_per_image();
    println!("== Table VII: per-image edge costs ==\n{table}");
    let cifar = &rows[0].costs;
    let inet = &rows[1].costs;
    // Paper anchors.
    assert!((cifar.ecp_j * 1e3 - 3.14).abs() < 0.05);
    assert!((cifar.ecu_j * 1e3 - 7.12).abs() < 0.1);
    assert!((inet.ecu_j * 1e3 - 349.0).abs() < 3.0);
    // Communication dominates computation for ImageNet-sized images.
    assert!(inet.ecu_j > 10.0 * inet.ecp_j);
    // Modelled constants are invariants; host-measured latencies go in as
    // `_ms` metrics so only a real slowdown trips the CI gate.
    rep.metric("cifar_ecp_mj", cifar.ecp_j * 1e3);
    rep.metric("cifar_ecu_mj", cifar.ecu_j * 1e3);
    rep.metric("imagenet_ecu_mj", inet.ecu_j * 1e3);
    rep.metric("cifar_measured_ms", rows[0].measured_latency_s * 1e3);
    rep.metric("imagenet_measured_ms", rows[1].measured_latency_s * 1e3);
    rep.finish();
}
