//! The MEANet architecture: main block, extension block, adaptive block
//! (paper §III, Fig. 4).

use mea_data::ClassDict;
use mea_metrics::flops::CostSplit;
use mea_metrics::memory::{part_cost, PartCost};
use mea_nn::blocks::{separable_stack, BasicBlock};
use mea_nn::layer::{Layer, Mode, Param};
use mea_nn::layers::{Activation, BatchNorm2d, Conv2d};
use mea_nn::models::{make_head, SegmentSpec, SegmentedCnn};
use mea_nn::Sequential;
use mea_tensor::{Rng, Tensor};

/// How the edge-trained mirror stages are built: the adaptive block's
/// per-segment stages and, for a fresh model-B extension, the bridge stage
/// that maps the merged features down to the extension width.
///
/// The paper describes the adaptive block as *"a light-weight version of
/// the main block"*; [`AdaptivePlan::DepthwiseSeparable`] realises that
/// with MobileNet-style factorised convolutions and is the default.
/// [`AdaptivePlan::DenseMirror`] keeps the original dense 3×3 mirror for
/// comparison — on wide backbones it trains ~9× more parameters than the
/// paper's Table VI reports (MobileNetV2 B: ~6.2M vs the claimed ~1.1M).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdaptivePlan {
    /// One dense `3×3 conv + BN + ReLU` per mirrored stage, and a dense
    /// residual block bridging into a fresh extension.
    DenseMirror,
    /// One `depthwise 3×3 + BN + ReLU + pointwise 1×1 + BN + ReLU` stage
    /// per mirrored segment (and as the fresh-extension bridge) — same
    /// output geometry, ~9× fewer weights per stage.
    #[default]
    DepthwiseSeparable,
}

/// How the adaptive block's features join the main block's features at the
/// extension block input (paper: *"the sum or concatenation of them are used
/// as the inputs to the extension block"*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Merge {
    /// Element-wise sum (same channel count).
    Sum,
    /// Channel concatenation (doubles the extension's input channels).
    Concat,
}

/// How the extension block is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtensionPlan {
    /// Model A: the tail of the pretrained backbone becomes the extension.
    /// Only [`Merge::Sum`] is possible, because the pretrained first tail
    /// layer expects the original channel count.
    FromBackbone,
    /// Model B: a fresh extension of `blocks` residual blocks at `channels`
    /// width is created and trained from scratch at the edge.
    Fresh {
        /// Width of the fresh extension blocks.
        channels: usize,
        /// Number of residual blocks.
        blocks: usize,
    },
}

/// Which MEANet variant to assemble from a backbone (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Model A: the first `main_segments` backbone segments form the main
    /// block; the rest become the extension. A new exit is created for the
    /// main block.
    SplitBackbone {
        /// Number of leading segments kept in the main block.
        main_segments: usize,
    },
    /// Model B: the complete backbone (and its trained exit) is the main
    /// block; the extension is built fresh.
    FullBackbone {
        /// Width of the fresh extension blocks.
        extension_channels: usize,
        /// Number of fresh residual blocks.
        extension_blocks: usize,
    },
}

/// The locally trained blocks, present once hard classes are known.
#[derive(Debug)]
struct EdgeBlocks {
    adaptive: Sequential,
    extension: Sequential,
    exit: Sequential,
    dict: ClassDict,
    plan: AdaptivePlan,
}

/// A MEANet: frozen main block + exit over all classes, and (after
/// [`MeaNet::attach_edge_blocks`]) locally trained adaptive/extension blocks
/// with an exit over hard classes.
#[derive(Debug)]
pub struct MeaNet {
    main: Sequential,
    main_exit: Sequential,
    main_specs: Vec<SegmentSpec>,
    pending_extension: Option<Sequential>, // model A tail awaiting its exit
    plan: ExtensionPlan,
    edge: Option<EdgeBlocks>,
    merge: Merge,
    num_classes: usize,
    in_shape: [usize; 3],
    main_out_channels: usize,
}

impl MeaNet {
    /// Assembles a MEANet from a (typically cloud-pretrained) backbone.
    ///
    /// * Model A ([`Variant::SplitBackbone`]): keeps the first segments as
    ///   the main block, parks the pretrained tail as the future extension
    ///   and creates a *new, untrained* main exit (train it with
    ///   [`crate::train::train_main_exit`]).
    /// * Model B ([`Variant::FullBackbone`]): the whole backbone plus its
    ///   trained head is the main block.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (zero/all segments for model A,
    /// or [`Merge::Concat`] with a pretrained extension).
    pub fn from_backbone(backbone: SegmentedCnn, variant: Variant, merge: Merge, rng: &mut Rng) -> Self {
        let num_classes = backbone.num_classes;
        let in_shape = backbone.in_shape;
        let all_specs = backbone.specs.clone();
        let (segments, head) = backbone.into_parts();
        match variant {
            Variant::SplitBackbone { main_segments } => {
                assert!(
                    main_segments >= 1 && main_segments < segments.len(),
                    "model A needs 1 <= main_segments < {} segments, got {main_segments}",
                    segments.len()
                );
                assert_eq!(
                    merge,
                    Merge::Sum,
                    "model A reuses pretrained tail layers; only Merge::Sum keeps their input width"
                );
                let mut segs = segments;
                let tail_segs = segs.split_off(main_segments);
                let mut main = Sequential::empty();
                for s in segs {
                    main.append(s);
                }
                let mut tail = Sequential::empty();
                for s in tail_segs {
                    tail.append(s);
                }
                let main_specs = all_specs[..main_segments].to_vec();
                let main_out_channels = main_specs.last().expect("at least one segment").out_channels;
                // The fresh model-A exit keeps some spatial information
                // (avg-pool 2×2 → flatten → FC): a global pool over the few
                // early-stage channels would bottleneck a 100-class exit.
                let (_, mo) = main.macs(&in_shape);
                let (c, h, w) = (mo[0], mo[1], mo[2]);
                let (ph, pw) = (h / 2, w / 2);
                let main_exit = Sequential::new(vec![
                    Box::new(mea_nn::layers::AvgPool2d::new(2)) as Box<dyn Layer>,
                    Box::new(mea_nn::layers::Flatten::new()),
                    Box::new(mea_nn::layers::Linear::new(c * ph * pw, num_classes, rng)),
                ]);
                MeaNet {
                    main,
                    main_exit,
                    main_specs,
                    pending_extension: Some(tail),
                    plan: ExtensionPlan::FromBackbone,
                    edge: None,
                    merge,
                    num_classes,
                    in_shape,
                    main_out_channels,
                }
            }
            Variant::FullBackbone { extension_channels, extension_blocks } => {
                assert!(extension_blocks >= 1, "model B needs at least one extension block");
                let mut main = Sequential::empty();
                for s in segments {
                    main.append(s);
                }
                let main_out_channels = all_specs.last().expect("non-empty backbone").out_channels;
                MeaNet {
                    main,
                    main_exit: head,
                    main_specs: all_specs,
                    pending_extension: None,
                    plan: ExtensionPlan::Fresh { channels: extension_channels, blocks: extension_blocks },
                    edge: None,
                    merge,
                    num_classes,
                    in_shape,
                    main_out_channels,
                }
            }
        }
    }

    /// Builds the adaptive block and the extension block + exit for the
    /// given hard classes (Algorithm 1, step 6).
    ///
    /// The adaptive block is a light-weight mirror of the main block: one
    /// stage per main segment, matching that segment's output channels and
    /// downsampling — so its output shape equals the main block's output
    /// shape (paper: *"the adaptive block is a light-weight version of the
    /// main block"*). How each stage is realised — and, for a fresh
    /// model-B extension, how the merged features are bridged down to the
    /// extension width — is governed by `plan`:
    ///
    /// * [`AdaptivePlan::DepthwiseSeparable`] (default): depthwise 3×3 +
    ///   pointwise 1×1 stages, and a separable bridge followed by
    ///   `blocks - 1` residual blocks. This matches the paper's Table VI
    ///   trained-parameter budget (~1.1M for the MobileNetV2 B row).
    /// * [`AdaptivePlan::DenseMirror`]: dense `3×3 conv + BN + ReLU`
    ///   stages, and `blocks` dense residual blocks (the first bridging) —
    ///   the original heavyweight behaviour.
    ///
    /// # Panics
    ///
    /// Panics if edge blocks were already attached.
    pub fn attach_edge_blocks(&mut self, plan: AdaptivePlan, dict: ClassDict, rng: &mut Rng) {
        assert!(self.edge.is_none(), "edge blocks already attached");
        let mut adaptive = Sequential::empty();
        let mut prev_c = self.in_shape[0];
        for spec in &self.main_specs {
            match plan {
                AdaptivePlan::DenseMirror => {
                    adaptive.push(Box::new(Conv2d::new(
                        prev_c,
                        spec.out_channels,
                        3,
                        spec.downsample,
                        1,
                        false,
                        rng,
                    )));
                    adaptive.push(Box::new(BatchNorm2d::new(spec.out_channels)));
                    adaptive.push(Box::new(Activation::relu()));
                }
                AdaptivePlan::DepthwiseSeparable => {
                    adaptive.append(separable_stack(prev_c, spec.out_channels, spec.downsample, rng));
                }
            }
            prev_c = spec.out_channels;
        }

        let merged_channels = match self.merge {
            Merge::Sum => self.main_out_channels,
            Merge::Concat => 2 * self.main_out_channels,
        };
        let (extension, ext_out_channels) = match self.plan {
            ExtensionPlan::FromBackbone => {
                let tail = self.pending_extension.take().expect("model A tail present");
                let (_, out) = tail.macs(&self.main_out_shape());
                (tail, out[0])
            }
            ExtensionPlan::Fresh { channels, blocks } => {
                let mut ext = Sequential::empty();
                match plan {
                    AdaptivePlan::DenseMirror => {
                        ext.push(Box::new(BasicBlock::new(merged_channels, channels, 1, rng)))
                    }
                    // The bridge from the (possibly very wide) merged
                    // features is where a dense extension's parameters
                    // concentrate; under the separable plan it, too, is
                    // factorised.
                    AdaptivePlan::DepthwiseSeparable => {
                        ext.append(separable_stack(merged_channels, channels, 1, rng));
                    }
                }
                for _ in 1..blocks {
                    ext.push(Box::new(BasicBlock::new(channels, channels, 1, rng)));
                }
                (ext, channels)
            }
        };
        let exit = make_head(ext_out_channels, dict.len(), rng);
        self.edge = Some(EdgeBlocks { adaptive, extension, exit, dict, plan });
    }

    // ------------------------------------------------------------ accessors

    /// Total number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Expected input shape `[C, H, W]`.
    pub fn in_shape(&self) -> [usize; 3] {
        self.in_shape
    }

    /// The feature-merge mode.
    pub fn merge(&self) -> Merge {
        self.merge
    }

    /// The hard-class dictionary, once edge blocks are attached.
    pub fn hard_dict(&self) -> Option<&ClassDict> {
        self.edge.as_ref().map(|e| &e.dict)
    }

    /// The [`AdaptivePlan`] the edge blocks were built with, once attached.
    pub fn adaptive_plan(&self) -> Option<AdaptivePlan> {
        self.edge.as_ref().map(|e| e.plan)
    }

    /// Parameters trained at the edge (adaptive + extension + exit) — the
    /// Table VI "trained" column, without computing the full
    /// [`MeaNet::cost_split`].
    ///
    /// # Panics
    ///
    /// Panics if edge blocks are not attached.
    pub fn trained_params(&self) -> u64 {
        let edge = self.edge.as_ref().expect("edge blocks not attached");
        (edge.adaptive.param_count() + edge.extension.param_count() + edge.exit.param_count()) as u64
    }

    /// Parameters of the frozen main block + exit — the Table VI "fixed"
    /// column. Available before edge blocks are attached (model A counts
    /// its parked tail as pending-extension, not fixed).
    pub fn fixed_params(&self) -> u64 {
        (self.main.param_count() + self.main_exit.param_count()) as u64
    }

    /// `IsHard` from the paper: whether a *predicted* class is hard.
    ///
    /// # Panics
    ///
    /// Panics if edge blocks are not attached.
    pub fn is_hard(&self, class: usize) -> bool {
        self.hard_dict().expect("edge blocks not attached").contains(class)
    }

    /// Output shape `[C, H, W]` of the main block for one image.
    pub fn main_out_shape(&self) -> Vec<usize> {
        let (_, out) = self.main.macs(&self.in_shape);
        out
    }

    // -------------------------------------------------------- forward paths

    /// Runs the main block, returning its feature maps `F`.
    pub fn main_features(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.main.forward(x, mode)
    }

    /// Runs the main exit on precomputed features, returning `ŷ1` logits
    /// over all classes.
    pub fn main_logits_from(&mut self, features: &Tensor, mode: Mode) -> Tensor {
        self.main_exit.forward(features, mode)
    }

    /// Convenience: main block + main exit in one call.
    pub fn main_logits(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let f = self.main_features(x, mode);
        self.main_logits_from(&f, mode)
    }

    /// Runs the adaptive + extension path, returning `ŷ2` logits over the
    /// hard classes. `features` must be the main block's output for the
    /// same `x`.
    ///
    /// # Panics
    ///
    /// Panics if edge blocks are not attached or feature shapes disagree.
    pub fn extension_logits(&mut self, x: &Tensor, features: &Tensor, mode: Mode) -> Tensor {
        let merge = self.merge;
        let edge = self.edge.as_mut().expect("edge blocks not attached");
        let f2 = edge.adaptive.forward(x, mode);
        assert_eq!(
            f2.dims(),
            features.dims(),
            "adaptive output {:?} must match main features {:?}",
            f2.dims(),
            features.dims()
        );
        let merged = match merge {
            Merge::Sum => features.add(&f2),
            Merge::Concat => Tensor::concat_channels(features, &f2),
        };
        let feats = edge.extension.forward(&merged, mode);
        edge.exit.forward(&feats, mode)
    }

    // ------------------------------------------------------- backward paths

    /// Backpropagates a main-exit logits gradient through the main exit and
    /// the main block (used only during cloud-side pretraining).
    pub fn main_backward(&mut self, grad_logits: &Tensor) {
        let g = self.main_exit.backward(grad_logits);
        let _ = self.main.backward(&g);
    }

    /// Backpropagates a main-exit logits gradient through the exit only
    /// (main block frozen) — for fitting a fresh model-A exit.
    pub fn main_exit_backward(&mut self, grad_logits: &Tensor) {
        let _ = self.main_exit.backward(grad_logits);
    }

    /// Backpropagates an extension-exit logits gradient through the exit,
    /// the extension block and — via the merge — the adaptive block. The
    /// gradient flowing toward the frozen main block is discarded, exactly
    /// as in blockwise optimisation.
    ///
    /// # Panics
    ///
    /// Panics if edge blocks are not attached.
    pub fn edge_backward(&mut self, grad_logits: &Tensor) {
        let merge = self.merge;
        let main_c = self.main_out_channels;
        let edge = self.edge.as_mut().expect("edge blocks not attached");
        let g = edge.exit.backward(grad_logits);
        let g = edge.extension.backward(&g);
        let g_f2 = match merge {
            Merge::Sum => g,
            Merge::Concat => channel_slice(&g, main_c, 2 * main_c),
        };
        let _ = edge.adaptive.backward(&g_f2);
    }

    /// Joint-optimisation variant of [`MeaNet::edge_backward`]: the gradient
    /// flowing toward the main block's features is *not* discarded but
    /// propagated through the main block (which must have run its forward in
    /// training mode). Used only by the Fig. 6 joint baseline.
    ///
    /// # Panics
    ///
    /// Panics if edge blocks are not attached.
    pub fn edge_backward_joint(&mut self, grad_logits: &Tensor) {
        let merge = self.merge;
        let main_c = self.main_out_channels;
        let edge = self.edge.as_mut().expect("edge blocks not attached");
        let g = edge.exit.backward(grad_logits);
        let g = edge.extension.backward(&g);
        let (g_f, g_f2) = match merge {
            Merge::Sum => (g.clone(), g),
            Merge::Concat => (channel_slice(&g, 0, main_c), channel_slice(&g, main_c, 2 * main_c)),
        };
        let _ = edge.adaptive.backward(&g_f2);
        let _ = self.main.backward(&g_f);
    }

    // ---------------------------------------------------- parameter access

    /// Visits the parameters of the main block and its exit (cloud-trained).
    pub fn visit_main_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(f);
        self.main_exit.visit_params(f);
    }

    /// Visits the parameters of the main exit only.
    pub fn visit_main_exit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.main_exit.visit_params(f);
    }

    /// Visits the parameters of the adaptive/extension blocks and their
    /// exit (edge-trained).
    ///
    /// # Panics
    ///
    /// Panics if edge blocks are not attached.
    pub fn visit_edge_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        let edge = self.edge.as_mut().expect("edge blocks not attached");
        edge.adaptive.visit_params(f);
        edge.extension.visit_params(f);
        edge.exit.visit_params(f);
    }

    /// Visits every parameter (for joint-optimisation baselines).
    pub fn visit_all_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(f);
        self.main_exit.visit_params(f);
        if let Some(edge) = &mut self.edge {
            edge.adaptive.visit_params(f);
            edge.extension.visit_params(f);
            edge.exit.visit_params(f);
        }
    }

    /// Clears cached activations everywhere.
    pub fn clear_caches(&mut self) {
        self.main.clear_cache();
        self.main_exit.clear_cache();
        if let Some(edge) = &mut self.edge {
            edge.adaptive.clear_cache();
            edge.extension.clear_cache();
            edge.exit.clear_cache();
        }
    }

    // --------------------------------------------------------- introspection

    /// Table VI's fixed-vs-trained split: the frozen main block (+ exit) is
    /// "fixed"; adaptive, extension and its exit are "trained".
    ///
    /// # Panics
    ///
    /// Panics if edge blocks are not attached.
    pub fn cost_split(&self) -> CostSplit {
        let edge = self.edge.as_ref().expect("edge blocks not attached");
        let mut split = CostSplit::new();
        let main_out = split.add(&self.main, &self.in_shape, true);
        let _ = split.add(&self.main_exit, &main_out, true);
        let adaptive_out = split.add(&edge.adaptive, &self.in_shape, false);
        let merged = match self.merge {
            Merge::Sum => adaptive_out,
            Merge::Concat => vec![2 * adaptive_out[0], adaptive_out[1], adaptive_out[2]],
        };
        let ext_out = split.add(&edge.extension, &merged, false);
        let _ = split.add(&edge.exit, &ext_out, false);
        split
    }

    // ------------------------------------------------------------ deployment

    /// Snapshots the main block and its exit — what the cloud "downloads to
    /// the edge" in Algorithm 1, step 4. Pair it with the hard-class
    /// [`ClassDict`] to complete the paper's deployment bundle.
    pub fn main_state_dict(&mut self) -> mea_nn::StateDict {
        let mut both = Sequential::empty();
        // Temporarily chain main + exit so one dict covers both, then
        // restore. (Sequential::append moves layers; we move them back.)
        std::mem::swap(&mut both, &mut self.main);
        let main_len = both.len();
        let mut exit = Sequential::empty();
        std::mem::swap(&mut exit, &mut self.main_exit);
        both.append(exit);
        let dict = mea_nn::StateDict::from_layer(&mut both);
        let tail = both.split_off(main_len);
        self.main = both;
        self.main_exit = tail;
        dict
    }

    /// Restores a snapshot produced by [`MeaNet::main_state_dict`] into
    /// this network's main block and exit (architectures must match).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`mea_nn::StateDictError`] on count or shape
    /// mismatch; the model is unchanged on error.
    pub fn load_main_state_dict(&mut self, dict: &mea_nn::StateDict) -> Result<(), mea_nn::StateDictError> {
        let mut both = Sequential::empty();
        std::mem::swap(&mut both, &mut self.main);
        let main_len = both.len();
        let mut exit = Sequential::empty();
        std::mem::swap(&mut exit, &mut self.main_exit);
        both.append(exit);
        let result = dict.apply_to_layer(&mut both);
        let tail = both.split_off(main_len);
        self.main = both;
        self.main_exit = tail;
        result
    }

    /// Snapshots the locally trained blocks (adaptive, extension, exit) —
    /// together with [`MeaNet::main_state_dict`] this captures the whole
    /// deployed model, which is how the serving runtime replicates one
    /// trained MEANet bitwise-identically onto every edge worker.
    ///
    /// # Panics
    ///
    /// Panics if edge blocks are not attached.
    pub fn edge_state_dict(&mut self) -> mea_nn::StateDict {
        let edge = self.edge.as_mut().expect("edge blocks not attached");
        let mut chain = Sequential::empty();
        std::mem::swap(&mut chain, &mut edge.adaptive);
        let adaptive_len = chain.len();
        let mut ext = Sequential::empty();
        std::mem::swap(&mut ext, &mut edge.extension);
        chain.append(ext);
        let ext_end = chain.len();
        let mut exit = Sequential::empty();
        std::mem::swap(&mut exit, &mut edge.exit);
        chain.append(exit);
        let dict = mea_nn::StateDict::from_layer(&mut chain);
        let mut tail = chain.split_off(adaptive_len);
        edge.adaptive = chain;
        let exit_part = tail.split_off(ext_end - adaptive_len);
        edge.extension = tail;
        edge.exit = exit_part;
        dict
    }

    /// Restores a snapshot produced by [`MeaNet::edge_state_dict`] into
    /// this network's edge blocks (architectures must match).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`mea_nn::StateDictError`] on count or shape
    /// mismatch; the model is unchanged on error.
    ///
    /// # Panics
    ///
    /// Panics if edge blocks are not attached.
    pub fn load_edge_state_dict(&mut self, dict: &mea_nn::StateDict) -> Result<(), mea_nn::StateDictError> {
        let edge = self.edge.as_mut().expect("edge blocks not attached");
        let mut chain = Sequential::empty();
        std::mem::swap(&mut chain, &mut edge.adaptive);
        let adaptive_len = chain.len();
        let mut ext = Sequential::empty();
        std::mem::swap(&mut ext, &mut edge.extension);
        chain.append(ext);
        let ext_end = chain.len();
        let mut exit = Sequential::empty();
        std::mem::swap(&mut exit, &mut edge.exit);
        chain.append(exit);
        let result = dict.apply_to_layer(&mut chain);
        let mut tail = chain.split_off(adaptive_len);
        edge.adaptive = chain;
        let exit_part = tail.split_off(ext_end - adaptive_len);
        edge.extension = tail;
        edge.exit = exit_part;
        result
    }

    /// Copies every trained weight (main + edge) into `other`, which must
    /// have been assembled with identical architecture choices — the
    /// replication step that gives each serving worker its own model.
    ///
    /// # Panics
    ///
    /// Panics on architecture mismatch or missing edge blocks on either
    /// side.
    pub fn replicate_into(&mut self, other: &mut MeaNet) {
        let main = self.main_state_dict();
        other.load_main_state_dict(&main).expect("replica main architecture matches");
        let edge = self.edge_state_dict();
        other.load_edge_state_dict(&edge).expect("replica edge architecture matches");
    }

    /// Memory-model parts for Fig. 6: `(frozen, trained)` under blockwise
    /// training.
    ///
    /// # Panics
    ///
    /// Panics if edge blocks are not attached.
    pub fn memory_parts(&self) -> (Vec<PartCost>, Vec<PartCost>) {
        let edge = self.edge.as_ref().expect("edge blocks not attached");
        let main_out = self.main_out_shape();
        let frozen = vec![part_cost(&self.main, &self.in_shape), part_cost(&self.main_exit, &main_out)];
        let merged = match self.merge {
            Merge::Sum => main_out.clone(),
            Merge::Concat => vec![2 * main_out[0], main_out[1], main_out[2]],
        };
        let (_, ext_out) = edge.extension.macs(&merged);
        let trained = vec![
            part_cost(&edge.adaptive, &self.in_shape),
            part_cost(&edge.extension, &merged),
            part_cost(&edge.exit, &ext_out),
        ];
        (frozen, trained)
    }
}

/// Extracts channels `[from, to)` of an `[N, C, H, W]` tensor.
fn channel_slice(x: &Tensor, from: usize, to: usize) -> Tensor {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    assert!(from < to && to <= c, "invalid channel slice [{from}, {to}) of {c}");
    let plane = h * w;
    let width = to - from;
    let mut out = Tensor::zeros([n, width, h, w]);
    let src = x.as_slice();
    let dst = out.as_mut_slice();
    for img in 0..n {
        let s = (img * c + from) * plane;
        let d = img * width * plane;
        dst[d..d + width * plane].copy_from_slice(&src[s..s + width * plane]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mea_nn::models::{resnet_cifar, CifarResNetConfig};

    fn tiny_backbone(classes: usize, rng: &mut Rng) -> SegmentedCnn {
        let mut cfg = CifarResNetConfig::repro_scale(classes);
        cfg.input_hw = 8;
        resnet_cifar(&cfg, rng)
    }

    #[test]
    fn model_b_forward_paths_have_expected_shapes() {
        let mut rng = Rng::new(0);
        let backbone = tiny_backbone(6, &mut rng);
        let mut net = MeaNet::from_backbone(
            backbone,
            Variant::FullBackbone { extension_channels: 16, extension_blocks: 2 },
            Merge::Sum,
            &mut rng,
        );
        net.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, ClassDict::new(&[1, 3, 5]), &mut rng);
        let x = Tensor::randn([2, 3, 8, 8], 1.0, &mut rng);
        let f = net.main_features(&x, Mode::Eval);
        assert_eq!(f.dims(), &[2, 32, 2, 2]);
        let y1 = net.main_logits_from(&f, Mode::Eval);
        assert_eq!(y1.dims(), &[2, 6]);
        let y2 = net.extension_logits(&x, &f, Mode::Eval);
        assert_eq!(y2.dims(), &[2, 3]); // hard classes only
    }

    #[test]
    fn model_a_split_keeps_pretrained_tail() {
        let mut rng = Rng::new(1);
        let backbone = tiny_backbone(6, &mut rng);
        let mut net =
            MeaNet::from_backbone(backbone, Variant::SplitBackbone { main_segments: 2 }, Merge::Sum, &mut rng);
        // Main output after 2 segments: 8 channels at full resolution.
        assert_eq!(net.main_out_shape(), vec![8, 8, 8]);
        net.attach_edge_blocks(AdaptivePlan::DenseMirror, ClassDict::new(&[0, 2]), &mut rng);
        let x = Tensor::randn([1, 3, 8, 8], 1.0, &mut rng);
        let f = net.main_features(&x, Mode::Eval);
        let y1 = net.main_logits_from(&f, Mode::Eval);
        assert_eq!(y1.dims(), &[1, 6]);
        let y2 = net.extension_logits(&x, &f, Mode::Eval);
        assert_eq!(y2.dims(), &[1, 2]);
    }

    #[test]
    fn replicate_into_makes_a_bitwise_identical_worker() {
        let mut rng_a = Rng::new(7);
        let backbone_a = tiny_backbone(6, &mut rng_a);
        let mut a = MeaNet::from_backbone(
            backbone_a,
            Variant::FullBackbone { extension_channels: 16, extension_blocks: 2 },
            Merge::Sum,
            &mut rng_a,
        );
        a.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, ClassDict::new(&[1, 3, 5]), &mut rng_a);

        // Same architecture, different weights (different seed).
        let mut rng_b = Rng::new(8);
        let backbone_b = tiny_backbone(6, &mut rng_b);
        let mut b = MeaNet::from_backbone(
            backbone_b,
            Variant::FullBackbone { extension_channels: 16, extension_blocks: 2 },
            Merge::Sum,
            &mut rng_b,
        );
        b.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, ClassDict::new(&[1, 3, 5]), &mut rng_b);

        let mut probe = Rng::new(9);
        let x = Tensor::randn([3, 3, 8, 8], 1.0, &mut probe);
        let fa = a.main_features(&x, Mode::Eval);
        let fb = b.main_features(&x, Mode::Eval);
        assert_ne!(fa, fb, "different seeds should give different weights");

        a.replicate_into(&mut b);
        let fa = a.main_features(&x, Mode::Eval);
        let fb = b.main_features(&x, Mode::Eval);
        assert_eq!(fa, fb, "replicated main block must match bitwise");
        let ya = a.extension_logits(&x, &fa, Mode::Eval);
        let yb = b.extension_logits(&x, &fb, Mode::Eval);
        assert_eq!(ya, yb, "replicated edge blocks must match bitwise");
        let la = a.main_logits_from(&fa, Mode::Eval);
        let lb = b.main_logits_from(&fb, Mode::Eval);
        assert_eq!(la, lb, "replicated main exit must match bitwise");
    }

    #[test]
    fn edge_state_dict_round_trips_through_restore() {
        let mut rng = Rng::new(11);
        let backbone = tiny_backbone(4, &mut rng);
        let mut net = MeaNet::from_backbone(
            backbone,
            Variant::FullBackbone { extension_channels: 8, extension_blocks: 1 },
            Merge::Sum,
            &mut rng,
        );
        net.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, ClassDict::new(&[0, 1]), &mut rng);
        let before = net.edge_state_dict();
        // Perturb, restore, snapshot again: must equal the original.
        net.visit_edge_params(&mut |p| p.value.map_inplace(|v| v + 1.0));
        let perturbed = net.edge_state_dict();
        assert_ne!(before, perturbed);
        net.load_edge_state_dict(&before).expect("matching architecture");
        assert_eq!(net.edge_state_dict(), before);
        // The block structure survived the chain/split dance.
        let x = Tensor::randn([1, 3, 8, 8], 1.0, &mut rng);
        let f = net.main_features(&x, Mode::Eval);
        assert_eq!(net.extension_logits(&x, &f, Mode::Eval).dims(), &[1, 2]);
    }

    #[test]
    fn concat_merge_doubles_extension_input() {
        let mut rng = Rng::new(2);
        let backbone = tiny_backbone(4, &mut rng);
        let mut net = MeaNet::from_backbone(
            backbone,
            Variant::FullBackbone { extension_channels: 8, extension_blocks: 1 },
            Merge::Concat,
            &mut rng,
        );
        net.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, ClassDict::new(&[0, 1]), &mut rng);
        let x = Tensor::randn([2, 3, 8, 8], 1.0, &mut rng);
        let f = net.main_features(&x, Mode::Eval);
        let y2 = net.extension_logits(&x, &f, Mode::Eval);
        assert_eq!(y2.dims(), &[2, 2]);
        // Trained MACs must exceed the Sum variant's (wider first block).
        let split = net.cost_split();
        assert!(split.trained_macs > 0);
    }

    #[test]
    #[should_panic(expected = "only Merge::Sum")]
    fn model_a_with_concat_is_rejected() {
        let mut rng = Rng::new(3);
        let backbone = tiny_backbone(4, &mut rng);
        let _ =
            MeaNet::from_backbone(backbone, Variant::SplitBackbone { main_segments: 2 }, Merge::Concat, &mut rng);
    }

    #[test]
    fn edge_training_leaves_main_untouched() {
        let mut rng = Rng::new(4);
        let backbone = tiny_backbone(4, &mut rng);
        let mut net = MeaNet::from_backbone(
            backbone,
            Variant::FullBackbone { extension_channels: 8, extension_blocks: 1 },
            Merge::Sum,
            &mut rng,
        );
        net.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, ClassDict::new(&[1, 2]), &mut rng);
        let mut main_before = Vec::new();
        net.visit_main_params(&mut |p| main_before.push(p.value.clone()));

        // One edge training step: forward train on edge path, backward, SGD.
        let x = Tensor::randn([4, 3, 8, 8], 1.0, &mut rng);
        let f = net.main_features(&x, Mode::Eval); // frozen main: eval mode
        let y2 = net.extension_logits(&x, &f, Mode::Train);
        let loss = mea_nn::CrossEntropyLoss::new().forward(&y2, &[0, 1, 0, 1]);
        net.edge_backward(&loss.grad);
        let mut opt = mea_nn::Sgd::new(0.1, 0.9, 0.0);
        opt.step_with(&mut |f| net.visit_edge_params(f));

        let mut main_after = Vec::new();
        net.visit_main_params(&mut |p| main_after.push(p.value.clone()));
        assert_eq!(main_before, main_after, "frozen main block changed during edge training");

        // And the edge blocks did change.
        let mut edge_grad_norm = 0.0;
        net.visit_edge_params(&mut |p| edge_grad_norm += p.grad.sq_norm());
        assert!(edge_grad_norm > 0.0, "edge gradients all zero");
    }

    #[test]
    fn channel_slice_extracts_second_half() {
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[2, 2, 2, 2]).unwrap();
        let s = channel_slice(&x, 1, 2);
        assert_eq!(s.dims(), &[2, 1, 2, 2]);
        assert_eq!(s.as_slice(), &[4.0, 5.0, 6.0, 7.0, 12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn main_state_dict_round_trips_across_instances() {
        let mut rng = Rng::new(6);
        let backbone = tiny_backbone(6, &mut rng);
        let mut src = MeaNet::from_backbone(
            backbone,
            Variant::FullBackbone { extension_channels: 8, extension_blocks: 1 },
            Merge::Sum,
            &mut rng,
        );
        let dict = src.main_state_dict();

        // A differently initialised twin receives the download.
        let mut rng2 = Rng::new(1234);
        let backbone2 = tiny_backbone(6, &mut rng2);
        let mut dst = MeaNet::from_backbone(
            backbone2,
            Variant::FullBackbone { extension_channels: 8, extension_blocks: 1 },
            Merge::Sum,
            &mut rng2,
        );
        dst.load_main_state_dict(&dict).unwrap();
        let x = Tensor::randn([2, 3, 8, 8], 1.0, &mut rng);
        let a = src.main_logits(&x, Mode::Eval);
        let b = dst.main_logits(&x, Mode::Eval);
        assert_eq!(a, b, "downloaded main block must reproduce the cloud's logits");
    }

    #[test]
    fn state_dict_survives_encode_decode_and_net_still_works() {
        let mut rng = Rng::new(7);
        let backbone = tiny_backbone(4, &mut rng);
        let mut net = MeaNet::from_backbone(
            backbone,
            Variant::FullBackbone { extension_channels: 8, extension_blocks: 1 },
            Merge::Sum,
            &mut rng,
        );
        let x = Tensor::randn([1, 3, 8, 8], 1.0, &mut rng);
        let before = net.main_logits(&x, Mode::Eval);
        let dict = net.main_state_dict();
        // Capturing must not perturb the live network.
        let after = net.main_logits(&x, Mode::Eval);
        assert_eq!(before, after);
        let decoded = mea_nn::StateDict::decode(dict.encode()).unwrap();
        assert_eq!(decoded, dict);
    }

    #[test]
    fn cost_split_partitions_all_params() {
        let mut rng = Rng::new(5);
        let backbone = tiny_backbone(6, &mut rng);
        let mut net = MeaNet::from_backbone(
            backbone,
            Variant::FullBackbone { extension_channels: 16, extension_blocks: 2 },
            Merge::Sum,
            &mut rng,
        );
        net.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, ClassDict::new(&[0, 1, 2]), &mut rng);
        let split = net.cost_split();
        let mut visited = 0u64;
        net.visit_all_params(&mut |p| visited += p.numel() as u64);
        assert_eq!(split.total_params(), visited);
        assert!(split.fixed_params > 0 && split.trained_params > 0);
    }

    /// Builds one model-A (split ResNet) and one model-B (MobileNetV2) net
    /// under the given plan, with edge blocks attached.
    fn nets_under(plan: AdaptivePlan) -> Vec<MeaNet> {
        let mut rng = Rng::new(42);
        let resnet = tiny_backbone(6, &mut rng);
        let mut a =
            MeaNet::from_backbone(resnet, Variant::SplitBackbone { main_segments: 2 }, Merge::Sum, &mut rng);
        a.attach_edge_blocks(plan, ClassDict::new(&[0, 2, 4]), &mut rng);
        let mobilenet = mea_nn::models::mobilenet_v2_lite(6, &mut rng);
        let mut b = MeaNet::from_backbone(
            mobilenet,
            Variant::FullBackbone { extension_channels: 16, extension_blocks: 2 },
            Merge::Sum,
            &mut rng,
        );
        b.attach_edge_blocks(plan, ClassDict::new(&[1, 3, 5]), &mut rng);
        vec![a, b]
    }

    #[test]
    fn trained_params_agree_with_cost_split_for_both_plans() {
        for plan in [AdaptivePlan::DenseMirror, AdaptivePlan::DepthwiseSeparable] {
            for net in nets_under(plan) {
                assert_eq!(net.adaptive_plan(), Some(plan));
                let split = net.cost_split();
                assert_eq!(net.trained_params(), split.trained_params, "{plan:?}");
                assert_eq!(net.fixed_params(), split.fixed_params, "{plan:?}");
            }
        }
    }

    #[test]
    fn separable_plan_is_lighter_and_geometry_compatible() {
        let dense = nets_under(AdaptivePlan::DenseMirror);
        let separable = nets_under(AdaptivePlan::DepthwiseSeparable);
        let mut rng = Rng::new(43);
        for (mut d, mut s) in dense.into_iter().zip(separable) {
            assert!(
                s.trained_params() < d.trained_params(),
                "separable ({}) must train fewer params than dense ({})",
                s.trained_params(),
                d.trained_params()
            );
            // Same fixed side, and the lighter edge path still produces
            // hard-class logits of the same shape.
            assert_eq!(s.fixed_params(), d.fixed_params());
            let hw = s.in_shape()[1];
            let x = Tensor::randn([2, 3, hw, hw], 1.0, &mut rng);
            let fd = d.main_features(&x, Mode::Eval);
            let fs = s.main_features(&x, Mode::Eval);
            let yd = d.extension_logits(&x, &fd, Mode::Eval);
            let ys = s.extension_logits(&x, &fs, Mode::Eval);
            assert_eq!(yd.dims(), ys.dims());
        }
    }

    #[test]
    fn separable_adaptive_params_match_closed_form() {
        // MobileNetV2 repro backbone, model B: the adaptive side of
        // `trained_params()` must equal the separable formula
        // Σ (9·in + 2·in + in·out + 2·out) over mirrored segments, and the
        // extension bridge the same formula at stride 1, + residual blocks
        // + exit.
        let mut rng = Rng::new(44);
        let cfg = mea_nn::models::MobileNetConfig::repro_scale(6);
        let backbone = mea_nn::models::mobilenet_v2(&cfg, &mut rng);
        let specs = backbone.specs.clone();
        let mut net = MeaNet::from_backbone(
            backbone,
            Variant::FullBackbone { extension_channels: 16, extension_blocks: 2 },
            Merge::Sum,
            &mut rng,
        );
        net.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, ClassDict::new(&[0, 1, 2]), &mut rng);
        let sep = |i: usize, o: usize| 9 * i + 2 * i + i * o + 2 * o;
        let mut expect = 0usize;
        let mut prev = 3usize;
        for s in &specs {
            expect += sep(prev, s.out_channels);
            prev = s.out_channels;
        }
        expect += sep(cfg.last_channels, 16); // bridge into the fresh extension
        expect += 2 * (16 * 16 * 9) + 2 * (2 * 16); // one residual block at width 16
        expect += 16 * 3 + 3; // exit head over 3 hard classes
        assert_eq!(net.trained_params(), expect as u64);
    }
}
