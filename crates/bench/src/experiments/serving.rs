//! Serving-runtime throughput/latency-under-load experiment: the online
//! multi-worker runtime (`mea_edgecloud::serve`) under saturating traffic
//! at a high offload fraction, scaling the cloud tier.

use crate::scale::Scale;
use mea_data::synth::generate;
use mea_data::{ClassDict, Dataset};
use mea_edgecloud::device::DeviceProfile;
use mea_edgecloud::fleet::{ComputeTier, DeviceClass, FleetSpec};
use mea_edgecloud::governor::{AccuracyModel, ControlPoint, SlaTarget};
use mea_edgecloud::network::{LinkEstimate, NetworkLink, PaceChange, PipeConfig, TransportKind};
use mea_edgecloud::partition::{CutPlanner, Objective, PartitionEnv};
use mea_edgecloud::serve::{
    trace_requests, try_serve, CloudIngress, ControlPlan, CutPlannerConfig, CutSelection, EdgeReplica,
    FeatureConfig, FeatureWire, Fleet, LinkChange, LinkFeedback, PayloadPlan, ServeConfig, ServeReport,
    ServeRequest, WireFormat, RESPONSE_WIRE_BYTES,
};
use mea_edgecloud::traces::ArrivalModel;
use mea_metrics::{Histogram, StreamingHistogram};
use mea_nn::models::{resnet_cifar, CifarResNetConfig, SegmentedCnn};
use mea_tensor::Rng;
use meanet::infer::run_inference_with_policy;
use meanet::model::{AdaptivePlan, MeaNet, Merge, Variant};
use meanet::{Difficulty, DifficultyPredictor, ExitPoint, InstanceRecord, OffloadPolicy};
use std::collections::HashMap;

/// One serving configuration's measurements.
#[derive(Debug, Clone)]
pub struct ServingRow {
    /// Cloud workers used.
    pub cloud_workers: usize,
    /// Requests served per second of wall clock.
    pub throughput_hz: f64,
    /// Mean wall-clock service time per request (ms) — `1e3 / throughput`.
    pub service_ms: f64,
    /// Median end-to-end latency (ms).
    pub p50_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Fraction of requests classified by the cloud.
    pub achieved_beta: f64,
    /// Batched cloud forwards executed.
    pub cloud_batches: u64,
    /// Largest coalesced batch.
    pub max_batch_seen: usize,
}

/// Everything the bench target needs to assert and report.
#[derive(Debug)]
pub struct ServingResult {
    /// One row per cloud-worker count, in sweep order (saturating load —
    /// arrivals all due at t=0, so quantiles track the makespan).
    pub rows: Vec<ServingRow>,
    /// A paced run at moderate load with the full cloud tier: latencies
    /// are dominated by the (precise) link-model sleeps plus service, so
    /// its p50/p95/p99 are stable enough to gate in CI.
    pub paced: ServingRow,
    /// The sequential offline sweep's records (ground truth).
    pub offline: Vec<InstanceRecord>,
    /// Each serving run's records: the sweep rows, then the paced run.
    pub served: Vec<Vec<InstanceRecord>>,
}

/// A tiny untrained MEANet (shared by the serving experiments and the
/// measured Table I row).
pub(crate) fn edge_replica(seed: u64, hard: &[usize]) -> MeaNet {
    let mut rng = Rng::new(seed);
    let mut cfg = CifarResNetConfig::repro_scale(6);
    cfg.input_hw = 8;
    let backbone = resnet_cifar(&cfg, &mut rng);
    let mut net = MeaNet::from_backbone(
        backbone,
        Variant::FullBackbone { extension_channels: 8, extension_blocks: 1 },
        Merge::Sum,
        &mut rng,
    );
    net.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, ClassDict::new(hard), &mut rng);
    net
}

/// The matching tiny cloud DNN replica builder.
pub(crate) fn cloud_replica(seed: u64) -> SegmentedCnn {
    let mut rng = Rng::new(seed);
    let mut cfg = CifarResNetConfig::repro_scale(6);
    cfg.input_hw = 8;
    cfg.blocks_per_stage = 3;
    cfg.channels = [16, 24, 32];
    resnet_cifar(&cfg, &mut rng)
}

/// Picks an entropy threshold that offloads roughly `beta` of the data
/// (quantile of the main-exit entropies on the same instances).
pub(crate) fn high_offload_policy(net: &mut MeaNet, data: &Dataset, beta: f64) -> OffloadPolicy {
    let probe = meanet::infer::run_inference(net, None, data, &meanet::infer::InferenceConfig::edge_only(16));
    let entropies: Vec<f32> = probe.iter().map(|r| r.entropy).collect();
    OffloadPolicy::budgeted_from_validation(&entropies, beta)
}

/// Runs the cloud-worker scaling sweep: saturating arrivals (everything
/// due at t=0), a WiFi-class link model on the offload path (so extra
/// cloud workers overlap upload/RTT like concurrent in-flight RPCs), and
/// the same policy/instances for every configuration.
pub fn serving_throughput(scale: Scale) -> ServingResult {
    let instances = match scale {
        Scale::Smoke => 96,
        Scale::Repro | Scale::Full => 384,
    };
    let mut data_cfg = scale.cifar100_like(4201);
    data_cfg.num_classes = 6;
    data_cfg.num_clusters = 3;
    data_cfg.image_hw = 8;
    data_cfg.test_per_class = instances / 6 + 1;
    let bundle = generate(&data_cfg);
    let data = bundle.test.subset(&(0..instances.min(bundle.test.len())).collect::<Vec<_>>());

    let hard = [0usize, 2, 4];
    let mut probe_net = edge_replica(31, &hard);
    let policy = high_offload_policy(&mut probe_net, &data, 0.8);

    // Ground truth: the sequential offline sweep.
    let mut offline_net = edge_replica(31, &hard);
    let mut offline_cloud = cloud_replica(32);
    let offline = run_inference_with_policy(&mut offline_net, Some(&mut offline_cloud), &data, policy, 16);

    let mut rng = Rng::new(7);
    let requests: Vec<ServeRequest> =
        trace_requests(&data, 8, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);

    let mut rows = Vec::new();
    let mut served = Vec::new();
    for cloud_workers in [1usize, 2, 4] {
        let edge_workers = 2;
        let mut edges: Vec<EdgeReplica> =
            (0..edge_workers).map(|_| EdgeReplica::new(edge_replica(31, &hard))).collect();
        let mut clouds: Vec<SegmentedCnn> = (0..cloud_workers).map(|_| cloud_replica(32)).collect();
        let mut cfg = ServeConfig::new(policy, edge_workers, cloud_workers, 4);
        cfg.queue_depth = 8;
        // A WiFi-class uplink with a 10 ms RTT: each coalesced batch pays
        // its upload plus one round trip in real wall-clock time, so the
        // cloud tier scales by overlapping in-flight batches even when
        // host cores are scarce.
        cfg.link = Some(NetworkLink::wifi(50.0).with_rtt(0.010));
        let report = try_serve(&cfg, &mut edges, &mut clouds, &requests).expect("valid serving configuration");
        rows.push(row_from(cloud_workers, &report));
        served.push(report.records);
    }

    // Paced latency profile: each of the 8 devices offers a frame every
    // 16 ms (aggregate ~500 req/s, comfortably under the 4-worker
    // capacity), so end-to-end latency reflects service + batching + link
    // rather than the saturation backlog.
    let mut edges: Vec<EdgeReplica> = (0..2).map(|_| EdgeReplica::new(edge_replica(31, &hard))).collect();
    let mut clouds: Vec<SegmentedCnn> = (0..4).map(|_| cloud_replica(32)).collect();
    let mut cfg = ServeConfig::new(policy, 2, 4, 4);
    cfg.queue_depth = 8;
    cfg.max_wait = std::time::Duration::from_millis(1);
    cfg.link = Some(NetworkLink::wifi(50.0).with_rtt(0.010));
    let paced_requests = trace_requests(&data, 8, &ArrivalModel::Uniform { interval_s: 0.016 }, &mut rng);
    let report = try_serve(&cfg, &mut edges, &mut clouds, &paced_requests).expect("valid serving configuration");
    let paced = row_from(4, &report);
    // The paced trace interleaves devices by arrival time; map records
    // back to dataset order (instance = seq · devices + device) so they
    // compare directly against the offline sweep.
    let mut ordered = report.records.clone();
    for (k, req) in paced_requests.iter().enumerate() {
        ordered[req.seq * 8 + req.device] = report.records[k];
    }
    served.push(ordered);

    ServingResult { rows, paced, offline, served }
}

/// One payload mode's measurements from the feature-payload experiment.
#[derive(Debug, Clone)]
pub struct PayloadModeRow {
    /// Human-readable mode name.
    pub mode: &'static str,
    /// Bytes the cloud tier received.
    pub bytes_to_cloud: u64,
    /// Response bytes sent back down.
    pub bytes_from_cloud: u64,
    /// MACs the cloud tier executed.
    pub cloud_macs: u64,
    /// MACs the cloud tier skipped thanks to edge prefix execution.
    pub cloud_macs_saved: u64,
    /// Mean wall-clock service time per request (ms).
    pub service_ms: f64,
    /// The cut layer (image modes have none).
    pub cut: Option<usize>,
    /// Records produced by the run, in input order.
    pub records: Vec<InstanceRecord>,
}

/// Everything the `feature_payload` bench target asserts and reports.
#[derive(Debug)]
pub struct FeaturePayloadResult {
    /// Raw-image upload (the paper's 1-byte-per-pixel baseline).
    pub image_raw: PayloadModeRow,
    /// f32 activations at the online-planned cut (lossless).
    pub feature_f32: PayloadModeRow,
    /// int8 activations at the deepest cut (`mea-quant` wire codec).
    pub feature_int8: PayloadModeRow,
    /// The sequential offline sweep's records (ground truth).
    pub offline: Vec<InstanceRecord>,
    /// Requests offloaded to the cloud (identical across modes).
    pub offloaded: usize,
    /// Full-forward MACs of the cloud network.
    pub cloud_total_macs: u64,
}

/// Runs the same saturating high-offload trace through the three payload
/// modes: raw-image upload, f32 feature payload at the cut the
/// [`mea_edgecloud::partition::CutPlanner`] picks online, and int8
/// feature payload at the deepest cut. Same models, same policy, same
/// instances — only the wire and the split move.
pub fn feature_payload(scale: Scale) -> FeaturePayloadResult {
    let instances = match scale {
        Scale::Smoke => 96,
        Scale::Repro | Scale::Full => 384,
    };
    let mut data_cfg = scale.cifar100_like(5301);
    data_cfg.num_classes = 6;
    data_cfg.num_clusters = 3;
    data_cfg.image_hw = 8;
    data_cfg.test_per_class = instances / 6 + 1;
    let bundle = generate(&data_cfg);
    let data = bundle.test.subset(&(0..instances.min(bundle.test.len())).collect::<Vec<_>>());

    let hard = [0usize, 2, 4];
    let mut probe_net = edge_replica(41, &hard);
    let policy = high_offload_policy(&mut probe_net, &data, 0.8);

    let mut offline_net = edge_replica(41, &hard);
    let mut offline_cloud = cloud_replica(42);
    let offline = run_inference_with_policy(&mut offline_net, Some(&mut offline_cloud), &data, policy, 16);

    let mut rng = Rng::new(8);
    let requests = trace_requests(&data, 8, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
    let link = NetworkLink::wifi(50.0).with_rtt(0.002);
    let deep_cut = cloud_replica(42).cut_layer_count() - 1;

    let run = |mode: &'static str, payload: PayloadPlan| -> PayloadModeRow {
        let mut edges: Vec<EdgeReplica> =
            (0..2).map(|_| EdgeReplica::with_cloud_prefix(edge_replica(41, &hard), cloud_replica(42))).collect();
        let mut clouds: Vec<SegmentedCnn> = (0..2).map(|_| cloud_replica(42)).collect();
        let mut cfg = ServeConfig::new(policy, 2, 2, 4);
        cfg.queue_depth = 8;
        cfg.link = Some(link);
        cfg.payload = payload;
        let report = try_serve(&cfg, &mut edges, &mut clouds, &requests).expect("valid serving configuration");
        PayloadModeRow {
            mode,
            bytes_to_cloud: report.stats.bytes_to_cloud,
            bytes_from_cloud: report.stats.bytes_from_cloud,
            cloud_macs: report.stats.cloud_macs,
            cloud_macs_saved: report.stats.cloud_macs_saved,
            service_ms: 1e3 * report.stats.wall_s / report.stats.total as f64,
            cut: report.stats.final_cuts.map(|c| c[0]),
            records: report.records,
        }
    };

    let image_raw = run("image (raw 8-bit)", PayloadPlan::Image(WireFormat::Quantised8Bit));
    let feature_f32 = run(
        "features f32 @ planned cut",
        PayloadPlan::Features(FeatureConfig {
            wire: FeatureWire::F32,
            cut: CutSelection::Planned(CutPlannerConfig {
                classes: vec![DeviceProfile::new("edge worker", 15.0, 5e11)],
                cloud: DeviceProfile::new("cloud worker", 200.0, 1e12),
                objective: Objective::Latency,
                feedback: None,
            }),
        }),
    );
    let feature_int8 = run(
        "features int8 @ deepest cut",
        PayloadPlan::Features(FeatureConfig { wire: FeatureWire::Int8, cut: CutSelection::Fixed(deep_cut) }),
    );

    let offloaded = offline.iter().filter(|r| r.exit == meanet::ExitPoint::Cloud).count();
    let cloud_total_macs = cloud_replica(42).total_macs();
    FeaturePayloadResult { image_raw, feature_f32, feature_int8, offline, offloaded, cloud_total_macs }
}

/// One planner-loop configuration's outcome in the measured-link
/// feedback experiment.
#[derive(Debug, Clone)]
pub struct FeedbackRow {
    /// Human-readable loop mode.
    pub mode: &'static str,
    /// The cut the (single) device class ended the run on.
    pub final_cut: usize,
    /// Replans that actually changed a cut.
    pub cut_replans: u64,
    /// Bytes the cloud tier received (informational: requests in flight
    /// across a replan boundary make the exact split racy).
    pub bytes_to_cloud: u64,
    /// Mean wall-clock service time per request (ms).
    pub service_ms: f64,
    /// Records produced by the run, in input order.
    pub records: Vec<InstanceRecord>,
}

/// Everything the `planner_feedback` bench target asserts and reports.
#[derive(Debug)]
pub struct PlannerFeedbackResult {
    /// Open loop: the static contention model never hears about the
    /// degradation and keeps its nominal plan to the end.
    pub open: FeedbackRow,
    /// Closed loop: per-batch link telemetry reaches the planner, which
    /// moves the cut once the measured rate collapses.
    pub closed: FeedbackRow,
    /// The sequential offline sweep's records (ground truth).
    pub offline: Vec<InstanceRecord>,
    /// Requests offloaded (all of them: the trace serves `Always`).
    pub offloaded: usize,
    /// The degraded wire's uplink rate (Mbps) the schedule switches to.
    pub degraded_up_mbps: f64,
    /// The closed-loop run's final class-0 link estimate.
    pub estimate: LinkEstimate,
}

/// Runs the measured-link planner-feedback experiment: one device
/// streaming through a 1 edge × 1 cloud × `max_batch 1` pipeline (batch
/// order — and hence the whole telemetry trajectory — is deterministic),
/// with the wire silently degrading 100× a quarter of the way in. The
/// same trace runs open-loop (static contention model only) and
/// closed-loop ([`LinkFeedback`]); only the closed loop can move the cut.
pub fn planner_feedback(scale: Scale) -> PlannerFeedbackResult {
    let instances = match scale {
        Scale::Smoke => 96,
        Scale::Repro | Scale::Full => 288,
    };
    let mut data_cfg = scale.cifar100_like(6401);
    data_cfg.num_classes = 6;
    data_cfg.num_clusters = 3;
    data_cfg.image_hw = 8;
    data_cfg.test_per_class = instances / 6 + 1;
    let bundle = generate(&data_cfg);
    let data = bundle.test.subset(&(0..instances.min(bundle.test.len())).collect::<Vec<_>>());

    let hard = [0usize, 2, 4];
    let mut offline_net = edge_replica(51, &hard);
    let mut offline_cloud = cloud_replica(52);
    let offline =
        run_inference_with_policy(&mut offline_net, Some(&mut offline_cloud), &data, OffloadPolicy::Always, 16);

    // A slow edge next to a fast cloud: under the nominal 100 Mbps wire
    // the planner ships pixels; once the wire collapses to 1 Mbps, paying
    // the edge prefix to shrink the upload wins — but only measured
    // telemetry can find that out.
    let nominal = NetworkLink::wifi(100.0).with_rtt(0.0002);
    let degraded = NetworkLink::wifi(1.0).with_rtt(0.0002);
    let degrade_after = instances as u64 / 4;
    let edge_class = DeviceProfile::new("edge", 10.0, 5e9);

    let mut rng = Rng::new(9);
    let requests = trace_requests(&data, 1, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
    let run = |mode: &'static str, feedback: Option<LinkFeedback>| -> (FeedbackRow, ServeReport) {
        let mut edges = vec![EdgeReplica::with_cloud_prefix(edge_replica(51, &hard), cloud_replica(52))];
        let mut clouds = vec![cloud_replica(52)];
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
        cfg.queue_depth = 4;
        let planner = CutPlannerConfig {
            classes: vec![edge_class.clone()],
            cloud: DeviceProfile::new("cloud", 200.0, 1e12),
            objective: Objective::Latency,
            feedback: None,
        };
        match feedback {
            Some(feedback) => {
                cfg.control =
                    Some(ControlPlan::ClosedLoop { planner, feedback, wire: FeatureWire::F32, controller: None });
            }
            None => {
                cfg.payload = PayloadPlan::Features(FeatureConfig {
                    wire: FeatureWire::F32,
                    cut: CutSelection::Planned(planner),
                });
            }
        }
        cfg.link = Some(nominal);
        cfg.link_schedule = vec![LinkChange { after_batches: degrade_after, link: degraded }];
        let report = try_serve(&cfg, &mut edges, &mut clouds, &requests).expect("valid serving configuration");
        let row = FeedbackRow {
            mode,
            final_cut: report.stats.final_cuts.as_ref().expect("planned mode")[0],
            cut_replans: report.stats.cut_replans,
            bytes_to_cloud: report.stats.bytes_to_cloud,
            service_ms: 1e3 * report.stats.wall_s / report.stats.total as f64,
            records: report.records.clone(),
        };
        (row, report)
    };

    let (open, _) = run("open loop (static model)", None);
    let (closed, closed_report) = run(
        "closed loop (measured feedback)",
        Some(LinkFeedback { alpha: 0.5, prior_samples: 0.0, replan_every: 8 }),
    );
    let estimate = closed_report.stats.link_estimates.expect("feedback reports estimates")[0]
        .expect("class 0 observed at least one batch");
    let offloaded = offline.iter().filter(|r| r.exit == meanet::ExitPoint::Cloud).count();
    PlannerFeedbackResult { open, closed, offline, offloaded, degraded_up_mbps: 1.0, estimate }
}

/// One payload plan's modelled-vs-pipe parity measurement in the
/// real-transport experiment.
#[derive(Debug, Clone)]
pub struct TransportParityRow {
    /// Human-readable plan name.
    pub plan: &'static str,
    /// Whether the pipe run's records equal the modelled run's, bitwise.
    pub records_match: bool,
    /// Uplink bytes (asserted identical across transports).
    pub bytes_to_cloud: u64,
    /// Downlink bytes (asserted identical across transports).
    pub bytes_from_cloud: u64,
    /// The final cut, where the plan has one (identical across transports).
    pub cut: Option<usize>,
    /// Mean wall-clock service time per request over the modelled wire (ms).
    pub service_modelled_ms: f64,
    /// Mean wall-clock service time per request over the byte pipe (ms).
    pub service_pipe_ms: f64,
}

/// One closed-loop run over the real pipe (measured wall-clock telemetry).
#[derive(Debug, Clone)]
pub struct PipeLoopRow {
    /// The cut the single device class ended the run on.
    pub final_cut: usize,
    /// Replans that actually changed a cut.
    pub cut_replans: u64,
    /// The final class-0 link estimate (from `Instant::now()` deltas).
    pub estimate: LinkEstimate,
    /// Mean wall-clock service time per request (ms).
    pub service_ms: f64,
    /// Records produced by the run, in input order.
    pub records: Vec<InstanceRecord>,
}

/// Everything the `real_transport` bench target asserts and reports.
#[derive(Debug)]
pub struct RealTransportResult {
    /// Modelled-vs-pipe parity, one row per payload plan.
    pub parity: Vec<TransportParityRow>,
    /// Instances served per parity run.
    pub total: usize,
    /// Requests offloaded per parity run (identical across transports).
    pub offloaded: usize,
    /// Open loop over the throttled pipe: no feedback, the static model's
    /// plan holds to the end.
    pub open_cut: usize,
    /// Two identically-configured closed-loop runs over the throttled
    /// pipe: real clocks make their link estimates differ run-to-run
    /// while every routing outcome stays identical.
    pub closed: [PipeLoopRow; 2],
    /// The pacer rate (Mbps) the mid-run throttle drops the uplink to.
    pub throttled_up_mbps: f64,
}

/// Runs the real-transport experiment. Part one: the same high-offload
/// trace crosses the modelled wire and the real in-process byte pipe
/// under every payload plan (raw/quantised image, fixed f32/int8 cuts,
/// planner-chosen cut) — records and byte accounting must be identical,
/// since the transport only changes where the time comes from. Part two:
/// the pipe's pacer silently throttles mid-run and only the measured
/// closed loop (fed by `Instant::now()` deltas around real sends) moves
/// the cut; the static model is never told.
pub fn real_transport(scale: Scale) -> RealTransportResult {
    let instances = match scale {
        Scale::Smoke => 96,
        Scale::Repro | Scale::Full => 192,
    };
    let mut data_cfg = scale.cifar100_like(7501);
    data_cfg.num_classes = 6;
    data_cfg.num_clusters = 3;
    data_cfg.image_hw = 8;
    data_cfg.test_per_class = instances / 6 + 1;
    let bundle = generate(&data_cfg);
    let data = bundle.test.subset(&(0..instances.min(bundle.test.len())).collect::<Vec<_>>());

    let hard = [0usize, 2, 4];
    let mut probe_net = edge_replica(61, &hard);
    let policy = high_offload_policy(&mut probe_net, &data, 0.8);

    let mut rng = Rng::new(10);
    let requests = trace_requests(&data, 4, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
    let link = NetworkLink::wifi(50.0).with_rtt(0.002);
    let deep_cut = cloud_replica(62).cut_layer_count() - 1;
    let planned = || {
        CutSelection::Planned(CutPlannerConfig {
            classes: vec![DeviceProfile::new("edge worker", 15.0, 5e11)],
            cloud: DeviceProfile::new("cloud worker", 200.0, 1e12),
            objective: Objective::Latency,
            feedback: None,
        })
    };
    let plans: Vec<(&'static str, PayloadPlan)> = vec![
        ("image f32", PayloadPlan::Image(WireFormat::Float32)),
        ("image quant8", PayloadPlan::Image(WireFormat::Quantised8Bit)),
        (
            "features f32 @ mid cut",
            PayloadPlan::Features(FeatureConfig {
                wire: FeatureWire::F32,
                cut: CutSelection::Fixed(deep_cut / 2),
            }),
        ),
        (
            "features int8 @ deep cut",
            PayloadPlan::Features(FeatureConfig { wire: FeatureWire::Int8, cut: CutSelection::Fixed(deep_cut) }),
        ),
        (
            "features f32 @ planned cut",
            PayloadPlan::Features(FeatureConfig { wire: FeatureWire::F32, cut: planned() }),
        ),
    ];

    let run = |payload: &PayloadPlan, transport: TransportKind| -> ServeReport {
        let mut edges: Vec<EdgeReplica> =
            (0..2).map(|_| EdgeReplica::with_cloud_prefix(edge_replica(61, &hard), cloud_replica(62))).collect();
        let mut clouds: Vec<SegmentedCnn> = (0..2).map(|_| cloud_replica(62)).collect();
        let mut cfg = ServeConfig::new(policy, 2, 2, 4);
        cfg.queue_depth = 8;
        cfg.link = Some(link);
        cfg.payload = payload.clone();
        cfg.transport = transport;
        try_serve(&cfg, &mut edges, &mut clouds, &requests).expect("valid serving configuration")
    };

    let mut parity = Vec::new();
    let mut offloaded = 0;
    for (name, payload) in &plans {
        let modelled = run(payload, TransportKind::Modelled);
        let piped = run(payload, TransportKind::Pipe(PipeConfig::default()));
        assert_eq!(
            piped.stats.bytes_to_cloud, modelled.stats.bytes_to_cloud,
            "{name}: uplink bytes diverged between transports"
        );
        assert_eq!(
            piped.stats.bytes_from_cloud, modelled.stats.bytes_from_cloud,
            "{name}: downlink bytes diverged between transports"
        );
        assert_eq!(piped.stats.final_cuts, modelled.stats.final_cuts, "{name}: the transport moved the cut");
        offloaded = modelled.stats.offloaded;
        parity.push(TransportParityRow {
            plan: name,
            records_match: piped.records == modelled.records,
            bytes_to_cloud: modelled.stats.bytes_to_cloud,
            bytes_from_cloud: modelled.stats.bytes_from_cloud,
            cut: modelled.stats.final_cuts.as_ref().map(|c| c[0]),
            service_modelled_ms: 1e3 * modelled.stats.wall_s / modelled.stats.total as f64,
            service_pipe_ms: 1e3 * piped.stats.wall_s / piped.stats.total as f64,
        });
    }

    // Part two: a single deterministic pipeline (1 edge x 1 cloud x
    // max_batch 1) over the PACED pipe. The pacer starts at 50 Mbps and
    // silently throttles to 1 Mbps a quarter of the way in; the static
    // model (the planner's prior) is told 100 Mbps and never updated.
    let throttled_up_mbps = 1.0;
    let loop_requests = trace_requests(&data, 1, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
    let closed_loop = |feedback: Option<LinkFeedback>| -> ServeReport {
        let mut edges = vec![EdgeReplica::with_cloud_prefix(edge_replica(61, &hard), cloud_replica(62))];
        let mut clouds = vec![cloud_replica(62)];
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
        cfg.queue_depth = 4;
        let planner = CutPlannerConfig {
            classes: vec![DeviceProfile::new("edge", 10.0, 5e9)],
            cloud: DeviceProfile::new("cloud", 200.0, 1e12),
            objective: Objective::Latency,
            feedback: None,
        };
        match feedback {
            Some(feedback) => {
                cfg.control =
                    Some(ControlPlan::ClosedLoop { planner, feedback, wire: FeatureWire::F32, controller: None });
            }
            None => {
                cfg.payload = PayloadPlan::Features(FeatureConfig {
                    wire: FeatureWire::F32,
                    cut: CutSelection::Planned(planner),
                });
            }
        }
        cfg.link = Some(NetworkLink::wifi(100.0).with_rtt(0.0002));
        cfg.transport = TransportKind::Pipe(PipeConfig {
            up_mbps: Some(50.0),
            throttle: vec![PaceChange { after_frames: instances as u64 / 4, up_mbps: throttled_up_mbps }],
            ..PipeConfig::default()
        });
        try_serve(&cfg, &mut edges, &mut clouds, &loop_requests).expect("valid serving configuration")
    };
    let open = closed_loop(None);
    let open_cut = open.stats.final_cuts.as_ref().expect("planned mode")[0];
    let feedback = Some(LinkFeedback { alpha: 0.5, prior_samples: 0.0, replan_every: 8 });
    let closed = [closed_loop(feedback), closed_loop(feedback)].map(|report| PipeLoopRow {
        final_cut: report.stats.final_cuts.as_ref().expect("planned mode")[0],
        cut_replans: report.stats.cut_replans,
        estimate: report.stats.link_estimates.expect("feedback reports estimates")[0]
            .expect("class 0 observed at least one batch"),
        service_ms: 1e3 * report.stats.wall_s / report.stats.total as f64,
        records: report.records,
    });

    RealTransportResult { parity, total: data.len(), offloaded, open_cut, closed, throttled_up_mbps }
}

fn row_from(cloud_workers: usize, report: &ServeReport) -> ServingRow {
    let h: Histogram = report.latency_histogram(2048);
    ServingRow {
        cloud_workers,
        throughput_hz: report.stats.throughput_hz,
        service_ms: 1e3 * report.stats.wall_s / report.stats.total as f64,
        p50_ms: h.p50() * 1e3,
        p95_ms: h.p95() * 1e3,
        p99_ms: h.p99() * 1e3,
        achieved_beta: report.achieved_beta(),
        cloud_batches: report.stats.cloud_batches,
        max_batch_seen: report.stats.max_batch_seen,
    }
}

/// One device class's outcome in the heterogeneous-fleet experiment
/// (from the base run, difficulty routing off).
#[derive(Debug, Clone)]
pub struct FleetTierRow {
    /// Class name (it names the compute tier).
    pub name: &'static str,
    /// The tier's kernel-latency scale factor on the shared profile.
    pub throughput_factor: f64,
    /// The cut the planner derived from the tier-scaled profile.
    pub planned_cut: usize,
    /// Requests served by devices of this class.
    pub served: usize,
    /// Requests this class's devices offloaded to the cloud.
    pub offloaded: usize,
    /// 95th-percentile end-to-end latency (ms) within the class.
    pub p95_ms: f64,
}

/// One whole-fleet serving run (difficulty routing on or off).
#[derive(Debug, Clone)]
pub struct FleetRunRow {
    /// Human-readable routing mode.
    pub mode: &'static str,
    /// Requests served.
    pub total: usize,
    /// Requests classified by the cloud.
    pub offloaded: usize,
    /// Main-exit forwards skipped by hard-request pre-commits.
    pub skipped_main_exits: usize,
    /// Main-exit forwards actually executed (`total - skipped`).
    pub main_exit_evals: usize,
    /// Mean wall-clock service time per request (ms).
    pub service_ms: f64,
}

/// Everything the `hetero_fleet` bench target asserts and reports.
#[derive(Debug)]
pub struct HeteroFleetResult {
    /// Per-class outcomes of the base run, High → Medium → Low.
    pub tiers: Vec<FleetTierRow>,
    /// The base run: heterogeneous fleet, no difficulty predictor.
    pub base: FleetRunRow,
    /// The same trace with difficulty-aware routing enabled.
    pub routed: FleetRunRow,
    /// Requests the predictor banded hard (pre-committed to the cloud).
    pub predicted_hard: usize,
    /// Requests the predictor banded easy (kept on the edge).
    pub predicted_easy: usize,
    /// The link rate (Mbps) the search settled on to separate the tiers.
    pub link_mbps: f64,
}

/// Runs the heterogeneous-fleet experiment: six devices spread round-robin
/// across three [`ComputeTier`]s of one hardware profile, served through
/// the [`Fleet`] API with planner-chosen per-class cuts — the link rate is
/// searched so the High and Low tiers provably plan different cuts. The
/// same trace then reruns with a [`DifficultyPredictor`] so hard requests
/// pre-commit to the cloud (skipping their main-exit forwards) and easy
/// requests refuse the offload leg.
pub fn hetero_fleet(scale: Scale) -> HeteroFleetResult {
    let instances = match scale {
        Scale::Smoke => 96,
        Scale::Repro | Scale::Full => 288,
    };
    let mut data_cfg = scale.cifar100_like(8601);
    data_cfg.num_classes = 6;
    data_cfg.num_clusters = 3;
    data_cfg.image_hw = 8;
    data_cfg.test_per_class = instances / 6 + 1;
    let bundle = generate(&data_cfg);
    let data = bundle.test.subset(&(0..instances.min(bundle.test.len())).collect::<Vec<_>>());

    let hard = [0usize, 2, 4];
    let mut probe_net = edge_replica(71, &hard);
    let policy = high_offload_policy(&mut probe_net, &data, 0.5);
    let predictor = DifficultyPredictor::calibrate(&mut probe_net, &bundle.train.images, 16);

    // Three tiers sharing one hardware profile: only the kernel-latency
    // scale factor separates their effective throughputs.
    let base_profile = DeviceProfile::new("edge", 10.0, 5e8);
    let tier_list = [("high", ComputeTier::High), ("medium", ComputeTier::Medium), ("low", ComputeTier::Low)];
    let classes: Vec<DeviceClass> =
        tier_list.iter().map(|&(name, tier)| DeviceClass::new(name, base_profile.clone(), tier)).collect();

    // Find a link rate where the High and Low effective profiles plan
    // different cuts (their throughputs differ 2.5x, so some rate must),
    // making the per-class cut assertion meaningful at every scale.
    let devices = 6;
    let cloud_net = cloud_replica(72);
    let in_elems: u64 = cloud_net.in_shape.iter().map(|&d| d as u64).product();
    let planner_at = |rate: f64| {
        let env = PartitionEnv {
            edge: classes[0].effective_profile(),
            cloud: DeviceProfile::new("cloud", 200.0, 1e12),
            link: NetworkLink::wifi(rate).with_rtt(0.001),
            bytes_per_elem: 4,
            raw_input_bytes: 4 * in_elems,
            response_bytes: RESPONSE_WIRE_BYTES,
        };
        CutPlanner::from_network(&cloud_net, env, Objective::Latency, devices)
    };
    let (high_profile, low_profile) = (classes[0].effective_profile(), classes[2].effective_profile());
    let link_mbps = (0..60)
        .map(|i| 0.05 * 1.3f64.powi(i))
        .find(|&r| {
            let planner = planner_at(r);
            planner.plan_for(&high_profile).cut != planner.plan_for(&low_profile).cut
        })
        .expect("some link rate separates the High and Low tiers");
    let link = NetworkLink::wifi(link_mbps).with_rtt(0.001);

    let mut rng = Rng::new(11);
    let requests = trace_requests(&data, devices, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
    let spec = FleetSpec::round_robin(classes.clone());
    let run = |mode: &'static str, difficulty: Option<DifficultyPredictor>| {
        let edges: Vec<EdgeReplica> =
            (0..3).map(|_| EdgeReplica::with_cloud_prefix(edge_replica(71, &hard), cloud_replica(72))).collect();
        let clouds: Vec<SegmentedCnn> = (0..2).map(|_| cloud_replica(72)).collect();
        let mut builder = ServeConfig::builder(policy)
            .edge_workers(3)
            .cloud_workers(2)
            .max_batch(4)
            .queue_depth(8)
            .payload(PayloadPlan::Features(FeatureConfig {
                wire: FeatureWire::F32,
                cut: CutSelection::Planned(CutPlannerConfig {
                    classes: Vec::new(),
                    cloud: DeviceProfile::new("cloud", 200.0, 1e12),
                    objective: Objective::Latency,
                    feedback: None,
                }),
            }))
            .link(link)
            .fleet(spec.clone());
        if let Some(p) = difficulty {
            builder = builder.difficulty(p);
        }
        let cfg = builder.build().expect("valid fleet configuration");
        let mut fleet = Fleet::new(cfg, edges, clouds).expect("replicas match the configuration");
        let report = fleet.serve(&requests).expect("the fleet serves the trace");
        let row = FleetRunRow {
            mode,
            total: report.stats.total,
            offloaded: report.stats.offloaded,
            skipped_main_exits: report.stats.skipped_main_exits,
            main_exit_evals: report.stats.total - report.stats.skipped_main_exits,
            service_ms: 1e3 * report.stats.wall_s / report.stats.total as f64,
        };
        (row, report)
    };

    let (base, base_report) = run("uniform routing", None);
    let verdicts: Vec<Difficulty> = requests.iter().map(|r| predictor.predict(&r.image)).collect();
    let predicted_hard = verdicts.iter().filter(|&&d| d == Difficulty::Hard).count();
    let predicted_easy = verdicts.iter().filter(|&&d| d == Difficulty::Easy).count();
    let (routed, _) = run("difficulty-aware routing", Some(predictor));

    let cuts = base_report.stats.final_cuts.clone().expect("planned mode reports cuts");
    let served = base_report.stats.per_class_served.clone().expect("fleet stats");
    let offload = base_report.stats.per_class_offload.clone().expect("fleet stats");
    let latency = base_report.stats.per_class_latency.clone().expect("fleet stats");
    let tiers = tier_list
        .iter()
        .enumerate()
        .map(|(i, &(name, tier))| FleetTierRow {
            name,
            throughput_factor: tier.throughput_factor(),
            planned_cut: cuts[i],
            served: served[i],
            offloaded: offload[i],
            p95_ms: latency[i].as_ref().map_or(0.0, |h| h.p95() * 1e3),
        })
        .collect();

    HeteroFleetResult { tiers, base, routed, predicted_hard, predicted_easy, link_mbps }
}

/// One ingress/transport configuration's outcome in the saturation load
/// harness.
#[derive(Debug, Clone)]
pub struct LoadRow {
    /// Row label (ingress mode + transport).
    pub label: &'static str,
    /// Sustained throughput at saturation (req/s of wall clock).
    pub sustained_hz: f64,
    /// Mean wall-clock service time per request (ms).
    pub service_ms: f64,
    /// Median end-to-end latency (ms), from the bounded streaming
    /// histogram — saturation quantiles track the backlog drain.
    pub p50_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Device-sticky runs a cloud worker stole from another shard.
    pub steals: u64,
    /// High-water mark of frames queued across all ingress shards
    /// (0 under the single-queue ingress, which has no shards).
    pub max_queue_depth: usize,
    /// Batched cloud forwards executed.
    pub cloud_batches: u64,
    /// Requests classified by the cloud tier.
    pub offloaded: usize,
    /// Per-device FIFO held per exit lane across the completion stream.
    pub fifo_ok: bool,
    /// Every request's record matched the offline sweep of its instance.
    pub record_identity: bool,
}

/// Everything the `load_harness` bench target asserts and reports.
#[derive(Debug)]
pub struct LoadHarnessResult {
    /// Devices in the trace (each contributes `frames_per_device` frames).
    pub devices: usize,
    /// Frames each device offers.
    pub frames_per_device: usize,
    /// Total requests per run.
    pub total: usize,
    /// Cloud workers (= ingress shards) in every run.
    pub cloud_workers: usize,
    /// Sharded work-stealing ingress, modelled WiFi link, heavy tail.
    pub sharded: LoadRow,
    /// Single-queue ingress on the identical trace (the A/B baseline).
    pub single_queue: LoadRow,
    /// Sharded ingress over the real byte-pipe transport, same trace.
    pub pipe: LoadRow,
    /// Sharded ingress on the diurnal-modulated Poisson trace.
    pub diurnal: LoadRow,
    /// `single_queue.service_ms / sharded.service_ms` — the scheduling
    /// win from stealing under a pathologically skewed device population.
    pub speedup: f64,
}

/// Builds a saturating trace of `devices * frames_per_device` requests by
/// cycling the dataset's instances round-robin (instance `seq·devices +
/// device`, modulo the dataset), with every device id multiplied by
/// `lane_stride` so all sticky lanes collapse to lane 0 — the worst-case
/// skew for a sharded ingress, and exactly the population where work
/// stealing has to carry the whole cloud tier.
fn skewed_trace(
    data: &Dataset,
    devices: usize,
    frames_per_device: usize,
    lane_stride: usize,
    model: &ArrivalModel,
    rng: &mut Rng,
) -> (Vec<usize>, Vec<ServeRequest>) {
    let mut tagged: Vec<(usize, ServeRequest)> = Vec::with_capacity(devices * frames_per_device);
    for d in 0..devices {
        let times = model.generate(frames_per_device, rng);
        for (s, &arrival_s) in times.iter().enumerate() {
            assert!(arrival_s.is_finite(), "non-finite arrival for device {d} seq {s}");
            let instance = (s * devices + d) % data.len();
            tagged.push((
                instance,
                ServeRequest {
                    device: d * lane_stride,
                    seq: s,
                    arrival_s,
                    image: data.images.slice_axis0(instance, instance + 1),
                    truth: data.labels[instance],
                },
            ));
        }
    }
    // Stable sort: ties keep per-device generation order, and each
    // device's own times are non-decreasing, so seq order survives.
    tagged.sort_by(|a, b| a.1.arrival_s.total_cmp(&b.1.arrival_s));
    tagged.into_iter().unzip()
}

/// Slimmer replicas than [`edge_replica`]/[`cloud_replica`]: the load
/// harness measures *scheduling* (how well link sleeps overlap across the
/// cloud tier), so per-request model compute is kept far below the
/// modelled link time — otherwise the edge tier's forwards would bound
/// both ingress modes on a small CI host and hide the scheduling gap.
fn slim_edge(seed: u64, hard: &[usize]) -> MeaNet {
    let mut rng = Rng::new(seed);
    let mut cfg = CifarResNetConfig::repro_scale(6);
    cfg.input_hw = 8;
    cfg.blocks_per_stage = 1;
    cfg.channels = [8, 12, 16];
    let backbone = resnet_cifar(&cfg, &mut rng);
    let mut net = MeaNet::from_backbone(
        backbone,
        Variant::FullBackbone { extension_channels: 8, extension_blocks: 1 },
        Merge::Sum,
        &mut rng,
    );
    net.attach_edge_blocks(AdaptivePlan::DepthwiseSeparable, ClassDict::new(hard), &mut rng);
    net
}

/// The matching slim cloud DNN replica.
fn slim_cloud(seed: u64) -> SegmentedCnn {
    let mut rng = Rng::new(seed);
    let mut cfg = CifarResNetConfig::repro_scale(6);
    cfg.input_hw = 8;
    cfg.blocks_per_stage = 2;
    cfg.channels = [8, 12, 16];
    resnet_cifar(&cfg, &mut rng)
}

/// Runs the scale-out saturation harness: a heavy-tailed (log-normal)
/// trace from a large skewed device population — every sticky lane maps
/// to shard 0 — through the sharded work-stealing ingress and the legacy
/// single-queue ingress on the modelled-link transport (A/B on identical
/// requests), plus the same trace over the real byte-pipe transport and a
/// diurnal-modulated Poisson trace, all at a high offload fraction.
///
/// The modelled link charges each coalesced batch an upload plus a 20 ms
/// RTT; under the single queue those sleeps serialise behind shard 0's
/// owner, while stealing overlaps them across the whole cloud tier — the
/// measured speedup is pure scheduling, which is why records must still
/// match the offline sweep bit for bit in every run.
pub fn load_harness(scale: Scale) -> LoadHarnessResult {
    let (devices, frames_per_device) = match scale {
        Scale::Smoke => (1_000, 2),
        Scale::Repro | Scale::Full => (10_000, 2),
    };
    let instances = 96;
    let mut data_cfg = scale.cifar100_like(9701);
    data_cfg.num_classes = 6;
    data_cfg.num_clusters = 3;
    data_cfg.image_hw = 8;
    data_cfg.test_per_class = instances / 6 + 1;
    let bundle = generate(&data_cfg);
    let data = bundle.test.subset(&(0..instances.min(bundle.test.len())).collect::<Vec<_>>());

    let hard = [0usize, 2, 4];
    let mut probe_net = slim_edge(81, &hard);
    let policy = high_offload_policy(&mut probe_net, &data, 0.8);

    // Ground truth: the sequential offline sweep over the base instances.
    // Each request is a cycled instance, so its record must equal the
    // offline record of that instance regardless of ingress or transport.
    let mut offline_net = slim_edge(81, &hard);
    let mut offline_cloud = slim_cloud(82);
    let offline = run_inference_with_policy(&mut offline_net, Some(&mut offline_cloud), &data, policy, 16);

    let cloud_workers = 6;
    let edge_workers = 2;
    let mut rng = Rng::new(12);

    // Heavy tail: median inter-arrival ~0.9 ms per device with sigma=1
    // log-normal stragglers — saturating in aggregate, bursty per device.
    let heavy = ArrivalModel::LogNormal { mu: -7.0, sigma: 1.0 };
    let (instance_of, requests) = skewed_trace(&data, devices, frames_per_device, cloud_workers, &heavy, &mut rng);
    // Day/night swing compressed to a sub-second period so the modulation
    // actually moves within the trace.
    let diurnal_model = ArrivalModel::Diurnal { base_rate_hz: 2_000.0, amplitude: 0.8, period_s: 0.25 };
    let (diurnal_instance_of, diurnal_requests) =
        skewed_trace(&data, devices, frames_per_device, cloud_workers, &diurnal_model, &mut rng);

    let run = |label: &'static str,
               ingress: CloudIngress,
               transport: TransportKind,
               requests: &[ServeRequest],
               instance_of: &[usize]|
     -> LoadRow {
        let mut edges: Vec<EdgeReplica> =
            (0..edge_workers).map(|_| EdgeReplica::new(slim_edge(81, &hard))).collect();
        let mut clouds: Vec<SegmentedCnn> = (0..cloud_workers).map(|_| slim_cloud(82)).collect();
        let mut cfg = ServeConfig::new(policy, edge_workers, cloud_workers, 8);
        cfg.queue_depth = 64;
        cfg.ingress = ingress;
        if matches!(transport, TransportKind::Modelled) {
            // WiFi-class uplink with a 20 ms RTT: each batch pays real
            // wall-clock sleep, so overlap (not host cores) sets capacity,
            // and deep shards let stolen prefixes fill whole batches.
            cfg.link = Some(NetworkLink::wifi(50.0).with_rtt(0.020));
        }
        cfg.transport = transport;
        let report = try_serve(&cfg, &mut edges, &mut clouds, requests).expect("valid serving configuration");
        assert_eq!(report.completions.len(), requests.len(), "{label}: every request completes");

        let mut fifo_ok = true;
        let mut last: HashMap<usize, [Option<usize>; 2]> = HashMap::new();
        for c in &report.completions {
            let lane = usize::from(c.record.exit == ExitPoint::Cloud);
            let slot = &mut last.entry(c.device).or_default()[lane];
            if slot.is_some_and(|prev| c.seq <= prev) {
                fifo_ok = false;
            }
            *slot = Some(c.seq);
        }

        let mut h = StreamingHistogram::for_latency();
        for c in &report.completions {
            h.record(c.latency_s);
        }

        LoadRow {
            label,
            sustained_hz: report.stats.throughput_hz,
            service_ms: 1e3 * report.stats.wall_s / report.stats.total as f64,
            p50_ms: h.p50() * 1e3,
            p95_ms: h.p95() * 1e3,
            p99_ms: h.p99() * 1e3,
            steals: report.stats.steals,
            max_queue_depth: report.stats.max_queue_depth,
            cloud_batches: report.stats.cloud_batches,
            offloaded: report.stats.offloaded,
            fifo_ok,
            record_identity: report.records.iter().zip(instance_of).all(|(r, &i)| *r == offline[i]),
        }
    };

    let sharded =
        run("sharded / modelled", CloudIngress::Sharded, TransportKind::Modelled, &requests, &instance_of);
    let single_queue = run(
        "single-queue / modelled",
        CloudIngress::SingleQueue,
        TransportKind::Modelled,
        &requests,
        &instance_of,
    );
    let pipe = run(
        "sharded / byte pipe",
        CloudIngress::Sharded,
        TransportKind::Pipe(PipeConfig::default()),
        &requests,
        &instance_of,
    );
    let diurnal = run(
        "sharded / diurnal trace",
        CloudIngress::Sharded,
        TransportKind::Modelled,
        &diurnal_requests,
        &diurnal_instance_of,
    );

    let speedup = single_queue.service_ms / sharded.service_ms;
    LoadHarnessResult {
        devices,
        frames_per_device,
        total: requests.len(),
        cloud_workers,
        sharded,
        single_queue,
        pipe,
        diurnal,
        speedup,
    }
}

/// One serving run's outcome in the SLA-governor experiment.
#[derive(Debug, Clone)]
pub struct SlaRunRow {
    /// Human-readable control-plan name.
    pub mode: &'static str,
    /// p95 latency over the steady-state half of the trace (ms): the
    /// completions whose request index falls in the second half, i.e.
    /// after the degradation hit and any governed escalation settled.
    pub steady_p95_ms: f64,
    /// The cut layer class 0 ended the run on.
    pub final_cut: usize,
    /// The feature wire class 0 ended the run on.
    pub final_wire: FeatureWire,
    /// Decision windows that violated the SLA (0 unless governed).
    pub sla_violations: u64,
    /// Times the governor moved the (β, cut, wire) point (0 unless
    /// governed).
    pub governor_decisions: u64,
    /// Replans that actually changed a cut.
    pub cut_replans: u64,
    /// Uplink bytes shipped to the cloud tier.
    pub bytes_to_cloud: u64,
    /// Mean wall-clock service time per request (ms).
    pub service_ms: f64,
    /// Records produced by the run, in input order.
    pub records: Vec<InstanceRecord>,
}

/// Everything the `sla_governor` bench target asserts and reports.
#[derive(Debug)]
pub struct SlaGovernorResult {
    /// The governed p95 budget (ms).
    pub budget_ms: f64,
    /// The governed Table-III accuracy floor.
    pub accuracy_floor: f64,
    /// Open loop: static contention model, f32 wire, no feedback — the
    /// degradation goes unnoticed and the SLA is violated to the end.
    pub open: SlaRunRow,
    /// Closed loop: measured feedback moves the cut, but the wire is
    /// pinned to f32 — not enough to get back under the budget.
    pub closed: SlaRunRow,
    /// Governed: the same loop plus the governor's ladder — holds the
    /// budget by switching the wire to int8 on the replanned cut.
    pub governed: SlaRunRow,
    /// The governed run's control trajectory (initial point + one entry
    /// per decision).
    pub governed_trajectory: Vec<ControlPoint>,
    /// The accuracy model's prediction at the achieved offload fraction.
    pub predicted_accuracy: f64,
    /// A governed run against an unreachable budget on a stationary
    /// link: the ladder escalates to the top deterministically.
    pub harsh: SlaRunRow,
    /// The harsh run's control trajectory.
    pub harsh_trajectory: Vec<ControlPoint>,
    /// Where the harsh run's β target must pin: the accuracy floor's
    /// minimum offload fraction.
    pub harsh_beta_floor: f64,
    /// The cut the harsh run ends on (deep: past the image-size
    /// break-even).
    pub deep_cut: usize,
    /// Requests offloaded per run (all of them: the trace serves
    /// `Always`).
    pub offloaded: usize,
    /// Uplink bytes of a fixed run at `deep_cut` on the per-tensor int8
    /// wire.
    pub bytes_per_tensor: u64,
    /// Uplink bytes of the same fixed run on the grid-indexed
    /// per-channel int8 wire.
    pub bytes_per_channel: u64,
}

/// Exact p95 order statistic of the completions whose request index is
/// in the second half of the trace (the steady-state tail), in ms.
fn steady_p95_ms(report: &ServeReport) -> f64 {
    let total = report.stats.total;
    let mut tail: Vec<f64> =
        report.completions.iter().filter(|c| c.req_id >= total / 2).map(|c| c.latency_s).collect();
    assert!(!tail.is_empty(), "no steady-state completions");
    tail.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let idx = ((tail.len() - 1) as f64 * 0.95).round() as usize;
    1e3 * tail[idx]
}

/// Runs the SLA-governor experiment: one device paced through a 1 edge ×
/// 1 cloud × `max_batch 1` pipeline (batch order — and hence the whole
/// control trajectory — is deterministic), with the wire collapsing
/// 200× a quarter of the way in. The same trace runs open-loop (static
/// model, f32), closed-loop (measured feedback, f32) and governed
/// ([`ControlPlan::Governed`]); only the governor can change the wire,
/// and only it gets back under the p95 budget. A fourth governed run
/// against an unreachable budget on a stationary link walks the full
/// escalation ladder — per-channel int8 at the deep cut, β stepped down
/// to the accuracy floor — and two fixed-cut runs price the int8 wires
/// against each other byte-for-byte.
pub fn sla_governor(scale: Scale) -> SlaGovernorResult {
    let instances = match scale {
        Scale::Smoke => 96,
        Scale::Repro | Scale::Full => 192,
    };
    let mut data_cfg = scale.cifar100_like(7301);
    data_cfg.num_classes = 6;
    data_cfg.num_clusters = 3;
    data_cfg.image_hw = 8;
    data_cfg.test_per_class = instances / 6 + 1;
    let bundle = generate(&data_cfg);
    let data = bundle.test.subset(&(0..instances.min(bundle.test.len())).collect::<Vec<_>>());
    let instances = data.len();

    let hard = [0usize, 2, 4];
    let budget_ms = 16.0;
    let accuracy_floor = 0.80;
    // Nominal, the plan ships pixels comfortably under budget; degraded,
    // a f32 upload at any cut blows the budget (deep f32 ≈ 25 ms) while
    // an int8 one at the deep cut fits (≈ 11 ms) — ~1.5× margin on both
    // sides of the budget, so the window verdicts that drive the ladder
    // are stable under scheduler noise.
    let nominal = NetworkLink::wifi(40.0).with_rtt(0.0002);
    let degraded = NetworkLink::wifi(0.2).with_rtt(0.0002);
    let degrade_after = instances as u64 / 4;

    let mut rng = Rng::new(11);
    // Paced slower than the worst degraded f32 service (~36 ms), so no
    // backlog builds and the decision windows see clean per-wire
    // latencies (no cross-epoch stragglers).
    let paced = trace_requests(&data, 1, &ArrivalModel::Uniform { interval_s: 0.050 }, &mut rng);
    let saturating = trace_requests(&data, 1, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);

    // A single-class fleet with a compute-poor edge: nominally the
    // latency plan ships pixels (cut 0), so the collapse forces the
    // governor to move the *cut* before the wire. The spec supplies the
    // planner's device classes for every run, governed or not, so the
    // baselines differ from the governed run only by the control plan.
    let spec =
        FleetSpec::uniform(DeviceClass::new("edge", DeviceProfile::new("edge", 10.0, 5e9), ComputeTier::High));
    let planner = || CutPlannerConfig {
        classes: Vec::new(),
        cloud: DeviceProfile::cloud_accelerator(),
        objective: Objective::Latency,
        feedback: None,
    };
    let run = |mode: &'static str,
               control: Option<ControlPlan>,
               link: NetworkLink,
               schedule: &[LinkChange],
               requests: &[ServeRequest]|
     -> (SlaRunRow, ServeReport) {
        let mut edges = vec![EdgeReplica::with_cloud_prefix(edge_replica(71, &hard), cloud_replica(72))];
        let mut clouds = vec![cloud_replica(72)];
        let mut cfg = ServeConfig::new(OffloadPolicy::Always, 1, 1, 1);
        cfg.queue_depth = 4;
        match control {
            Some(plan) => cfg.control = Some(plan),
            None => {
                cfg.payload = PayloadPlan::Features(FeatureConfig {
                    wire: FeatureWire::F32,
                    cut: CutSelection::Planned(planner()),
                });
            }
        }
        cfg.link = Some(link);
        cfg.link_schedule = schedule.to_vec();
        cfg.fleet = Some(spec.clone());
        let report = try_serve(&cfg, &mut edges, &mut clouds, requests).expect("valid serving configuration");
        let final_wire = report
            .stats
            .control_trajectory
            .as_ref()
            .and_then(|t| t.last())
            .map_or(FeatureWire::F32, |p| p.wires[0]);
        let row = SlaRunRow {
            mode,
            steady_p95_ms: steady_p95_ms(&report),
            final_cut: report.stats.final_cuts.as_ref().expect("feature mode")[0],
            final_wire,
            sla_violations: report.stats.sla_violations,
            governor_decisions: report.stats.governor_decisions,
            cut_replans: report.stats.cut_replans,
            bytes_to_cloud: report.stats.bytes_to_cloud,
            service_ms: 1e3 * report.stats.wall_s / report.stats.total as f64,
            records: report.records.clone(),
        };
        (row, report)
    };

    let schedule = vec![LinkChange { after_batches: degrade_after, link: degraded }];
    // The comparison rows are wall-clock order statistics of live paced
    // pipelines: a noisy host (CI neighbour, a background compile) can
    // double every p95 regardless of the control plan. Each run keeps
    // its best (lowest-p95) attempt out of up to three — host noise only
    // ever inflates a latency, so the minimum is the cleanest estimate —
    // and the loop stops as soon as the verdicts separate (governed
    // under the budget, both ungoverned runs over it), which on a quiet
    // host is the first attempt. The harsh and pricing runs below are
    // deterministic in everything gated and are never retried.
    let keep_best = |best: &mut Option<(SlaRunRow, ServeReport)>, attempt: (SlaRunRow, ServeReport)| {
        let replace = match best {
            Some((row, _)) => attempt.0.steady_p95_ms < row.steady_p95_ms,
            None => true,
        };
        if replace {
            *best = Some(attempt);
        }
    };
    let mut best_open = None;
    let mut best_closed = None;
    let mut best_governed = None;
    for _attempt in 0..3 {
        keep_best(&mut best_open, run("open loop (static, f32)", None, nominal, &schedule, &paced));
        keep_best(
            &mut best_closed,
            run(
                "closed loop (feedback, f32)",
                Some(ControlPlan::ClosedLoop {
                    planner: planner(),
                    feedback: LinkFeedback::default(),
                    wire: FeatureWire::F32,
                    controller: None,
                }),
                nominal,
                &schedule,
                &paced,
            ),
        );
        keep_best(
            &mut best_governed,
            run(
                "governed (SLA ladder)",
                Some(ControlPlan::Governed(SlaTarget::new(budget_ms, accuracy_floor))),
                nominal,
                &schedule,
                &paced,
            ),
        );
        let p95 = |best: &Option<(SlaRunRow, ServeReport)>| best.as_ref().expect("just ran").0.steady_p95_ms;
        if p95(&best_governed) <= budget_ms && p95(&best_open) > budget_ms && p95(&best_closed) > budget_ms {
            break;
        }
    }
    let (open, _) = best_open.expect("at least one attempt");
    let (closed, _) = best_closed.expect("at least one attempt");
    let (governed, governed_report) = best_governed.expect("at least one attempt");
    let governed_trajectory =
        governed_report.stats.control_trajectory.clone().expect("governed runs report a trajectory");
    let predicted_accuracy = AccuracyModel::default().predicted(governed_report.achieved_beta());

    // The unreachable budget: every full window violates, so the ladder
    // walks rung by rung to per-channel int8 and then steps β down to
    // the accuracy floor — on a stationary link the whole trajectory is
    // deterministic.
    let harsh_floor = 0.90;
    let (harsh, harsh_report) = run(
        "governed (unreachable SLA)",
        Some(ControlPlan::Governed(SlaTarget::new(1e-3, harsh_floor))),
        NetworkLink::wifi(1.0).with_rtt(0.0002),
        &[],
        &saturating,
    );
    let harsh_trajectory =
        harsh_report.stats.control_trajectory.clone().expect("governed runs report a trajectory");
    let harsh_beta_floor = AccuracyModel::default().min_beta(harsh_floor);
    let deep_cut = harsh.final_cut;

    // Price the two int8 wires against each other at the deep cut the
    // ladder landed on: the per-channel grid frames embed no params and
    // squeeze the batch axis, so they undercut per-tensor frames by a
    // fixed 16 bytes each.
    let fixed = |wire: FeatureWire| -> u64 {
        let (row, _) = run(
            "fixed wire pricing",
            Some(ControlPlan::Static { cut: deep_cut, wire, controller: None }),
            nominal,
            &[],
            &saturating,
        );
        row.bytes_to_cloud
    };
    let bytes_per_tensor = fixed(FeatureWire::Int8);
    let bytes_per_channel = fixed(FeatureWire::PerChannelInt8);

    SlaGovernorResult {
        budget_ms,
        accuracy_floor,
        open,
        closed,
        governed,
        governed_trajectory,
        predicted_accuracy,
        harsh,
        harsh_trajectory,
        harsh_beta_floor,
        deep_cut,
        offloaded: instances,
        bytes_per_tensor,
        bytes_per_channel,
    }
}

/// One cooperative-splitting serving run (the Low tier solo or pooled).
#[derive(Debug, Clone)]
pub struct CoopRunRow {
    /// Row label.
    pub mode: &'static str,
    /// Requests served.
    pub total: usize,
    /// Requests classified by the cloud.
    pub offloaded: usize,
    /// Layer the final upload resumes at (planner-chosen).
    pub final_cut: usize,
    /// Stages in the planned placement.
    pub stages: usize,
    /// Offloads that crossed the cooperative local wire first.
    pub peer_hops: u64,
    /// Bytes shipped over the cooperative local wire.
    pub peer_bytes: u64,
    /// Bytes shipped over the WAN uplink.
    pub bytes_to_cloud: u64,
    /// Mean wall-clock service time per request (ms).
    pub service_ms: f64,
}

/// Everything the `coop_edge` bench target asserts and reports.
#[derive(Debug)]
pub struct CoopEdgeResult {
    /// The Low-tier class serving alone.
    pub solo: CoopRunRow,
    /// The same class splitting across its cooperative group.
    pub coop: CoopRunRow,
    /// The WAN rate (Mbps) the search settled on to make pooling pay.
    pub link_mbps: f64,
    /// The cooperative group's local wire rate (Mbps).
    pub peer_mbps: f64,
    /// Devices in the cooperative group.
    pub members: usize,
    /// Planner-promised WAN payload bytes per offload, solo plan.
    pub planned_upload_solo: u64,
    /// Planner-promised WAN payload bytes per offload, pooled plan.
    pub planned_upload_coop: u64,
    /// Planner-promised peer-wire bytes per offload, pooled plan.
    pub planned_peer_bytes: u64,
    /// Whether both runs produced bitwise-identical Algorithm-2 records.
    pub records_match: bool,
}

/// Runs the cooperative-edge-splitting experiment: one Low-tier device
/// class served through the [`Fleet`] API twice over the same trace —
/// once solo (the planner can only choose a two-stage edge→cloud plan)
/// and once with a 3-member cooperative group behind a fast local wire,
/// where pooled peer throughput lets the planner push the final cut
/// deeper and shrink the WAN upload. The WAN rate is searched so the
/// pooled plan provably takes a peer stage AND uploads strictly fewer
/// bytes than the solo plan, making the wall-clock comparison decisive.
/// Both runs ship `f32` features, so their Algorithm-2 records must be
/// bitwise identical despite the different cuts.
pub fn coop_edge(scale: Scale) -> CoopEdgeResult {
    let instances = match scale {
        Scale::Smoke => 96,
        Scale::Repro | Scale::Full => 240,
    };
    let mut data_cfg = scale.cifar100_like(9301);
    data_cfg.num_classes = 6;
    data_cfg.num_clusters = 3;
    data_cfg.image_hw = 8;
    data_cfg.test_per_class = instances / 6 + 1;
    let bundle = generate(&data_cfg);
    let data = bundle.test.subset(&(0..instances.min(bundle.test.len())).collect::<Vec<_>>());

    let hard = [0usize, 2, 4];
    let mut probe_net = edge_replica(91, &hard);
    let policy = high_offload_policy(&mut probe_net, &data, 0.6);

    // One Low-tier class in two guises: solo, and pooled into a
    // 3-member cooperative group behind a fast dedicated local wire.
    let members = 3;
    let peer_mbps = 400.0;
    let base_profile = DeviceProfile::new("edge", 10.0, 5e8);
    let solo_class = DeviceClass::new("low", base_profile.clone(), ComputeTier::Low);
    let coop_class = solo_class.clone().coop_group(members, NetworkLink::wifi(peer_mbps).with_rtt(0.0005));
    let pool = FleetSpec::uniform(coop_class.clone()).peer_pools().remove(0);
    let low_profile = solo_class.effective_profile();

    // Find a WAN rate where the pooled plan takes a peer stage and
    // strictly shrinks the upload: the cooperative win is then decisive
    // (the saved WAN bytes dominate the cheap local hop at any scale).
    let devices = 4;
    let cloud_net = cloud_replica(92);
    let in_elems: u64 = cloud_net.in_shape.iter().map(|&d| d as u64).product();
    let planner_at = |rate: f64| {
        let env = PartitionEnv {
            edge: low_profile.clone(),
            cloud: DeviceProfile::new("cloud", 200.0, 1e12),
            link: NetworkLink::wifi(rate).with_rtt(0.001),
            bytes_per_elem: 4,
            raw_input_bytes: 4 * in_elems,
            response_bytes: RESPONSE_WIRE_BYTES,
        };
        CutPlanner::from_network(&cloud_net, env, Objective::Latency, devices)
    };
    let link_mbps = (0..60)
        .map(|i| 0.05 * 1.3f64.powi(i))
        .find(|&r| {
            let planner = planner_at(r);
            let pooled = planner.plan_placement_for_measured(&low_profile, None, pool.as_ref());
            let solo = planner.plan_placement_for_measured(&low_profile, None, None);
            pooled.plan.peer_stage().is_some() && pooled.upload_bytes < solo.upload_bytes
        })
        .expect("some WAN rate makes the cooperative split pay");
    let link = NetworkLink::wifi(link_mbps).with_rtt(0.001);
    let planner = planner_at(link_mbps);
    let planned_coop = planner.plan_placement_for_measured(&low_profile, None, pool.as_ref());
    let planned_solo = planner.plan_placement_for_measured(&low_profile, None, None);

    let mut rng = Rng::new(17);
    let requests = trace_requests(&data, devices, &ArrivalModel::Uniform { interval_s: 0.0 }, &mut rng);
    let run = |mode: &'static str, class: DeviceClass| {
        let edges: Vec<EdgeReplica> =
            (0..2).map(|_| EdgeReplica::with_cloud_prefix(edge_replica(91, &hard), cloud_replica(92))).collect();
        let clouds: Vec<SegmentedCnn> = (0..2).map(|_| cloud_replica(92)).collect();
        let cfg = ServeConfig::builder(policy)
            .edge_workers(2)
            .cloud_workers(2)
            .max_batch(4)
            .queue_depth(8)
            .payload(PayloadPlan::Features(FeatureConfig {
                wire: FeatureWire::F32,
                cut: CutSelection::Planned(CutPlannerConfig {
                    classes: Vec::new(),
                    cloud: DeviceProfile::new("cloud", 200.0, 1e12),
                    objective: Objective::Latency,
                    feedback: None,
                }),
            }))
            .link(link)
            .fleet(FleetSpec::uniform(class))
            .build()
            .expect("valid fleet configuration");
        let mut fleet = Fleet::new(cfg, edges, clouds).expect("replicas match the configuration");
        let report = fleet.serve(&requests).expect("the fleet serves the trace");
        let placement = report.stats.placements.as_ref().expect("planned mode reports placements")[0].clone();
        let row = CoopRunRow {
            mode,
            total: report.stats.total,
            offloaded: report.stats.offloaded,
            final_cut: placement.final_cut(),
            stages: placement.stages().len(),
            peer_hops: report.stats.peer_hops,
            peer_bytes: report.stats.peer_bytes,
            bytes_to_cloud: report.stats.bytes_to_cloud,
            service_ms: 1e3 * report.stats.wall_s / report.stats.total as f64,
        };
        (row, report)
    };

    let (solo, solo_report) = run("solo", solo_class);
    let (coop, coop_report) = run("coop pool", coop_class);
    CoopEdgeResult {
        solo,
        coop,
        link_mbps,
        peer_mbps,
        members,
        planned_upload_solo: planned_solo.upload_bytes,
        planned_upload_coop: planned_coop.upload_bytes,
        planned_peer_bytes: planned_coop.peer_bytes,
        records_match: solo_report.records == coop_report.records,
    }
}
