//! Fleet scaling: one trained MEANet's routing replicated across growing
//! device fleets sharing two cloud servers — quantifies the cloud
//! congestion the paper's introduction argues early exits relieve.

use mea_bench::experiments::extensions;
use mea_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let (table, rows) = extensions::fleet_scaling(scale);
    println!("== Fleet scaling (2 cloud servers) ==\n{table}");
    // Cloud queueing must be monotone non-decreasing in fleet size.
    for pair in rows.windows(2) {
        assert!(
            pair[1].cloud_wait_ms >= pair[0].cloud_wait_ms - 1e-9,
            "cloud wait shrank when the fleet grew: {pair:?}"
        );
        assert!(pair[1].utilization >= pair[0].utilization - 1e-9, "utilization shrank with more devices");
    }
    assert!(rows.last().unwrap().p95_ms >= rows[0].p95_ms, "tail latency should grow with contention");
}
